//! Quickstart: infer a query from two explained examples.
//!
//! Builds a small publications ontology, describes two output examples
//! with their provenance ("Carol, because paper3 links her to Erdős"),
//! and lets QuestPro-RS infer a SPARQL query that generalizes both.
//!
//! Run with: `cargo run --example quickstart`

use questpro::prelude::*;

fn main() {
    // 1. An ontology: papers written by (wb) authors.
    let mut builder = Ontology::builder();
    for (paper, author) in [
        ("paper3", "Carol"),
        ("paper3", "Erdos"),
        ("paper4", "Dave"),
        ("paper4", "Erdos"),
        ("paper5", "Frank"),
        ("paper5", "Gina"),
    ] {
        builder.edge(paper, "wb", author).expect("unique edges");
    }
    for a in ["Carol", "Erdos", "Dave", "Frank", "Gina"] {
        builder.typed_node(a, "Author").expect("consistent types");
    }
    for p in ["paper3", "paper4", "paper5"] {
        builder.typed_node(p, "Paper").expect("consistent types");
    }
    let ont = builder.build();

    // 2. Two examples with explanations (Definition 2.5 of the paper):
    //    the user wants Carol and Dave, each justified by the paper they
    //    share with Erdős.
    let e1 = Explanation::from_triples(
        &ont,
        &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
        "Carol",
    )
    .expect("E1 refers to existing edges");
    let e2 = Explanation::from_triples(
        &ont,
        &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
        "Dave",
    )
    .expect("E2 refers to existing edges");
    let examples = ExampleSet::from_explanations(vec![e1, e2]);

    // 3. Infer a consistent union query (Algorithm 2).
    let (query, stats) = find_consistent_union(&ont, &examples, &UnionConfig::default());
    println!("Inferred query:\n{query}\n");
    println!(
        "(explored {} intermediate queries in {} rounds)",
        stats.algorithm1_calls, stats.rounds
    );

    // 4. Evaluate it: the query generalizes to every co-author of Erdős.
    let results = evaluate_union(&ont, &query);
    let names: Vec<&str> = results.iter().map(|&n| ont.value_str(n)).collect();
    println!("\nResults on the ontology: {names:?}");

    // 5. Show the provenance of one result — the paper's explanation
    //    graphs, regenerated from the inferred query.
    let carol = ont.node_by_value("Carol").expect("Carol exists");
    for g in provenance_of_union(&ont, &query, carol, None) {
        println!("\nWhy Carol?\n{}", g.describe(&ont));
    }
}
