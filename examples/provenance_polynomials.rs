//! Semiring provenance polynomials: the algebraic view of Def. 2.4's
//! provenance graphs (Green–Karvounarakis–Tannen style, the relational
//! companion the paper cites). Each ontology edge is an indeterminate;
//! alternative derivations add, joint uses multiply — and deletion
//! propagation is just boolean evaluation.
//!
//! Run with: `cargo run --example provenance_polynomials`

use questpro::prelude::*;

fn main() {
    let ont = questpro::data::erdos_ontology();

    // Co-authors of Erdős.
    let mut b = QueryBuilder::new();
    let x = b.var("x");
    let p = b.var("p");
    let e = b.constant("Erdos");
    b.edge(p, "wb", x).edge(p, "wb", e).project(x);
    let q = b.build().expect("well-formed");

    println!("query:\n{q}\n");
    for &res in evaluate(&ont, &q).iter() {
        let poly = polynomial_of(&ont, &q, res, None);
        println!("prov({}) = {}", ont.value_str(res), poly.describe(&ont));
    }

    // Deletion propagation: does Erdős remain a result if paper3 is
    // retracted? (He co-authored papers 4, 7, 9, 10 too.)
    let erdos = ont.node_by_value("Erdos").expect("anchor");
    let poly = polynomial_of(&ont, &q, erdos, None);
    let paper3 = ont.node_by_value("paper3").expect("anchor");
    let without_paper3 = |edge| ont.edge(edge).src != paper3;
    println!(
        "\nretract paper3 → Erdos still derivable? {}",
        poly.survives(&without_paper3)
    );
    let drop_all = |_| false;
    println!(
        "retract everything → Erdos still derivable? {}",
        poly.survives(&drop_all)
    );
}
