//! The paper's running example, end to end (Figures 1–4, Examples
//! 4.3/4.4/5.5): infer top-k candidate queries from the four Erdős
//! explanations, augment them with disequalities, and let a simulated
//! user choose between them through provenance-backed questions.
//!
//! Run with: `cargo run --example erdos_number`

use questpro::data::{erdos_example_set, erdos_ontology};
use questpro::prelude::*;
use questpro::rng::StdRng;

fn main() {
    let ont = erdos_ontology();
    let examples = erdos_example_set(&ont);
    println!("== Example-set (Figure 1) ==");
    for (i, ex) in examples.iter().enumerate() {
        println!("\nE{}:\n{}", i + 1, ex.describe(&ont));
    }

    // Top-3 inference with the weights of Example 4.4 (w1=1, w2=7).
    let cfg = TopKConfig {
        k: 3,
        weights: GeneralizationWeights::example_4_4(),
        ..Default::default()
    };
    let (candidates, stats) = infer_top_k(&ont, &examples, &cfg);
    println!("\n== Top-{} candidates (Example 4.4 weights) ==", cfg.k);
    for (i, q) in candidates.iter().enumerate() {
        println!(
            "\n#{} cost {:.0}, {} branch(es):\n{}",
            i + 1,
            q.cost(cfg.weights),
            q.len(),
            q
        );
        assert!(consistent_with_examples(&ont, q, &examples));
    }
    println!(
        "\n(Algorithm 1 invoked {} times over {} rounds)",
        stats.algorithm1_calls, stats.rounds
    );

    // Disequalities (Example 5.1).
    println!("\n== With all admissible disequalities ==");
    for (i, q) in candidates.iter().enumerate() {
        let q_all = with_all_diseqs(&ont, q, &examples);
        println!("#{}: {} disequalities", i + 1, q_all.diseq_count());
    }

    // Feedback (Algorithm 3 / Example 5.5): the user intends the
    // lowest-cost candidate; watch the loop converge on it.
    let intended = candidates[0].clone();
    let mut oracle = TargetOracle::new(intended.clone());
    let mut rng = StdRng::seed_from_u64(55);
    let outcome = choose_query(
        &ont,
        &candidates,
        &examples,
        &mut oracle,
        &mut rng,
        &FeedbackConfig::default(),
    );
    println!("\n== Feedback transcript ==");
    for (i, rec) in outcome.transcript.iter().enumerate() {
        println!(
            "\nQ{}: should {} be a result? Its provenance:\n{}\n→ user says {}",
            i + 1,
            ont.value_str(rec.result),
            rec.provenance.describe(&ont),
            if rec.answer { "yes" } else { "no" },
        );
    }
    println!(
        "\nChosen query (candidate #{}):\n{}",
        outcome.chosen_index + 1,
        outcome.chosen
    );
    assert!(union_equivalent(
        &outcome.chosen.without_diseqs(),
        &intended.without_diseqs()
    ));
}
