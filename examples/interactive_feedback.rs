//! A terminal rendition of the QuestPro feedback UI (Figure 5's right
//! half): the provenance of each difference result is displayed as a
//! small graph, and the "user" — here a simulated oracle whose intent is
//! the movie query *actors in more than one Tarantino film* — answers
//! yes/no until one candidate query survives. The same loop then
//! refines the disequalities.
//!
//! Run with: `cargo run --example interactive_feedback`

use questpro::data::{generate_movies, movie_workload, MoviesConfig};
use questpro::prelude::*;
use questpro::rng::StdRng;

fn main() {
    let ont = generate_movies(&MoviesConfig::default());
    let intended = movie_workload()
        .into_iter()
        .find(|w| w.id == "m6")
        .expect("m6 is in the catalog")
        .query;
    println!("Hidden user intent: actors in more than one Tarantino film\n");

    // The user supplies examples with explanations, sampled here from
    // the intended query's provenance.
    let mut rng = StdRng::seed_from_u64(66);
    let examples = sample_example_set(&ont, &intended, 3, &mut rng, 6);
    println!("== The user's explanations ==");
    for (i, ex) in examples.iter().enumerate() {
        println!("\nExample {}:\n{}", i + 1, ex.describe(&ont));
    }

    let mut oracle = TargetOracle::new(intended.clone());
    let cfg = SessionConfig {
        topk: TopKConfig {
            k: 3,
            ..Default::default()
        },
        refine: true,
        ..Default::default()
    };
    let result = run_session(&ont, &examples, &mut oracle, &mut rng, &cfg);

    println!("\n== Candidates inferred ==");
    for (i, c) in result.candidates.iter().enumerate() {
        println!("\n#{}:\n{}", i + 1, c);
    }

    println!("\n== Dialogue ==");
    if result.selection_transcript.is_empty() {
        println!("(no questions needed — one candidate dominated)");
    }
    for rec in &result.selection_transcript {
        println!(
            "\nSystem: Should \"{}\" be in your results? Because:\n{}",
            ont.value_str(rec.result),
            indent(&rec.provenance.describe(&ont))
        );
        println!("User:   {}", if rec.answer { "yes" } else { "no" });
    }
    println!(
        "\n({} refinement question(s) about disequalities)",
        result.refinement_questions
    );

    println!("\n== Final query ==\n{}", result.query);
    let final_results = evaluate_union(&ont, &result.query);
    let intended_results = evaluate_union(&ont, &intended);
    println!(
        "\nFinal results:   {:?}",
        final_results
            .iter()
            .map(|&n| ont.value_str(n))
            .collect::<Vec<_>>()
    );
    println!(
        "Intended results: {:?}",
        intended_results
            .iter()
            .map(|&n| ont.value_str(n))
            .collect::<Vec<_>>()
    );
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("        {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
