//! The implemented future-work extensions of the paper's Section VIII:
//!
//! 1. **OPTIONAL patterns** — explanations of *different shapes* (one
//!    justifies a film with its genre, another has no genre to show)
//!    fuse into a single pattern with an OPTIONAL edge instead of an
//!    awkward two-branch union;
//! 2. **incorrect provenance** — a wrong explanation is diagnosed as a
//!    shape mismatch and set aside before inference.
//!
//! Run with: `cargo run --example extensions`

use questpro::core::GreedyConfig;
use questpro::prelude::*;

fn main() {
    // A small film world where film2 has no genre annotation.
    let mut b = Ontology::builder();
    for (s, p, d) in [
        ("film1", "starring", "Ann"),
        ("film1", "genre", "Crime"),
        ("film2", "starring", "Ann"),
        ("film3", "starring", "Zoe"),
        ("film3", "genre", "Drama"),
        ("studio", "produced", "film3"),
    ] {
        b.edge(s, p, d).expect("unique edges");
    }
    let ont = b.build();

    // The user wants "films starring Ann" and explains both films —
    // naturally including film1's genre, because the UI shows it.
    let e1 = Explanation::from_triples(
        &ont,
        &[("film1", "starring", "Ann"), ("film1", "genre", "Crime")],
        "film1",
    )
    .expect("valid");
    let e2 =
        Explanation::from_triples(&ont, &[("film2", "starring", "Ann")], "film2").expect("valid");
    let examples = ExampleSet::from_explanations(vec![e1.clone(), e2.clone()]);

    println!("== 1. OPTIONAL fusion ==\n");
    let strict = infer_top_k(&ont, &examples, &TopKConfig::default()).0;
    println!("strict inference (paper's Algorithm 2):\n{}\n", strict[0]);
    let optional_cfg = TopKConfig {
        greedy: GreedyConfig {
            allow_optional: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let tolerant = infer_top_k(&ont, &examples, &optional_cfg).0;
    let fused = tolerant
        .iter()
        .find(|c| c.len() == 1)
        .expect("optional mode fuses the shapes");
    println!("optional-tolerant inference:\n{fused}");

    println!("\n== 2. Diagnosing incorrect provenance ==\n");
    // A third, wrong explanation: the user mis-clicked and justified
    // film3 by its production edge instead of its cast.
    let wrong = Explanation::from_triples(&ont, &[("studio", "produced", "film3")], "film3")
        .expect("valid");
    let poisoned = ExampleSet::from_explanations(vec![e1, e2, wrong]);
    for d in diagnose_examples(&ont, &poisoned, &GreedyConfig::default()) {
        println!(
            "explanation {} → {:?} (merges with {} others)",
            d.index + 1,
            d.suspicion,
            d.mergeable_with
        );
    }
    let (candidates, suspects, _) = infer_top_k_robust(&ont, &poisoned, &TopKConfig::default());
    println!(
        "\nrobust inference set aside {suspects:?} and inferred:\n{}",
        candidates[0]
    );
}
