//! Simulated user study over the Table I movie queries (Section VI-C /
//! Figure 8): nine users each run four interactions against the
//! DBpedia-movies-like world, with the paper's observed error modes
//! injected at calibrated rates.
//!
//! Run with: `cargo run --release --example movie_study`

use questpro::data::{generate_movies, movie_workload, MoviesConfig};
use questpro::feedback::{simulate_study, StudyConfig};
use questpro::query::UnionQuery;
use questpro::rng::StdRng;

fn main() {
    let ont = generate_movies(&MoviesConfig::default());
    let targets: Vec<UnionQuery> = movie_workload().into_iter().map(|w| w.query).collect();
    let cfg = StudyConfig::default();
    let mut rng = StdRng::seed_from_u64(8);
    let report = simulate_study(&ont, &targets, &cfg, &mut rng);

    println!(
        "Simulated study: {} users × {} interactions over {} target queries\n",
        cfg.users,
        cfg.interactions_per_user,
        targets.len()
    );
    println!("interaction outcomes (paper's Figure 8 reported 30/2/4):");
    println!("  successful            : {:>2}", report.successes());
    println!("  successful after redo : {:>2}", report.redo_successes());
    println!("  failed                : {:>2}", report.failures());

    println!("\nper-interaction detail:");
    for r in &report.interactions {
        println!(
            "  user {:>2}  query m{:<2} {:12} {}",
            r.user + 1,
            r.query + 1,
            format!("{:?}", r.outcome),
            r.error
                .map(|e| format!("(error: {e:?})"))
                .unwrap_or_default()
        );
    }
}
