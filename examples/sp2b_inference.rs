//! Reverse-engineering benchmark queries from sampled provenance, the
//! protocol of the paper's automatic experiments (Section VI-B): run a
//! hidden target query over the SP2B-like ontology, sample results with
//! their provenance as explanations, and add explanations until the
//! inferred query is semantically equivalent to the target.
//!
//! Run with: `cargo run --release --example sp2b_inference`

use questpro::data::{generate_sp2b, sp2b_workload, Sp2bConfig};
use questpro::prelude::*;
use questpro::rng::StdRng;
use std::time::Instant;

fn main() {
    let ont = generate_sp2b(&Sp2bConfig::default());
    println!(
        "SP2B-like ontology: {} nodes, {} edges",
        ont.node_count(),
        ont.edge_count()
    );

    let cfg = TopKConfig::default();
    for workload in sp2b_workload() {
        let target = &workload.query;
        let mut rng = StdRng::seed_from_u64(0xacade / (1 + workload.id.len() as u64));
        let start = Instant::now();
        let mut solved_with = None;
        for n in 2..=11usize {
            let examples = sample_example_set(&ont, target, n, &mut rng, 6);
            if examples.len() < 2 {
                break;
            }
            let (candidates, _) = infer_top_k(&ont, &examples, &cfg);
            let hit = candidates.iter().any(|c| {
                union_equivalent(c, target)
                    || evaluate_union(&ont, c) == evaluate_union(&ont, target)
            });
            if hit {
                solved_with = Some(n);
                break;
            }
        }
        let elapsed = start.elapsed();
        match solved_with {
            Some(n) => println!(
                "{:5}  reconstructed with {:2} explanation(s) in {:>8.2?} — {}",
                workload.id, n, elapsed, workload.description
            ),
            None => println!(
                "{:5}  NOT reconstructed with ≤11 explanations ({:>8.2?}) — {}",
                workload.id, elapsed, workload.description
            ),
        }
    }
}
