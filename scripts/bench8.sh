#!/usr/bin/env bash
# Benchmarks the event-loop server core at 10k concurrent keep-alive
# connections and writes BENCH_8.json.
#
# Unlike scripts/loadgen.sh (in-process server, thread-per-client),
# this runs `questpro serve` and the multiplexed loadgen driver as TWO
# processes: at 10k connections each side holds 10k sockets, and the
# host's 20k fd limit only fits that when server and client split the
# budget. The driver is closed-loop (one request in flight per
# connection) so every connection is continuously active — idle
# keep-alive expiry stays out of the measurement by construction, and
# the throughput number is the server's sustained capacity.
#
#   scripts/bench8.sh [OUT.json]
#
# Env:
#   BENCH8_CONNECTIONS  concurrent connections (default 10000).
#   BENCH8_REQUESTS     requests per connection (default 5).
#   BENCH8_TINY=1       smoke mode: 1000 connections x 2 requests (CI).
#
# Gates (the script fails on any):
#   - every connection establishes, zero errors, zero body mismatches
#     (checked inside loadgen);
#   - POST /shutdown drains the server process cleanly;
#   - throughput >= 5x the committed BENCH_2 baseline on this host.
set -euo pipefail
caller_dir="$PWD"
cd "$(dirname "$0")/.."
out="${1:-BENCH_8.json}"
[[ "$out" == /* ]] || out="$caller_dir/$out"

conns="${BENCH8_CONNECTIONS:-10000}"
reqs="${BENCH8_REQUESTS:-5}"
if [[ "${BENCH8_TINY:-0}" == "1" ]]; then
  conns=1000
  reqs=2
fi

# Both processes need headroom beyond their socket count.
ulimit -n "$(ulimit -Hn)" 2>/dev/null || true
need=$((conns + 512))
have="$(ulimit -n)"
if [[ "$have" != "unlimited" && "$have" -lt "$need" ]]; then
  echo "bench8: fd limit $have < $need; raise ulimit -n or lower BENCH8_CONNECTIONS" >&2
  exit 1
fi

echo "== building questpro + loadgen (release) =="
cargo build --release --offline -p questpro-cli -p questpro-bench --bin questpro --bin loadgen

srvlog="$(mktemp "${TMPDIR:-/tmp}/bench8-serve.XXXXXX")"
# --read-timeout-ms 60000: establishing the fleet takes a while at
# 10k connections, and the default 5s keep-alive idle timeout must not
# reap early-connected sockets before the drive starts — idle expiry
# stays out of the measurement by construction, as promised above.
./target/release/questpro serve --addr 127.0.0.1:0 --workers 2 \
  --queue "$((conns * 2))" --max-conns "$((conns + 200))" \
  --read-timeout-ms 60000 2> "$srvlog" &
srv=$!
trap 'kill "$srv" 2>/dev/null || true; rm -f "$srvlog"' EXIT

addr=""
for _ in $(seq 100); do
  addr="$(sed -n 's#.*listening on http://##p' "$srvlog" | head -n 1)"
  [[ -n "$addr" ]] && break
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "bench8: server never reported its address:" >&2
  cat "$srvlog" >&2
  exit 1
fi
echo "== server up on $addr; driving $conns connections x $reqs requests =="

./target/release/loadgen --connections "$conns" --requests "$reqs" \
  --route eval --connect "$addr" --bench8 "$out"

# Drain gate: the server must shut down cleanly while we watch.
host="${addr%:*}"
port="${addr##*:}"
exec 3<>"/dev/tcp/$host/$port"
printf 'POST /shutdown HTTP/1.1\r\nHost: bench8\r\nConnection: close\r\nContent-Length: 0\r\n\r\n' >&3
cat <&3 > /dev/null || true
exec 3<&- 3>&-
if ! wait "$srv"; then
  echo "bench8: server exited uncleanly after drain" >&2
  exit 1
fi
trap 'rm -f "$srvlog"' EXIT
echo "ok — server drained cleanly on POST /shutdown"

python3 -m json.tool "$out" > /dev/null
echo "ok — $out is well-formed JSON"

# Throughput gate against the committed thread-mode baseline: the
# event-loop core must beat 5x BENCH_2's rps on the same host. (The
# routes differ — /eval here vs /infer there — because the point of
# B8 is connection scalability, not inference speed; BENCH_8.json
# records both configs so the comparison is auditable.)
python3 - "$out" <<'PY'
import json, sys
b8 = json.load(open(sys.argv[1]))
rps = b8["totals"]["throughput_rps"]
try:
    base = json.load(open("BENCH_2.json"))["totals"]["throughput_rps"]
except FileNotFoundError:
    print(f"no BENCH_2.json baseline; measured {rps:.1f} rps (gate skipped)")
    sys.exit(0)
need = 5.0 * base
assert rps >= need, f"throughput {rps:.1f} rps < 5x BENCH_2 baseline ({need:.1f})"
assert b8["totals"]["errors"] == 0, "errors in the B8 run"
assert b8["identical_to_reference"], "response bodies diverged"
print(f"ok — {rps:.1f} rps >= 5x BENCH_2 baseline ({need:.1f})")
PY
