#!/usr/bin/env bash
# Regenerates every experiment of EXPERIMENTS.md into results/, then runs
# the full test suite and the microbenches.
#
# Usage: scripts/reproduce.sh [results-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-results}"
mkdir -p "$out"

echo "== building (release) =="
cargo build --release -p questpro-bench --bins

for exp in explanations_needed runtime intermediate_vs_explanations \
           intermediate_vs_k table1_movies user_study \
           feedback_convergence scaling optimality_gap; do
  echo "== exp_$exp =="
  "./target/release/exp_$exp" | tee "$out/exp_$exp.md"
done

echo "== tests =="
cargo test --workspace 2>&1 | tee "$out/test_output.txt"

echo "== benches =="
cargo bench -p questpro-bench 2>&1 | tee "$out/bench_output.txt"

echo "== hot-path bench (BENCH_1/3/6.json) =="
scripts/bench.sh "$out/BENCH_1.json" "$out/BENCH_3.json" "$out/BENCH_6.json"

echo "done — outputs in $out/"
