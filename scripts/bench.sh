#!/usr/bin/env bash
# Benchmarks the parallel inference hot path and writes BENCH_1.json:
# per-stage timings (merge / consistency / total), the consistency-cache
# hit rate, matcher nodes expanded, and wall-clock speedup per thread
# count — with every parallel run asserted byte-identical to the
# sequential one. The same run also writes BENCH_3.json: the per-stage
# self-time breakdown recorded by questpro-trace, plus the
# disabled-instrumentation overhead gate (< 5% of wall).
#
# Usage: scripts/bench.sh [output.json] [trace-output.json]
#   BENCH_TINY=1   smoke mode: 1 trial, heaviest query only (CI).
#   BENCH_THREADS  largest thread count in the sweep (default 8).
set -euo pipefail
caller_dir="$PWD"
cd "$(dirname "$0")/.."
# A relative output path is resolved against the caller's directory, not
# the repo root the script cds into.
out="${1:-BENCH_1.json}"
out3="${2:-BENCH_3.json}"
[[ "$out" == /* ]] || out="$caller_dir/$out"
[[ "$out3" == /* ]] || out3="$caller_dir/$out3"
threads="${BENCH_THREADS:-8}"

echo "== building exp_bench (release) =="
cargo build --release --offline -p questpro-bench --bin exp_bench

args=(--threads "$threads" --json "$out" --trace-json "$out3" --trace-overhead)
if [[ "${BENCH_TINY:-0}" == "1" ]]; then
  args+=(--tiny)
fi

echo "== running hot-path bench (threads 1..$threads) =="
./target/release/exp_bench "${args[@]}"

# Well-formedness gate: the reports must be parseable JSON.
python3 -m json.tool "$out" > /dev/null
python3 -m json.tool "$out3" > /dev/null
echo "ok — $out and $out3 are well-formed JSON"
