#!/usr/bin/env bash
# Benchmarks the parallel inference hot path and writes BENCH_1.json:
# per-stage timings (merge / consistency / total), the consistency-cache
# hit rate, matcher nodes expanded, and wall-clock speedup per thread
# count — with every parallel run asserted byte-identical to the
# sequential one. The same run also writes BENCH_3.json (the per-stage
# self-time breakdown recorded by questpro-trace, plus the
# disabled-instrumentation overhead gate, < 5% of wall) and BENCH_6.json
# (per-query walls with parallel-validity annotations, cold/warm
# columnar index-build times per world, and the improvement factor over
# the committed BENCH_1.json baseline when one exists), and BENCH_7.json
# (snapshot cold-start vs text re-parse, matcher throughput at the
# 10^6-triple scale, and the corruption-sweep tally), and BENCH_9.json
# (the cold-start assembly step: legacy label re-hash vs the
# sorted-arena interner handover, with the speedup factor gated), and
# BENCH_10.json (session telemetry: disabled-path record cost gated
# < 1% of the median session wall, enabled-vs-disabled walls side by
# side, and the convergence-round distribution on three worlds).
#
# Usage: scripts/bench.sh [output.json] [trace-json] [b6-json] [b7-json] [b9-json] [b10-json]
#   BENCH_TINY=1   smoke mode: 1 trial, heaviest query only, 10^5-triple
#                  B7/B9 worlds, 2 sessions per B10 world (CI).
#   BENCH_THREADS  largest thread count in the sweep (default 8).
set -euo pipefail
caller_dir="$PWD"
cd "$(dirname "$0")/.."
# A relative output path is resolved against the caller's directory, not
# the repo root the script cds into.
out="${1:-BENCH_1.json}"
out3="${2:-BENCH_3.json}"
out6="${3:-BENCH_6.json}"
out7="${4:-BENCH_7.json}"
out9="${5:-BENCH_9.json}"
out10="${6:-BENCH_10.json}"
[[ "$out" == /* ]] || out="$caller_dir/$out"
[[ "$out3" == /* ]] || out3="$caller_dir/$out3"
[[ "$out6" == /* ]] || out6="$caller_dir/$out6"
[[ "$out7" == /* ]] || out7="$caller_dir/$out7"
[[ "$out9" == /* ]] || out9="$caller_dir/$out9"
[[ "$out10" == /* ]] || out10="$caller_dir/$out10"
threads="${BENCH_THREADS:-8}"

echo "== building exp_bench (release) =="
cargo build --release --offline -p questpro-bench --bin exp_bench

args=(--threads "$threads" --json "$out" --trace-json "$out3" --trace-overhead --bench6 "$out6")
# Diff B6 against the committed pre-run baseline, if the repo has one
# (and it isn't the file this very run is about to overwrite).
if [[ -f BENCH_1.json && "$out" != "$PWD/BENCH_1.json" ]]; then
  args+=(--baseline BENCH_1.json)
elif [[ -f BENCH_1.json ]]; then
  cp BENCH_1.json "${TMPDIR:-/tmp}/bench1_baseline.$$.json"
  args+=(--baseline "${TMPDIR:-/tmp}/bench1_baseline.$$.json")
fi
if [[ "${BENCH_TINY:-0}" == "1" ]]; then
  args+=(--tiny)
fi

echo "== running hot-path bench (threads 1..$threads) =="
./target/release/exp_bench "${args[@]}"

# B7 runs as its own invocation: it re-execs this binary as cold timing
# children, so it must not share allocator state with the phases above.
echo "== running snapshot cold-start bench (B7) =="
b7args=(--bench7 "$out7")
if [[ "${BENCH_TINY:-0}" == "1" ]]; then
  b7args+=(--tiny)
fi
./target/release/exp_bench "${b7args[@]}"

# B9 likewise runs cold: the before/after interner measurement must not
# inherit a warmed allocator from the B7 world build.
echo "== running cold-start assembly bench (B9) =="
b9args=(--bench9 "$out9")
if [[ "${BENCH_TINY:-0}" == "1" ]]; then
  b9args+=(--tiny)
fi
./target/release/exp_bench "${b9args[@]}"

# B10 also runs standalone: its session walls feed the < 1% telemetry
# gate and must not inherit allocator warmth from the sweep above.
echo "== running session telemetry bench (B10) =="
b10args=(--bench10 "$out10")
if [[ "${BENCH_TINY:-0}" == "1" ]]; then
  b10args+=(--tiny)
fi
./target/release/exp_bench "${b10args[@]}"

# Well-formedness gate: the reports must be parseable JSON.
python3 -m json.tool "$out" > /dev/null
python3 -m json.tool "$out3" > /dev/null
python3 -m json.tool "$out6" > /dev/null
python3 -m json.tool "$out7" > /dev/null
python3 -m json.tool "$out9" > /dev/null
python3 -m json.tool "$out10" > /dev/null
echo "ok — $out, $out3, $out6, $out7, $out9 and $out10 are well-formed JSON"

# Rows measured with more worker threads than the host has CPUs are
# scheduling artifacts, not parallel speedups (the runner still checks
# their outputs, but the wall times mean nothing). Make any such row
# impossible to miss.
flagged=0
for report in "$out" "$out3" "$out6" "$out7" "$out9" "$out10"; do
  if grep -q '"valid_parallel": false' "$report"; then
    flagged=1
    echo
    echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!"
    echo "!! WARNING: $report contains rows with \"valid_parallel\": false."
    echo "!! Those rows ran more threads than this host has CPUs: their"
    echo "!! wall times are scheduling artifacts and MUST NOT be quoted"
    echo "!! as parallel speedups. Rerun on a machine with enough cores"
    echo "!! (BENCH_THREADS caps the sweep) to get citable numbers."
    echo "!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!!"
  fi
done
if [[ "$flagged" == 0 ]]; then
  echo "ok — no report row was flagged valid_parallel: false"
fi

# Multi-core speedup gate: on a host with real parallelism, adding
# threads (up to the core count) must not make the hot path slower —
# a regression in the work-stealing pool would show up exactly here.
# On a single-CPU host the sweep has one meaningful row and the gate
# is vacuous, so it reports itself skipped rather than pretending the
# 1-thread wall proves anything about scaling.
python3 - "$out" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
cpus = report["config"]["host_cpus"]
if cpus < 2:
    print(f"skip — monotone thread-speedup gate needs >1 CPU (host has {cpus});")
    print("       rerun scripts/bench.sh on a multi-core host for citable scaling")
    sys.exit(0)
TOLERANCE = 1.15  # 15% noise allowance between adjacent thread counts
bad = []
by_query = {}
for row in report["runs"]:
    if row["threads"] <= cpus:
        by_query.setdefault(row["query"], []).append((row["threads"], row["wall_ms"]))
for query, rows in sorted(by_query.items()):
    rows.sort()
    for (t_prev, wall_prev), (t_next, wall_next) in zip(rows, rows[1:]):
        if wall_next > wall_prev * TOLERANCE:
            bad.append(
                f"{query}: {t_next} threads ({wall_next:.1f} ms) slower than "
                f"{t_prev} threads ({wall_prev:.1f} ms)"
            )
if bad:
    print("monotone thread-speedup gate FAILED:")
    for line in bad:
        print("  " + line)
    sys.exit(1)
print(f"ok — thread speedup monotone (within {(TOLERANCE-1)*100:.0f}%) up to {cpus} threads")
PY
