#!/usr/bin/env bash
# Benchmarks the HTTP session server and writes BENCH_2.json:
# an in-process questpro-server is driven by concurrent keep-alive
# clients issuing POST /infer, and every response is checked
# byte-for-byte against the one-shot library inference (the CLI path).
# Also writes BENCH_5.json: per-route p50/p95/p99 latency quantiles
# read off the server's /metrics route histograms after the run.
#
#   scripts/loadgen.sh [OUT.json] [ROUTES_OUT.json]
#
# Env:
#   LOADGEN_TINY=1     smoke mode: 2 clients x 3 requests (CI).
#   LOADGEN_CLIENTS    concurrent client threads (default 8).
#   LOADGEN_REQUESTS   requests per client (default 25).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_2.json}"
routes_out="${2:-BENCH_5.json}"
clients="${LOADGEN_CLIENTS:-8}"
requests="${LOADGEN_REQUESTS:-25}"

cargo build --release -p questpro-bench --bin loadgen --offline
./target/release/loadgen --clients "$clients" --requests "$requests" \
  --out "$out" --routes-out "$routes_out"
