#!/usr/bin/env bash
# Benchmarks the HTTP session server and writes BENCH_2.json:
# an in-process questpro-server is driven by concurrent keep-alive
# clients issuing POST /infer, and every response is checked
# byte-for-byte against the one-shot library inference (the CLI path).
#
#   scripts/loadgen.sh [OUT.json]
#
# Env:
#   LOADGEN_TINY=1     smoke mode: 2 clients x 3 requests (CI).
#   LOADGEN_CLIENTS    concurrent client threads (default 8).
#   LOADGEN_REQUESTS   requests per client (default 25).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_2.json}"
clients="${LOADGEN_CLIENTS:-8}"
requests="${LOADGEN_REQUESTS:-25}"

cargo build --release -p questpro-bench --bin loadgen --offline
./target/release/loadgen --clients "$clients" --requests "$requests" --out "$out"
