//! The minimum-generalization cost function (Definition 4.1).
//!
//! `f(Q) = w1 · Σ_{q∈Q} vars(q) + w2 · |Q|` balances per-branch
//! generality (more variables = looser fit) against the number of union
//! branches (more branches = over-fit). The paper's worked examples use
//! `(w1, w2) = (2, 5)` (Example 4.3) and `(1, 7)` (Example 4.4).

/// Weights for the generalization cost function of Definition 4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneralizationWeights {
    /// Weight of the total variable count.
    pub w1: f64,
    /// Weight of the number of union branches.
    pub w2: f64,
}

impl GeneralizationWeights {
    /// Creates a weight pair.
    pub fn new(w1: f64, w2: f64) -> Self {
        Self { w1, w2 }
    }

    /// The weights of the paper's Example 4.3: `(2, 5)`.
    pub fn example_4_3() -> Self {
        Self::new(2.0, 5.0)
    }

    /// The weights of the paper's Example 4.4: `(1, 7)`.
    pub fn example_4_4() -> Self {
        Self::new(1.0, 7.0)
    }

    /// Evaluates `f` on raw counts.
    pub fn cost(&self, total_vars: usize, branches: usize) -> f64 {
        self.w1 * total_vars as f64 + self.w2 * branches as f64
    }
}

impl Default for GeneralizationWeights {
    /// Defaults to the Example 4.3 weights `(2, 5)`.
    fn default() -> Self {
        Self::example_4_3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_example_4_3_arithmetic() {
        let w = GeneralizationWeights::example_4_3();
        assert_eq!(w.cost(0, 3), 15.0); // Union(E1,E2,E3)
        assert_eq!(w.cost(2, 2), 14.0); // Union(Q3, E2)
        assert_eq!(w.cost(6, 1), 17.0); // Q1 alone
    }

    #[test]
    fn matches_example_4_4_arithmetic() {
        let w = GeneralizationWeights::example_4_4();
        assert_eq!(w.cost(0, 4), 28.0); // four separate explanations
        assert_eq!(w.cost(2, 3), 23.0); // Union(Q3, E2, E4)
        assert_eq!(w.cost(6, 1), 13.0); // Q1
        assert_eq!(w.cost(4, 2), 18.0); // Union(Q3, Q4)
    }

    #[test]
    fn default_is_example_4_3() {
        assert_eq!(
            GeneralizationWeights::default(),
            GeneralizationWeights::example_4_3()
        );
    }
}
