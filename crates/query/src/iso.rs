//! Structural isomorphism of queries.
//!
//! Two simple queries are isomorphic when a bijection between their nodes
//! preserves constants exactly, maps variables to variables (names are
//! immaterial), maps the projected node to the projected node, induces a
//! bijection between the edge sets (same predicate and direction), and
//! preserves the disequality sets.
//!
//! Isomorphism is the right notion of "the same candidate" when
//! deduplicating top-k inference outputs: semantically equivalent but
//! structurally different queries are deliberately kept distinct, since
//! the paper's feedback stage (Section V) may separate them by
//! provenance. Semantic (homomorphic) equivalence lives in
//! `questpro-engine::contain`.

use std::collections::HashSet;

use crate::simple::{NodeLabel, QueryNodeId, SimpleQuery};
use crate::union::UnionQuery;

/// Whether `a` and `b` are isomorphic simple queries.
pub fn isomorphic(a: &SimpleQuery, b: &SimpleQuery) -> bool {
    if a.node_count() != b.node_count()
        || a.edge_count() != b.edge_count()
        || a.diseqs().len() != b.diseqs().len()
        || a.var_count() != b.var_count()
    {
        return false;
    }
    let mut map = vec![u32::MAX; a.node_count()];
    let mut used = vec![false; b.node_count()];
    // Anchor: projections must correspond.
    if !compatible(a, b, a.projected(), b.projected()) {
        return false;
    }
    assign(&mut map, &mut used, a.projected(), b.projected());
    if extend(a, b, &mut map, &mut used, 0) {
        // Node bijection found with all edges of `a` present in `b`;
        // equal edge counts plus injectivity make it an edge bijection.
        // Disequalities are checked last over the complete mapping.
        return true;
    }
    false
}

/// Whether two union queries are isomorphic: a bijection between their
/// branch multisets such that paired branches are isomorphic.
pub fn union_isomorphic(a: &UnionQuery, b: &UnionQuery) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut taken = vec![false; b.len()];
    match_branches(a, b, 0, &mut taken)
}

fn match_branches(a: &UnionQuery, b: &UnionQuery, i: usize, taken: &mut [bool]) -> bool {
    if i == a.len() {
        return true;
    }
    let qa = &a.branches()[i];
    let ha = qa.shape_hash();
    for j in 0..b.len() {
        if taken[j] {
            continue;
        }
        let qb = &b.branches()[j];
        if ha != qb.shape_hash() || !isomorphic(qa, qb) {
            continue;
        }
        taken[j] = true;
        if match_branches(a, b, i + 1, taken) {
            return true;
        }
        taken[j] = false;
    }
    false
}

fn compatible(a: &SimpleQuery, b: &SimpleQuery, u: QueryNodeId, v: QueryNodeId) -> bool {
    if a.degree(u) != b.degree(v)
        || a.out_edges(u).len() != b.out_edges(v).len()
        || (u == a.projected()) != (v == b.projected())
    {
        return false;
    }
    match (a.label(u), b.label(v)) {
        (NodeLabel::Const(x), NodeLabel::Const(y)) => x == y,
        (NodeLabel::Var(_), NodeLabel::Var(_)) => true,
        _ => false,
    }
}

fn assign(map: &mut [u32], used: &mut [bool], u: QueryNodeId, v: QueryNodeId) {
    map[u.index()] = v.index() as u32;
    used[v.index()] = true;
}

fn unassign(map: &mut [u32], used: &mut [bool], u: QueryNodeId, v: QueryNodeId) {
    map[u.index()] = u32::MAX;
    used[v.index()] = false;
}

/// Checks that every edge of `a` incident to `u` whose other endpoint is
/// already mapped has a matching edge in `b`.
fn edges_consistent(a: &SimpleQuery, b: &SimpleQuery, map: &[u32], u: QueryNodeId) -> bool {
    let v = QueryNodeId(map[u.index()]);
    for &ei in a.out_edges(u) {
        let e = &a.edges()[ei as usize];
        let w = map[e.dst.index()];
        if w != u32::MAX && !has_edge(b, v, &e.pred, QueryNodeId(w), e.optional) {
            return false;
        }
    }
    for &ei in a.in_edges(u) {
        let e = &a.edges()[ei as usize];
        let w = map[e.src.index()];
        if w != u32::MAX && !has_edge(b, QueryNodeId(w), &e.pred, v, e.optional) {
            return false;
        }
    }
    true
}

fn has_edge(
    q: &SimpleQuery,
    src: QueryNodeId,
    pred: &str,
    dst: QueryNodeId,
    optional: bool,
) -> bool {
    q.out_edges(src).iter().any(|&ei| {
        let e = &q.edges()[ei as usize];
        e.dst == dst && &*e.pred == pred && e.optional == optional
    })
}

fn extend(
    a: &SimpleQuery,
    b: &SimpleQuery,
    map: &mut Vec<u32>,
    used: &mut Vec<bool>,
    from: usize,
) -> bool {
    // Find the next unmapped node of `a`.
    let next = (from..a.node_count()).find(|&i| map[i] == u32::MAX);
    let Some(ui) = next else {
        return diseqs_match(a, b, map);
    };
    let u = QueryNodeId(ui as u32);
    for vi in 0..b.node_count() {
        if used[vi] {
            continue;
        }
        let v = QueryNodeId(vi as u32);
        if !compatible(a, b, u, v) {
            continue;
        }
        assign(map, used, u, v);
        if edges_consistent(a, b, map, u) && extend(a, b, map, used, ui + 1) {
            return true;
        }
        unassign(map, used, u, v);
    }
    false
}

fn diseqs_match(a: &SimpleQuery, b: &SimpleQuery, map: &[u32]) -> bool {
    let expected: HashSet<(u32, u32)> = a
        .diseqs()
        .iter()
        .map(|&(x, y)| {
            let mx = map[x.index()];
            let my = map[y.index()];
            (mx.min(my), mx.max(my))
        })
        .collect();
    let actual: HashSet<(u32, u32)> = b
        .diseqs()
        .iter()
        .map(|&(x, y)| (x.0.min(y.0), x.0.max(y.0)))
        .collect();
    expected == actual
}

/// Deduplicates a list of union queries up to isomorphism, preserving the
/// first occurrence order.
pub fn dedup_unions(mut queries: Vec<UnionQuery>) -> Vec<UnionQuery> {
    let mut kept: Vec<UnionQuery> = Vec::with_capacity(queries.len());
    for q in queries.drain(..) {
        if !kept.iter().any(|k| union_isomorphic(k, &q)) {
            kept.push(q);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{erdos_q1, erdos_q2};
    use crate::simple::SimpleQuery;

    fn renamed_q1() -> SimpleQuery {
        let mut b = SimpleQuery::builder();
        let a1 = b.var("out");
        let a2 = b.var("mid1");
        let a3 = b.var("mid2");
        let a4 = b.var("erdos");
        let p1 = b.var("w1");
        let p2 = b.var("w2");
        let p3 = b.var("w3");
        b.edge(p1, "wb", a1)
            .edge(p1, "wb", a2)
            .edge(p2, "wb", a2)
            .edge(p2, "wb", a3)
            .edge(p3, "wb", a3)
            .edge(p3, "wb", a4)
            .project(a1);
        b.build().unwrap()
    }

    #[test]
    fn q1_isomorphic_to_its_renaming() {
        assert!(isomorphic(&erdos_q1(), &renamed_q1()));
    }

    #[test]
    fn q1_not_isomorphic_to_q2() {
        assert!(!isomorphic(&erdos_q1(), &erdos_q2()));
    }

    #[test]
    fn projection_position_matters() {
        // Same chain but projected on the far end (?a4 instead of ?a1):
        // the chain is symmetric, so projecting the mirror node keeps it
        // isomorphic; projecting a middle node breaks it.
        let mut b = SimpleQuery::builder();
        let a1 = b.var("a1");
        let a2 = b.var("a2");
        let a3 = b.var("a3");
        let a4 = b.var("a4");
        let p1 = b.var("p1");
        let p2 = b.var("p2");
        let p3 = b.var("p3");
        b.edge(p1, "wb", a1)
            .edge(p1, "wb", a2)
            .edge(p2, "wb", a2)
            .edge(p2, "wb", a3)
            .edge(p3, "wb", a3)
            .edge(p3, "wb", a4)
            .project(a2);
        let mid_projected = b.build().unwrap();
        assert!(!isomorphic(&erdos_q1(), &mid_projected));
    }

    #[test]
    fn constants_must_match_exactly() {
        let mk = |name: &str| {
            let mut b = SimpleQuery::builder();
            let x = b.var("x");
            let c = b.constant(name);
            b.edge(x, "wb", c).project(x);
            b.build().unwrap()
        };
        assert!(isomorphic(&mk("Erdos"), &mk("Erdos")));
        assert!(!isomorphic(&mk("Erdos"), &mk("Bob")));
    }

    #[test]
    fn var_never_matches_const() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.edge(x, "wb", y).project(x);
        let vars = b.build().unwrap();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let c = b.constant("Erdos");
        b.edge(x, "wb", c).project(x);
        let konst = b.build().unwrap();
        assert!(!isomorphic(&vars, &konst));
    }

    #[test]
    fn diseqs_distinguish_queries() {
        let mk = |with_diseq: bool| {
            let mut b = SimpleQuery::builder();
            let x = b.var("x");
            let y = b.var("y");
            let p = b.var("p");
            b.edge(p, "wb", x).edge(p, "wb", y).project(x);
            if with_diseq {
                b.diseq(x, y);
            }
            b.build().unwrap()
        };
        assert!(!isomorphic(&mk(true), &mk(false)));
        assert!(isomorphic(&mk(true), &mk(true)));
    }

    #[test]
    fn union_iso_is_order_insensitive() {
        let u1 = UnionQuery::new(vec![erdos_q1(), erdos_q2()]).unwrap();
        let u2 = UnionQuery::new(vec![erdos_q2(), renamed_q1()]).unwrap();
        assert!(union_isomorphic(&u1, &u2));
        let u3 = UnionQuery::new(vec![erdos_q2()]).unwrap();
        assert!(!union_isomorphic(&u1, &u3));
    }

    #[test]
    fn dedup_keeps_first_of_each_class() {
        let out = dedup_unions(vec![
            UnionQuery::single(erdos_q1()),
            UnionQuery::single(renamed_q1()),
            UnionQuery::single(erdos_q2()),
        ]);
        assert_eq!(out.len(), 2);
    }
}
