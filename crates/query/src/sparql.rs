//! SPARQL-style concrete syntax for the paper's query fragment.
//!
//! The fragment is basic graph patterns with one projected variable,
//! disequality filters, and unions. Because every branch of a union has
//! its *own* projected node (Section II-A), the concrete syntax keeps one
//! `SELECT` per branch and joins branches with a top-level `UNION`:
//!
//! ```text
//! SELECT ?a1 WHERE {
//!   ?p1 :wb ?a1 .
//!   ?p1 :wb ?a2 .
//!   FILTER(?a1 != ?a2) .
//! }
//! UNION
//! SELECT ?x WHERE { :paper1 :wb ?x . }
//! ```
//!
//! Constants are written with a leading `:` (an ontology value), variables
//! with a leading `?`. OPTIONAL edges render as single-triple blocks,
//! `OPTIONAL { ?f :genre ?g }`. [`format_simple`]/[`format_union`] render
//! queries; [`parse_union`] parses them back. Round-tripping preserves
//! structure exactly (node order may differ; queries stay isomorphic).

use std::fmt::Write as _;

use crate::error::QueryError;
use crate::simple::{NodeLabel, QueryBuilder, QueryNodeId, SimpleQuery};
use crate::union::UnionQuery;

/// Renders a simple query as a single `SELECT ... WHERE { ... }` block.
pub fn format_simple(q: &SimpleQuery) -> String {
    let mut s = String::new();
    let proj = match q.label(q.projected()) {
        NodeLabel::Var(v) => v,
        NodeLabel::Const(_) => unreachable!("projected node is always a variable"),
    };
    let _ = write!(s, "SELECT ?{proj} WHERE {{");
    let mut items: Vec<String> = Vec::new();
    for e in q.edges() {
        let triple = format!("{} :{} {}", q.label(e.src), e.pred, q.label(e.dst));
        if e.optional {
            items.push(format!("OPTIONAL {{ {triple} }}"));
        } else {
            items.push(triple);
        }
    }
    // A node with no incident edges still has to be mentioned; SPARQL has
    // no syntax for isolated pattern nodes, so the single-node query is
    // rendered as a bare variable item (our parser understands it).
    if q.edges().is_empty() {
        for n in q.node_ids() {
            items.push(format!("{}", q.label(n)));
        }
    }
    for &(a, b) in q.diseqs() {
        items.push(format!("FILTER({} != {})", q.label(a), q.label(b)));
    }
    if items.is_empty() {
        s.push_str(" }");
        return s;
    }
    s.push('\n');
    for item in items {
        let _ = writeln!(s, "  {item} .");
    }
    s.push('}');
    s
}

/// Renders a union query, joining branches with `UNION` lines.
pub fn format_union(q: &UnionQuery) -> String {
    q.branches()
        .iter()
        .map(format_simple)
        .collect::<Vec<_>>()
        .join("\nUNION\n")
}

impl std::fmt::Display for SimpleQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&format_simple(self))
    }
}

impl std::fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&format_union(self))
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Select,
    Where,
    Union,
    Filter,
    Optional,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Neq,
    Var(String),
    Const(String),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn next(&mut self) -> Result<Option<(usize, Tok)>, QueryError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let at = self.pos;
        let c = self.src[self.pos];
        let tok = match c {
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'.' => {
                self.pos += 1;
                Tok::Dot
            }
            b'!' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Neq
                } else {
                    return Err(self.err("expected `!=`"));
                }
            }
            b'?' => {
                self.pos += 1;
                let name = self.ident();
                if name.is_empty() {
                    return Err(self.err("empty variable name after `?`"));
                }
                Tok::Var(name)
            }
            b':' => {
                self.pos += 1;
                let name = self.ident();
                if name.is_empty() {
                    return Err(self.err("empty constant after `:`"));
                }
                Tok::Const(name)
            }
            _ if c.is_ascii_alphabetic() => {
                let word = self.ident();
                match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Tok::Select,
                    "WHERE" => Tok::Where,
                    "UNION" => Tok::Union,
                    "FILTER" => Tok::Filter,
                    "OPTIONAL" => Tok::Optional,
                    other => return Err(self.err(format!("unexpected keyword {other:?}"))),
                }
            }
            other => return Err(self.err(format!("unexpected byte {:?}", other as char))),
        };
        Ok(Some((at, tok)))
    }
}

struct Parser<'a> {
    lex: Lexer<'a>,
    peeked: Option<Option<(usize, Tok)>>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            lex: Lexer::new(src),
            peeked: None,
        }
    }

    fn peek(&mut self) -> Result<Option<Tok>, QueryError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lex.next()?);
        }
        Ok(self
            .peeked
            .as_ref()
            .expect("just filled")
            .as_ref()
            .map(|(_, t)| t.clone()))
    }

    fn advance(&mut self) -> Result<Option<(usize, Tok)>, QueryError> {
        match self.peeked.take() {
            Some(v) => Ok(v),
            None => self.lex.next(),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), QueryError> {
        match self.advance()? {
            Some((_, ref t)) if *t == want => Ok(()),
            Some((at, t)) => Err(QueryError::Parse {
                at,
                message: format!("expected {want:?}, found {t:?}"),
            }),
            None => Err(QueryError::Parse {
                at: self.lex.pos,
                message: format!("expected {want:?}, found end of input"),
            }),
        }
    }

    fn term(&mut self, b: &mut QueryBuilder) -> Result<QueryNodeId, QueryError> {
        match self.advance()? {
            Some((_, Tok::Var(v))) => Ok(b.var(&v)),
            Some((_, Tok::Const(c))) => Ok(b.constant(&c)),
            Some((at, t)) => Err(QueryError::Parse {
                at,
                message: format!("expected a term (?var or :const), found {t:?}"),
            }),
            None => Err(QueryError::Parse {
                at: self.lex.pos,
                message: "expected a term, found end of input".to_string(),
            }),
        }
    }

    fn predicate(&mut self) -> Result<String, QueryError> {
        match self.advance()? {
            Some((_, Tok::Const(p))) => Ok(p),
            Some((at, t)) => Err(QueryError::Parse {
                at,
                message: format!("expected :predicate, found {t:?}"),
            }),
            None => Err(QueryError::Parse {
                at: self.lex.pos,
                message: "expected :predicate".to_string(),
            }),
        }
    }

    fn simple(&mut self) -> Result<SimpleQuery, QueryError> {
        self.expect(Tok::Select)?;
        let proj_name = match self.advance()? {
            Some((_, Tok::Var(v))) => v,
            Some((at, t)) => {
                return Err(QueryError::Parse {
                    at,
                    message: format!("expected projected ?var, found {t:?}"),
                })
            }
            None => {
                return Err(QueryError::Parse {
                    at: self.lex.pos,
                    message: "expected projected ?var".to_string(),
                })
            }
        };
        self.expect(Tok::Where)?;
        self.expect(Tok::LBrace)?;
        let mut b = QueryBuilder::new();
        let proj = b.var(&proj_name);
        b.project(proj);
        loop {
            match self.peek()? {
                Some(Tok::RBrace) => {
                    self.advance()?;
                    break;
                }
                Some(Tok::Filter) => {
                    self.advance()?;
                    self.expect(Tok::LParen)?;
                    let a = self.term(&mut b)?;
                    self.expect(Tok::Neq)?;
                    let c = self.term(&mut b)?;
                    self.expect(Tok::RParen)?;
                    b.diseq(a, c);
                    self.optional_dot()?;
                }
                Some(Tok::Optional) => {
                    self.advance()?;
                    self.expect(Tok::LBrace)?;
                    let s = self.term(&mut b)?;
                    let pred = self.predicate()?;
                    let d = self.term(&mut b)?;
                    self.optional_dot()?;
                    self.expect(Tok::RBrace)?;
                    b.optional_edge(s, &pred, d);
                    self.optional_dot()?;
                }
                Some(_) => {
                    let s = self.term(&mut b)?;
                    // A bare term followed by `.`/`}` is an isolated node.
                    match self.peek()? {
                        Some(Tok::Dot) | Some(Tok::RBrace) => {
                            self.optional_dot()?;
                            continue;
                        }
                        _ => {}
                    }
                    let pred = self.predicate()?;
                    let d = self.term(&mut b)?;
                    b.edge(s, &pred, d);
                    self.optional_dot()?;
                }
                None => {
                    return Err(QueryError::Parse {
                        at: self.lex.pos,
                        message: "unterminated pattern: expected `}`".to_string(),
                    })
                }
            }
        }
        b.build()
    }

    fn optional_dot(&mut self) -> Result<(), QueryError> {
        if self.peek()? == Some(Tok::Dot) {
            self.advance()?;
        }
        Ok(())
    }

    fn union(&mut self) -> Result<UnionQuery, QueryError> {
        let mut branches = vec![self.simple()?];
        loop {
            match self.peek()? {
                Some(Tok::Union) => {
                    self.advance()?;
                    branches.push(self.simple()?);
                }
                None => break,
                Some(t) => {
                    return Err(QueryError::Parse {
                        at: self.lex.pos,
                        message: format!("expected UNION or end of input, found {t:?}"),
                    })
                }
            }
        }
        UnionQuery::new(branches)
    }
}

/// Parses a simple query (a single `SELECT ... WHERE { ... }`).
///
/// # Errors
/// Returns a [`QueryError::Parse`] pointing at the offending byte.
pub fn parse_simple(src: &str) -> Result<SimpleQuery, QueryError> {
    let mut p = Parser::new(src);
    let q = p.simple()?;
    if let Some(t) = p.peek()? {
        return Err(QueryError::Parse {
            at: p.lex.pos,
            message: format!("trailing input after query: {t:?}"),
        });
    }
    Ok(q)
}

/// Parses a union query (`SELECT...` blocks joined by `UNION`).
///
/// ```
/// use questpro_query::sparql::parse_union;
///
/// let q = parse_union(
///     "SELECT ?x WHERE { ?p :wb ?x . ?p :wb :Erdos . FILTER(?x != :Erdos) }\n\
///      UNION\n\
///      SELECT ?y WHERE { ?y :wb :Solo . OPTIONAL { ?y :year ?when } }",
/// ).unwrap();
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.diseq_count(), 1);
/// assert_eq!(q.branches()[1].optional_edge_count(), 1);
/// ```
///
/// # Errors
/// Returns a [`QueryError::Parse`] pointing at the offending byte.
pub fn parse_union(src: &str) -> Result<UnionQuery, QueryError> {
    Parser::new(src).union()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{erdos_q1, erdos_q2};
    use crate::iso::{isomorphic, union_isomorphic};

    #[test]
    fn q1_round_trips() {
        let q = erdos_q1();
        let text = format_simple(&q);
        assert!(text.starts_with("SELECT ?a1 WHERE {"));
        assert!(text.contains("?p1 :wb ?a1 ."));
        let back = parse_simple(&text).unwrap();
        assert!(isomorphic(&q, &back));
    }

    #[test]
    fn diseq_filters_round_trip() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        let p = b.var("p");
        b.edge(p, "wb", x).edge(p, "wb", y).project(x).diseq(x, y);
        let q = b.build().unwrap();
        let text = format_simple(&q);
        assert!(text.contains("FILTER(?x != ?y)"));
        let back = parse_simple(&text).unwrap();
        assert!(isomorphic(&q, &back));
    }

    #[test]
    fn constants_round_trip() {
        let src = "SELECT ?a WHERE { ?p :wb ?a . ?p :wb :Erdos . }";
        let q = parse_simple(src).unwrap();
        assert_eq!(q.edge_count(), 2);
        assert!(q.node_of_const("Erdos").is_some());
        let back = parse_simple(&format_simple(&q)).unwrap();
        assert!(isomorphic(&q, &back));
    }

    #[test]
    fn union_round_trips() {
        let u = UnionQuery::new(vec![erdos_q1(), erdos_q2()]).unwrap();
        let text = format_union(&u);
        assert!(text.contains("\nUNION\n"));
        let back = parse_union(&text).unwrap();
        assert!(union_isomorphic(&u, &back));
    }

    #[test]
    fn single_node_query_round_trips() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        b.project(x);
        let q = b.build().unwrap();
        let text = format_simple(&q);
        let back = parse_simple(&text).unwrap();
        assert!(isomorphic(&q, &back));
    }

    #[test]
    fn optional_edges_round_trip() {
        let mut b = SimpleQuery::builder();
        let f = b.var("f");
        let a = b.var("a");
        let g = b.var("g");
        b.edge(f, "starring", a)
            .optional_edge(f, "genre", g)
            .project(a);
        let q = b.build().unwrap();
        let text = format_simple(&q);
        assert!(text.contains("OPTIONAL { ?f :genre ?g }"), "{text}");
        let back = parse_simple(&text).unwrap();
        assert!(isomorphic(&q, &back));
        assert_eq!(back.optional_edge_count(), 1);
        // Optionality matters for isomorphism.
        let mut b = SimpleQuery::builder();
        let f = b.var("f");
        let a = b.var("a");
        let g = b.var("g");
        b.edge(f, "starring", a).edge(f, "genre", g).project(a);
        let required = b.build().unwrap();
        assert!(!isomorphic(&q, &required));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_simple("SELECT ?x WHERE { ?x :p }").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
        let err = parse_simple("SELECT :c WHERE { }").unwrap_err();
        assert!(err.to_string().contains("projected"));
        let err = parse_simple("SELECT ?x WHERE { ?x :p ?y . ").unwrap_err();
        assert!(err.to_string().contains("unterminated") || err.to_string().contains("`}`"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse_simple("SELECT ?x WHERE { } SELECT").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_simple("select ?x where { ?x :p ?y . }").unwrap();
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn display_impls_delegate_to_formatters() {
        let q = erdos_q2();
        assert_eq!(q.to_string(), format_simple(&q));
        let u = UnionQuery::single(erdos_q1());
        assert_eq!(u.to_string(), format_union(&u));
    }
}
