//! SPARQL-style concrete syntax for the paper's query fragment.
//!
//! The fragment is basic graph patterns with one projected variable,
//! disequality filters, and unions. Because every branch of a union has
//! its *own* projected node (Section II-A), the concrete syntax keeps one
//! `SELECT` per branch and joins branches with a top-level `UNION`:
//!
//! ```text
//! SELECT ?a1 WHERE {
//!   ?p1 :wb ?a1 .
//!   ?p1 :wb ?a2 .
//!   FILTER(?a1 != ?a2) .
//! }
//! UNION
//! SELECT ?x WHERE { :paper1 :wb ?x . }
//! ```
//!
//! Constants are written with a leading `:` (an ontology value), variables
//! with a leading `?`. OPTIONAL edges render as single-triple blocks,
//! `OPTIONAL { ?f :genre ?g }`. [`format_simple`]/[`format_union`] render
//! queries; [`parse_union`] parses them back. Round-tripping preserves
//! structure exactly (node order may differ; queries stay isomorphic).
//!
//! Identifiers (variable names, constants, predicates) may be arbitrary
//! non-empty strings: when rendering, every byte outside `[A-Za-z0-9_-]`
//! is percent-encoded as `%xx` (lowercase hex over the UTF-8 encoding),
//! and the lexer decodes `%xx` sequences back. A label containing the
//! grammar's own delimiters — quotes, braces, dots, whitespace, `?`,
//! `:`, `%` itself — therefore survives `format → parse` unchanged.

use std::fmt::Write as _;

use crate::error::QueryError;
use crate::simple::{NodeLabel, QueryBuilder, QueryNodeId, SimpleQuery};
use crate::union::UnionQuery;

/// Percent-encodes an identifier for the concrete syntax: every byte of
/// the UTF-8 encoding outside `[A-Za-z0-9_-]` becomes `%xx`, so labels
/// containing quotes, whitespace, the grammar's delimiters, or `%`
/// itself round-trip through [`parse_union`] unchanged.
fn escape_ident(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' {
            out.push(b as char);
        } else {
            let _ = write!(out, "%{b:02x}");
        }
    }
    out
}

/// Decodes one hex digit (either case), or `None` for a non-hex byte.
fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Renders one term with its `?`/`:` sigil and an escaped identifier.
fn term_text(l: &NodeLabel) -> String {
    match l {
        NodeLabel::Var(v) => format!("?{}", escape_ident(v)),
        NodeLabel::Const(c) => format!(":{}", escape_ident(c)),
    }
}

/// Renders a simple query as a single `SELECT ... WHERE { ... }` block.
pub fn format_simple(q: &SimpleQuery) -> String {
    let mut s = String::new();
    let proj = match q.label(q.projected()) {
        NodeLabel::Var(v) => escape_ident(v),
        NodeLabel::Const(_) => unreachable!("projected node is always a variable"),
    };
    let _ = write!(s, "SELECT ?{proj} WHERE {{");
    let mut items: Vec<String> = Vec::new();
    for e in q.edges() {
        let triple = format!(
            "{} :{} {}",
            term_text(q.label(e.src)),
            escape_ident(&e.pred),
            term_text(q.label(e.dst))
        );
        if e.optional {
            items.push(format!("OPTIONAL {{ {triple} }}"));
        } else {
            items.push(triple);
        }
    }
    // A node with no incident edges still has to be mentioned, even when
    // other nodes do have edges — the dialect renders it as a bare term
    // item, which the parser reads back anywhere in the block. (Emitting
    // these only for edge-free queries silently dropped isolated nodes
    // from mixed patterns, breaking the round-trip.)
    for n in q.node_ids() {
        if q.degree(n) == 0 {
            items.push(term_text(q.label(n)));
        }
    }
    for &(a, b) in q.diseqs() {
        items.push(format!(
            "FILTER({} != {})",
            term_text(q.label(a)),
            term_text(q.label(b))
        ));
    }
    if items.is_empty() {
        s.push_str(" }");
        return s;
    }
    s.push('\n');
    for item in items {
        let _ = writeln!(s, "  {item} .");
    }
    s.push('}');
    s
}

/// Renders a union query, joining branches with `UNION` lines.
pub fn format_union(q: &UnionQuery) -> String {
    q.branches()
        .iter()
        .map(format_simple)
        .collect::<Vec<_>>()
        .join("\nUNION\n")
}

impl std::fmt::Display for SimpleQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&format_simple(self))
    }
}

impl std::fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&format_union(self))
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Select,
    Where,
    Union,
    Filter,
    Optional,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Neq,
    Var(String),
    Const(String),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Reads an identifier, decoding `%xx` escapes (the inverse of
    /// `escape_ident`). A `%` not followed by two hex digits, or an
    /// escape sequence decoding to invalid UTF-8, is a parse error.
    fn ident(&mut self) -> Result<String, QueryError> {
        let mut bytes: Vec<u8> = Vec::new();
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                bytes.push(c);
                self.pos += 1;
            } else if c == b'%' {
                let (hi, lo) = match (self.src.get(self.pos + 1), self.src.get(self.pos + 2)) {
                    (Some(&h), Some(&l)) => (hex_val(h), hex_val(l)),
                    _ => (None, None),
                };
                let (Some(hi), Some(lo)) = (hi, lo) else {
                    return Err(self.err("`%` must be followed by two hex digits"));
                };
                bytes.push((hi << 4) | lo);
                self.pos += 3;
            } else {
                break;
            }
        }
        String::from_utf8(bytes).map_err(|_| self.err("percent-escapes decode to invalid UTF-8"))
    }

    fn next(&mut self) -> Result<Option<(usize, Tok)>, QueryError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let at = self.pos;
        let c = self.src[self.pos];
        let tok = match c {
            b'{' => {
                self.pos += 1;
                Tok::LBrace
            }
            b'}' => {
                self.pos += 1;
                Tok::RBrace
            }
            b'(' => {
                self.pos += 1;
                Tok::LParen
            }
            b')' => {
                self.pos += 1;
                Tok::RParen
            }
            b'.' => {
                self.pos += 1;
                Tok::Dot
            }
            b'!' => {
                if self.src.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Tok::Neq
                } else {
                    return Err(self.err("expected `!=`"));
                }
            }
            b'?' => {
                self.pos += 1;
                let name = self.ident()?;
                if name.is_empty() {
                    return Err(self.err("empty variable name after `?`"));
                }
                Tok::Var(name)
            }
            b':' => {
                self.pos += 1;
                let name = self.ident()?;
                if name.is_empty() {
                    return Err(self.err("empty constant after `:`"));
                }
                Tok::Const(name)
            }
            _ if c.is_ascii_alphabetic() => {
                let word = self.ident()?;
                match word.to_ascii_uppercase().as_str() {
                    "SELECT" => Tok::Select,
                    "WHERE" => Tok::Where,
                    "UNION" => Tok::Union,
                    "FILTER" => Tok::Filter,
                    "OPTIONAL" => Tok::Optional,
                    other => return Err(self.err(format!("unexpected keyword {other:?}"))),
                }
            }
            other => return Err(self.err(format!("unexpected byte {:?}", other as char))),
        };
        Ok(Some((at, tok)))
    }
}

struct Parser<'a> {
    lex: Lexer<'a>,
    peeked: Option<Option<(usize, Tok)>>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            lex: Lexer::new(src),
            peeked: None,
        }
    }

    fn peek(&mut self) -> Result<Option<Tok>, QueryError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lex.next()?);
        }
        Ok(self
            .peeked
            .as_ref()
            .expect("just filled")
            .as_ref()
            .map(|(_, t)| t.clone()))
    }

    fn advance(&mut self) -> Result<Option<(usize, Tok)>, QueryError> {
        match self.peeked.take() {
            Some(v) => Ok(v),
            None => self.lex.next(),
        }
    }

    fn expect(&mut self, want: Tok) -> Result<(), QueryError> {
        match self.advance()? {
            Some((_, ref t)) if *t == want => Ok(()),
            Some((at, t)) => Err(QueryError::Parse {
                at,
                message: format!("expected {want:?}, found {t:?}"),
            }),
            None => Err(QueryError::Parse {
                at: self.lex.pos,
                message: format!("expected {want:?}, found end of input"),
            }),
        }
    }

    fn term(&mut self, b: &mut QueryBuilder) -> Result<QueryNodeId, QueryError> {
        match self.advance()? {
            Some((_, Tok::Var(v))) => Ok(b.var(&v)),
            Some((_, Tok::Const(c))) => Ok(b.constant(&c)),
            Some((at, t)) => Err(QueryError::Parse {
                at,
                message: format!("expected a term (?var or :const), found {t:?}"),
            }),
            None => Err(QueryError::Parse {
                at: self.lex.pos,
                message: "expected a term, found end of input".to_string(),
            }),
        }
    }

    fn predicate(&mut self) -> Result<String, QueryError> {
        match self.advance()? {
            Some((_, Tok::Const(p))) => Ok(p),
            Some((at, t)) => Err(QueryError::Parse {
                at,
                message: format!("expected :predicate, found {t:?}"),
            }),
            None => Err(QueryError::Parse {
                at: self.lex.pos,
                message: "expected :predicate".to_string(),
            }),
        }
    }

    fn simple(&mut self) -> Result<SimpleQuery, QueryError> {
        self.expect(Tok::Select)?;
        let proj_name = match self.advance()? {
            Some((_, Tok::Var(v))) => v,
            Some((at, t)) => {
                return Err(QueryError::Parse {
                    at,
                    message: format!("expected projected ?var, found {t:?}"),
                })
            }
            None => {
                return Err(QueryError::Parse {
                    at: self.lex.pos,
                    message: "expected projected ?var".to_string(),
                })
            }
        };
        self.expect(Tok::Where)?;
        self.expect(Tok::LBrace)?;
        let mut b = QueryBuilder::new();
        let proj = b.var(&proj_name);
        b.project(proj);
        loop {
            match self.peek()? {
                Some(Tok::RBrace) => {
                    self.advance()?;
                    break;
                }
                Some(Tok::Filter) => {
                    self.advance()?;
                    self.expect(Tok::LParen)?;
                    let a = self.term(&mut b)?;
                    self.expect(Tok::Neq)?;
                    let c = self.term(&mut b)?;
                    self.expect(Tok::RParen)?;
                    b.diseq(a, c);
                    self.optional_dot()?;
                }
                Some(Tok::Optional) => {
                    self.advance()?;
                    self.expect(Tok::LBrace)?;
                    let s = self.term(&mut b)?;
                    let pred = self.predicate()?;
                    let d = self.term(&mut b)?;
                    self.optional_dot()?;
                    self.expect(Tok::RBrace)?;
                    b.optional_edge(s, &pred, d);
                    self.optional_dot()?;
                }
                Some(_) => {
                    let s = self.term(&mut b)?;
                    // A bare term followed by `.`/`}` is an isolated node.
                    match self.peek()? {
                        Some(Tok::Dot) | Some(Tok::RBrace) => {
                            self.optional_dot()?;
                            continue;
                        }
                        _ => {}
                    }
                    let pred = self.predicate()?;
                    let d = self.term(&mut b)?;
                    b.edge(s, &pred, d);
                    self.optional_dot()?;
                }
                None => {
                    return Err(QueryError::Parse {
                        at: self.lex.pos,
                        message: "unterminated pattern: expected `}`".to_string(),
                    })
                }
            }
        }
        b.build()
    }

    fn optional_dot(&mut self) -> Result<(), QueryError> {
        if self.peek()? == Some(Tok::Dot) {
            self.advance()?;
        }
        Ok(())
    }

    fn union(&mut self) -> Result<UnionQuery, QueryError> {
        let mut branches = vec![self.simple()?];
        loop {
            match self.peek()? {
                Some(Tok::Union) => {
                    self.advance()?;
                    branches.push(self.simple()?);
                }
                None => break,
                Some(t) => {
                    return Err(QueryError::Parse {
                        at: self.lex.pos,
                        message: format!("expected UNION or end of input, found {t:?}"),
                    })
                }
            }
        }
        UnionQuery::new(branches)
    }
}

/// Parses a simple query (a single `SELECT ... WHERE { ... }`).
///
/// # Errors
/// Returns a [`QueryError::Parse`] pointing at the offending byte.
pub fn parse_simple(src: &str) -> Result<SimpleQuery, QueryError> {
    let mut p = Parser::new(src);
    let q = p.simple()?;
    if let Some(t) = p.peek()? {
        return Err(QueryError::Parse {
            at: p.lex.pos,
            message: format!("trailing input after query: {t:?}"),
        });
    }
    Ok(q)
}

/// Parses a union query (`SELECT...` blocks joined by `UNION`).
///
/// ```
/// use questpro_query::sparql::parse_union;
///
/// let q = parse_union(
///     "SELECT ?x WHERE { ?p :wb ?x . ?p :wb :Erdos . FILTER(?x != :Erdos) }\n\
///      UNION\n\
///      SELECT ?y WHERE { ?y :wb :Solo . OPTIONAL { ?y :year ?when } }",
/// ).unwrap();
/// assert_eq!(q.len(), 2);
/// assert_eq!(q.diseq_count(), 1);
/// assert_eq!(q.branches()[1].optional_edge_count(), 1);
/// ```
///
/// # Errors
/// Returns a [`QueryError::Parse`] pointing at the offending byte.
pub fn parse_union(src: &str) -> Result<UnionQuery, QueryError> {
    Parser::new(src).union()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{erdos_q1, erdos_q2};
    use crate::iso::{isomorphic, union_isomorphic};

    #[test]
    fn q1_round_trips() {
        let q = erdos_q1();
        let text = format_simple(&q);
        assert!(text.starts_with("SELECT ?a1 WHERE {"));
        assert!(text.contains("?p1 :wb ?a1 ."));
        let back = parse_simple(&text).unwrap();
        assert!(isomorphic(&q, &back));
    }

    #[test]
    fn diseq_filters_round_trip() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        let p = b.var("p");
        b.edge(p, "wb", x).edge(p, "wb", y).project(x).diseq(x, y);
        let q = b.build().unwrap();
        let text = format_simple(&q);
        assert!(text.contains("FILTER(?x != ?y)"));
        let back = parse_simple(&text).unwrap();
        assert!(isomorphic(&q, &back));
    }

    #[test]
    fn constants_round_trip() {
        let src = "SELECT ?a WHERE { ?p :wb ?a . ?p :wb :Erdos . }";
        let q = parse_simple(src).unwrap();
        assert_eq!(q.edge_count(), 2);
        assert!(q.node_of_const("Erdos").is_some());
        let back = parse_simple(&format_simple(&q)).unwrap();
        assert!(isomorphic(&q, &back));
    }

    #[test]
    fn union_round_trips() {
        let u = UnionQuery::new(vec![erdos_q1(), erdos_q2()]).unwrap();
        let text = format_union(&u);
        assert!(text.contains("\nUNION\n"));
        let back = parse_union(&text).unwrap();
        assert!(union_isomorphic(&u, &back));
    }

    #[test]
    fn single_node_query_round_trips() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        b.project(x);
        let q = b.build().unwrap();
        let text = format_simple(&q);
        let back = parse_simple(&text).unwrap();
        assert!(isomorphic(&q, &back));
    }

    #[test]
    fn optional_edges_round_trip() {
        let mut b = SimpleQuery::builder();
        let f = b.var("f");
        let a = b.var("a");
        let g = b.var("g");
        b.edge(f, "starring", a)
            .optional_edge(f, "genre", g)
            .project(a);
        let q = b.build().unwrap();
        let text = format_simple(&q);
        assert!(text.contains("OPTIONAL { ?f :genre ?g }"), "{text}");
        let back = parse_simple(&text).unwrap();
        assert!(isomorphic(&q, &back));
        assert_eq!(back.optional_edge_count(), 1);
        // Optionality matters for isomorphism.
        let mut b = SimpleQuery::builder();
        let f = b.var("f");
        let a = b.var("a");
        let g = b.var("g");
        b.edge(f, "starring", a).edge(f, "genre", g).project(a);
        let required = b.build().unwrap();
        assert!(!isomorphic(&q, &required));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_simple("SELECT ?x WHERE { ?x :p }").unwrap_err();
        assert!(matches!(err, QueryError::Parse { .. }));
        let err = parse_simple("SELECT :c WHERE { }").unwrap_err();
        assert!(err.to_string().contains("projected"));
        let err = parse_simple("SELECT ?x WHERE { ?x :p ?y . ").unwrap_err();
        assert!(err.to_string().contains("unterminated") || err.to_string().contains("`}`"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let err = parse_simple("SELECT ?x WHERE { } SELECT").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }

    #[test]
    fn case_insensitive_keywords() {
        let q = parse_simple("select ?x where { ?x :p ?y . }").unwrap();
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn isolated_nodes_survive_alongside_edges() {
        // Found by the fuzz harness: the formatter used to emit bare
        // isolated-node items only for edge-free queries, silently
        // dropping them from mixed patterns.
        let src = "SELECT ?x WHERE { ?x :p ?y . ?lone . :alone . }";
        let q = parse_simple(src).unwrap();
        assert_eq!(q.node_count(), 4);
        let text = format_simple(&q);
        let back = parse_simple(&text).unwrap();
        assert!(isomorphic(&q, &back), "{text}");
        assert!(back.node_of_var("lone").is_some());
        assert!(back.node_of_const("alone").is_some());
    }

    #[test]
    fn metacharacter_labels_round_trip() {
        // One nasty label per metacharacter class: quote, backslash,
        // newline, the grammar's own delimiters, `%` itself, non-ASCII.
        let labels = [
            "with\"quote",
            "back\\slash",
            "line\nbreak",
            "has space",
            "dot.dot",
            "brace}close",
            "brace{open",
            "question?mark",
            "colon:sep",
            "percent%25",
            "bang!=neq",
            "emoji\u{1F600}tail",
            "tab\there",
        ];
        for label in labels {
            let mut b = SimpleQuery::builder();
            let x = b.var(label);
            let c = b.constant(label);
            b.edge(x, label, c).project(x);
            let q = b.build().unwrap();
            let text = format_simple(&q);
            let back = parse_simple(&text)
                .unwrap_or_else(|e| panic!("label {label:?} failed to re-parse: {e}\n{text}"));
            assert!(
                isomorphic(&q, &back),
                "label {label:?} broke the round-trip"
            );
            assert!(
                back.node_of_const(label).is_some(),
                "constant {label:?} not preserved"
            );
        }
    }

    #[test]
    fn escaped_identifiers_decode_in_source_text() {
        let q = parse_simple("SELECT ?a%20b WHERE { ?a%20b :p%2eq ?y . }").unwrap();
        let text = format_simple(&q);
        assert!(text.contains("?a%20b"), "{text}");
        assert!(text.contains(":p%2eq"), "{text}");
    }

    #[test]
    fn malformed_percent_escapes_are_errors() {
        for src in [
            "SELECT ?x% WHERE { }",
            "SELECT ?x%2 WHERE { }",
            "SELECT ?x%zz WHERE { }",
            "SELECT ?x WHERE { ?x :p%ff%fe ?y . }",
        ] {
            let err = parse_simple(src).unwrap_err();
            assert!(matches!(err, QueryError::Parse { .. }), "{src}");
        }
    }

    #[test]
    fn display_impls_delegate_to_formatters() {
        let q = erdos_q2();
        assert_eq!(q.to_string(), format_simple(&q));
        let u = UnionQuery::single(erdos_q1());
        assert_eq!(u.to_string(), format_union(&u));
    }
}
