//! Query model for QuestPro-RS.
//!
//! Implements the query fragment of Section II-A of the paper:
//!
//! * a **simple SPARQL query** is a basic graph pattern — a directed
//!   labeled graph whose nodes carry either a *constant* (an ontology
//!   value) or a *variable* — with a single **projected node** that must
//!   be a variable ([`SimpleQuery`]);
//! * a **SPARQL query** is a union of simple queries ([`UnionQuery`]);
//! * simple queries may carry **disequality** constraints between pairs of
//!   variables (Section V).
//!
//! Every node of a simple query has a distinct label: constants are
//! deduplicated (two occurrences of the same constant denote the same
//! node, exactly as in the ontology where values are unique) and each
//! variable labels exactly one node (a variable shared between triple
//! patterns *is* one node with several incident edges). This makes the
//! node↔label correspondence bijective without losing generality.
//!
//! Queries are self-contained — constants and predicates are owned
//! strings, not ontology ids — so they can be printed, parsed, and moved
//! across ontology instances; the evaluation engine resolves them to ids
//! once per evaluation.
//!
//! The crate also provides the paper's cost function
//! `f(Q) = w1·Σ_q vars(q) + w2·|Q|` (Def. 4.1) in [`cost`], structural
//! isomorphism of queries in [`iso`] (used to deduplicate top-k
//! candidates), and SPARQL text rendering/parsing in [`sparql`].

pub mod cost;
pub mod error;
pub mod fixtures;
pub mod iso;
pub mod simple;
pub mod sparql;
pub mod union;

pub use cost::GeneralizationWeights;
pub use error::QueryError;
pub use simple::{NodeLabel, QueryBuilder, QueryEdge, QueryNodeId, SimpleQuery};
pub use union::UnionQuery;
