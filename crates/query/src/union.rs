//! Union queries: collections of simple queries evaluated as a union.

use questpro_graph::{ExampleSet, Ontology};

use crate::cost::GeneralizationWeights;
use crate::error::QueryError;
use crate::simple::SimpleQuery;

/// A SPARQL query in the paper's fragment: a union of simple queries.
///
/// The output of `Union(q1..qn)` on an ontology is `q1(O) ∪ … ∪ qn(O)`,
/// and the provenance of a result is the union of its provenance sets
/// w.r.t. each branch (Section II-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionQuery {
    branches: Vec<SimpleQuery>,
}

impl UnionQuery {
    /// Wraps branches into a union query.
    ///
    /// # Errors
    /// Fails if `branches` is empty.
    pub fn new(branches: Vec<SimpleQuery>) -> Result<Self, QueryError> {
        if branches.is_empty() {
            return Err(QueryError::EmptyUnion);
        }
        Ok(Self { branches })
    }

    /// A union of a single simple query.
    pub fn single(q: SimpleQuery) -> Self {
        Self { branches: vec![q] }
    }

    /// The paper's `Union(Ex)` over-fit baseline: one constants-only
    /// trivial branch per explanation (Section IV).
    pub fn trivial(ont: &Ontology, examples: &ExampleSet) -> Result<Self, QueryError> {
        let branches = examples
            .iter()
            .map(|ex| SimpleQuery::from_explanation(ont, ex))
            .collect();
        Self::new(branches)
    }

    /// The branches of the union.
    pub fn branches(&self) -> &[SimpleQuery] {
        &self.branches
    }

    /// Number of branches (`|Q|` in Def. 4.1).
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// Whether the union has no branches (never true for a constructed
    /// value; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// Total generalization variables across branches
    /// (`Σ_q vars(q)` in Def. 4.1).
    pub fn total_vars(&self) -> usize {
        self.branches.iter().map(|q| q.generalization_vars()).sum()
    }

    /// The minimum-generalization cost `f(Q) = w1·Σvars + w2·|Q|`
    /// (Def. 4.1).
    pub fn cost(&self, w: GeneralizationWeights) -> f64 {
        w.w1 * self.total_vars() as f64 + w.w2 * self.branches.len() as f64
    }

    /// A copy with every branch stripped of disequalities (`Q^no`).
    pub fn without_diseqs(&self) -> UnionQuery {
        UnionQuery {
            branches: self
                .branches
                .iter()
                .map(SimpleQuery::without_diseqs)
                .collect(),
        }
    }

    /// Total number of disequalities across branches.
    pub fn diseq_count(&self) -> usize {
        self.branches.iter().map(|b| b.diseqs().len()).sum()
    }

    /// Consumes the union, returning its branches.
    pub fn into_branches(self) -> Vec<SimpleQuery> {
        self.branches
    }
}

impl From<SimpleQuery> for UnionQuery {
    fn from(q: SimpleQuery) -> Self {
        UnionQuery::single(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::Explanation;

    fn fixture() -> (Ontology, ExampleSet) {
        let mut b = Ontology::builder();
        b.edge("p1", "wb", "Alice").unwrap();
        b.edge("p1", "wb", "Bob").unwrap();
        b.edge("p2", "wb", "Carol").unwrap();
        let o = b.build();
        let e1 = Explanation::from_triples(&o, &[("p1", "wb", "Alice")], "Alice").unwrap();
        let e2 = Explanation::from_triples(&o, &[("p2", "wb", "Carol")], "Carol").unwrap();
        let set = ExampleSet::from_explanations(vec![e1, e2]);
        (o, set)
    }

    #[test]
    fn empty_union_is_rejected() {
        assert!(matches!(
            UnionQuery::new(vec![]),
            Err(QueryError::EmptyUnion)
        ));
    }

    #[test]
    fn trivial_union_has_zero_vars_and_branch_per_explanation() {
        let (o, set) = fixture();
        let u = UnionQuery::trivial(&o, &set).unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(u.total_vars(), 0);
        // Example 4.2: f(Union(E1,E2)) = w1·0 + w2·2.
        let w = GeneralizationWeights::new(2.0, 5.0);
        assert_eq!(u.cost(w), 10.0);
    }

    #[test]
    fn cost_reflects_example_4_3_numbers() {
        // Q1 has 6 generalization variables; with w1=2, w2=5 its union
        // cost as a single branch is 2·6 + 5 = 17 (Example 4.3).
        let q1 = crate::fixtures::erdos_q1();
        let u = UnionQuery::single(q1);
        let w = GeneralizationWeights::new(2.0, 5.0);
        assert_eq!(u.cost(w), 17.0);
    }

    #[test]
    fn without_diseqs_strips_all_branches() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.edge(x, "p", y).project(x).diseq(x, y);
        let q = b.build().unwrap();
        let u = UnionQuery::single(q);
        assert_eq!(u.diseq_count(), 1);
        assert_eq!(u.without_diseqs().diseq_count(), 0);
    }
}
