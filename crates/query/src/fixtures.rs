//! Shared query fixtures from the paper's running example (Figures 2, 4).
//!
//! These are used by tests and examples across the workspace; they are
//! part of the public API so downstream crates can exercise the exact
//! queries the paper discusses.

use crate::simple::SimpleQuery;

/// `Q1` from Figure 2a: authors with Erdős number 2 — a length-2
/// co-authorship chain `?a1 —p1— ?a2 —p2— ?a3 —p3— ?a4` projected on
/// `?a1` (7 variables, 6 of which count for generalization cost).
pub fn erdos_q1() -> SimpleQuery {
    let mut b = SimpleQuery::builder();
    let a1 = b.var("a1");
    let a2 = b.var("a2");
    let a3 = b.var("a3");
    let a4 = b.var("a4");
    let p1 = b.var("p1");
    let p2 = b.var("p2");
    let p3 = b.var("p3");
    b.edge(p1, "wb", a1)
        .edge(p1, "wb", a2)
        .edge(p2, "wb", a2)
        .edge(p2, "wb", a3)
        .edge(p3, "wb", a3)
        .edge(p3, "wb", a4)
        .project(a1);
    b.build().expect("fixture is well-formed")
}

/// `Q2` from Figure 2b: six disjoint `wb` edges with all-fresh variables —
/// the "uninteresting" consistent query produced by the PTIME algorithm of
/// Proposition 3.1 for the running example.
pub fn erdos_q2() -> SimpleQuery {
    let mut b = SimpleQuery::builder();
    let proj = b.var("a1");
    b.project(proj);
    let mut first = true;
    for i in 0..6 {
        let p = b.var(&format!("p{}", i + 1));
        let a = if first {
            first = false;
            proj
        } else {
            b.var(&format!("a{}", i + 1))
        };
        b.edge(p, "wb", a);
    }
    b.build().expect("fixture is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q1_shape() {
        let q = erdos_q1();
        assert_eq!(q.edge_count(), 6);
        assert_eq!(q.generalization_vars(), 6);
        assert!(q.is_connected());
    }

    #[test]
    fn q2_is_disjoint_edges() {
        let q = erdos_q2();
        assert_eq!(q.edge_count(), 6);
        assert_eq!(q.node_count(), 12);
        assert!(!q.is_connected());
    }
}
