//! Simple SPARQL queries: basic graph patterns with one projected node.

use std::fmt;
use std::sync::Arc;

use questpro_graph::{Explanation, Ontology};

use crate::error::QueryError;

/// Index of a node within one [`SimpleQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryNodeId(pub(crate) u32);

impl QueryNodeId {
    /// The node index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from an index; only meaningful for indexes
    /// obtained from the same query.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self(i as u32)
    }
}

impl fmt::Display for QueryNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The label of a query node: an ontology value or a variable name.
///
/// Variable names are stored without the leading `?`; rendering adds it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeLabel {
    /// A constant — must equal the value of the matched ontology node.
    Const(Arc<str>),
    /// A variable — matches any ontology node (consistently).
    Var(Arc<str>),
}

impl NodeLabel {
    /// Whether this label is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, NodeLabel::Var(_))
    }

    /// Whether this label is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, NodeLabel::Const(_))
    }

    /// The constant value, if any.
    pub fn as_const(&self) -> Option<&str> {
        match self {
            NodeLabel::Const(c) => Some(c),
            NodeLabel::Var(_) => None,
        }
    }

    /// The variable name (without `?`), if any.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            NodeLabel::Var(v) => Some(v),
            NodeLabel::Const(_) => None,
        }
    }
}

impl fmt::Display for NodeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeLabel::Const(c) => write!(f, ":{c}"),
            NodeLabel::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// A directed, predicate-labeled edge between two query nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryEdge {
    /// Source node.
    pub src: QueryNodeId,
    /// Target node.
    pub dst: QueryNodeId,
    /// Predicate label.
    pub pred: Arc<str>,
    /// Whether this edge is OPTIONAL (the paper's future-work operator):
    /// required edges define the result set; optional edges extend
    /// matches — and therefore provenance — where they can, and are
    /// skipped where they cannot.
    pub optional: bool,
}

/// A basic graph pattern with a single projected (variable) node and
/// optional disequality constraints.
///
/// Immutable after construction; build with [`QueryBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimpleQuery {
    nodes: Vec<NodeLabel>,
    edges: Vec<QueryEdge>,
    projected: QueryNodeId,
    diseqs: Vec<(QueryNodeId, QueryNodeId)>,
    out: Vec<Vec<u32>>,
    inc: Vec<Vec<u32>>,
}

impl SimpleQuery {
    /// Starts building a query.
    pub fn builder() -> QueryBuilder {
        QueryBuilder::new()
    }

    /// The *trivial branch* for an explanation (Section IV): every
    /// explanation node becomes a constant except the distinguished node,
    /// which becomes the projected variable `?x`; edges are copied.
    ///
    /// Its generalization cost is zero variables, matching the paper's
    /// accounting for `Union(Ex)`.
    pub fn from_explanation(ont: &Ontology, ex: &Explanation) -> SimpleQuery {
        let mut b = QueryBuilder::new();
        let dis = ex.distinguished();
        let proj = b.var("x");
        b.project(proj);
        let node_of = |b: &mut QueryBuilder, n| {
            if n == dis {
                proj
            } else {
                b.constant(ont.value_str(n))
            }
        };
        for &e in ex.edges() {
            let d = ont.edge(e);
            let s = node_of(&mut b, d.src);
            let t = node_of(&mut b, d.dst);
            b.edge(s, ont.pred_str(d.pred), t);
        }
        // Isolated explanation nodes (including a bare distinguished node)
        // still need to appear in the pattern.
        for &n in ex.nodes() {
            let _ = node_of(&mut b, n);
        }
        b.build().expect("trivial branch is always well-formed")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = QueryNodeId> + '_ {
        (0..self.nodes.len() as u32).map(QueryNodeId)
    }

    /// The label of node `n`.
    #[inline]
    pub fn label(&self, n: QueryNodeId) -> &NodeLabel {
        &self.nodes[n.index()]
    }

    /// All node labels, indexed by node id.
    pub fn labels(&self) -> &[NodeLabel] {
        &self.nodes
    }

    /// The edges, in insertion order.
    pub fn edges(&self) -> &[QueryEdge] {
        &self.edges
    }

    /// The projected node (always a variable).
    pub fn projected(&self) -> QueryNodeId {
        self.projected
    }

    /// Disequality constraints as sorted node-id pairs.
    pub fn diseqs(&self) -> &[(QueryNodeId, QueryNodeId)] {
        &self.diseqs
    }

    /// Indexes (into [`edges`](Self::edges)) of edges leaving `n`.
    #[inline]
    pub fn out_edges(&self, n: QueryNodeId) -> &[u32] {
        &self.out[n.index()]
    }

    /// Indexes of edges entering `n`.
    #[inline]
    pub fn in_edges(&self, n: QueryNodeId) -> &[u32] {
        &self.inc[n.index()]
    }

    /// Degree (in + out) of `n`.
    pub fn degree(&self, n: QueryNodeId) -> usize {
        self.out[n.index()].len() + self.inc[n.index()].len()
    }

    /// Number of required (non-optional) edges.
    pub fn required_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| !e.optional).count()
    }

    /// Number of OPTIONAL edges.
    pub fn optional_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.optional).count()
    }

    /// Whether the query has any OPTIONAL edges.
    pub fn has_optional(&self) -> bool {
        self.edges.iter().any(|e| e.optional)
    }

    /// Number of variable-labeled nodes (including the projected one).
    pub fn var_count(&self) -> usize {
        self.nodes.iter().filter(|l| l.is_var()).count()
    }

    /// The paper's variable count for the generalization cost function:
    /// all variables except the projected node. Worked examples 4.2/4.3
    /// show that the trivial constants-only branch counts as zero, so the
    /// always-variable projected node is excluded.
    pub fn generalization_vars(&self) -> usize {
        self.var_count() - 1
    }

    /// Iterates over the variable-labeled nodes.
    pub fn var_nodes(&self) -> impl Iterator<Item = QueryNodeId> + '_ {
        self.node_ids().filter(|&n| self.label(n).is_var())
    }

    /// Finds the node carrying variable `name` (without `?`).
    pub fn node_of_var(&self, name: &str) -> Option<QueryNodeId> {
        self.node_ids()
            .find(|&n| self.label(n).as_var() == Some(name))
    }

    /// Finds the node carrying constant `value`.
    pub fn node_of_const(&self, value: &str) -> Option<QueryNodeId> {
        self.node_ids()
            .find(|&n| self.label(n).as_const() == Some(value))
    }

    /// A copy of this query with `diseqs` as its disequality set
    /// (validated and canonicalized).
    ///
    /// # Errors
    /// Fails if a pair references a non-variable or out-of-range node.
    pub fn with_diseqs(
        &self,
        diseqs: impl IntoIterator<Item = (QueryNodeId, QueryNodeId)>,
    ) -> Result<SimpleQuery, QueryError> {
        let mut q = self.clone();
        q.diseqs.clear();
        for (a, b) in diseqs {
            q.diseqs.push(validate_diseq(&q.nodes, a, b)?);
        }
        q.diseqs.sort_unstable();
        q.diseqs.dedup();
        Ok(q)
    }

    /// A copy of this query with no disequalities (the paper's `Q^no`).
    pub fn without_diseqs(&self) -> SimpleQuery {
        let mut q = self.clone();
        q.diseqs.clear();
        q
    }

    /// Whether the pattern graph is weakly connected (ignoring isolated
    /// check for the single-node query, which counts as connected).
    pub fn is_connected(&self) -> bool {
        if self.nodes.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            let nid = QueryNodeId(n as u32);
            for &ei in self.out[n].iter().chain(self.inc[n].iter()) {
                let e = &self.edges[ei as usize];
                let other = if e.src == nid { e.dst } else { e.src };
                if !seen[other.index()] {
                    seen[other.index()] = true;
                    count += 1;
                    stack.push(other.index());
                }
            }
        }
        count == self.nodes.len()
    }

    /// A multiset fingerprint of the query's shape, invariant under
    /// variable renaming. Used as a cheap pre-filter before the full
    /// isomorphism test in [`crate::iso`].
    pub fn shape_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut sigs: Vec<(u8, String, String, u8, bool)> = self
            .edges
            .iter()
            .map(|e| {
                let ls = &self.nodes[e.src.index()];
                let ld = &self.nodes[e.dst.index()];
                (
                    label_kind(ls, e.src == self.projected),
                    e.pred.to_string(),
                    const_or_empty(ls) + "|" + &const_or_empty(ld),
                    label_kind(ld, e.dst == self.projected),
                    e.optional,
                )
            })
            .collect();
        sigs.sort();
        let mut h = DefaultHasher::new();
        sigs.hash(&mut h);
        self.nodes.len().hash(&mut h);
        self.diseqs.len().hash(&mut h);
        h.finish()
    }
}

fn label_kind(l: &NodeLabel, projected: bool) -> u8 {
    match (l, projected) {
        (NodeLabel::Const(_), _) => 0,
        (NodeLabel::Var(_), false) => 1,
        (NodeLabel::Var(_), true) => 2,
    }
}

fn const_or_empty(l: &NodeLabel) -> String {
    l.as_const().unwrap_or("").to_string()
}

fn validate_diseq(
    nodes: &[NodeLabel],
    a: QueryNodeId,
    b: QueryNodeId,
) -> Result<(QueryNodeId, QueryNodeId), QueryError> {
    if a.index() >= nodes.len() || b.index() >= nodes.len() {
        return Err(QueryError::InvalidDisequality {
            message: format!("node pair ({a}, {b}) out of range"),
        });
    }
    if a == b {
        return Err(QueryError::InvalidDisequality {
            message: format!("disequality of node {a} with itself"),
        });
    }
    if !nodes[a.index()].is_var() && !nodes[b.index()].is_var() {
        return Err(QueryError::InvalidDisequality {
            message: format!("disequality ({a}, {b}) between two constants is vacuous or absurd"),
        });
    }
    Ok(if a < b { (a, b) } else { (b, a) })
}

/// Incremental builder for [`SimpleQuery`].
///
/// Constants and variable names each label at most one node; repeated
/// declarations return the existing node.
#[derive(Debug, Default)]
pub struct QueryBuilder {
    nodes: Vec<NodeLabel>,
    edges: Vec<QueryEdge>,
    projected: Option<QueryNodeId>,
    diseqs: Vec<(QueryNodeId, QueryNodeId)>,
    fresh: u32,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the node labeled with variable `name` (without `?`),
    /// creating it if needed.
    pub fn var(&mut self, name: &str) -> QueryNodeId {
        if let Some(i) = self.nodes.iter().position(|l| l.as_var() == Some(name)) {
            return QueryNodeId(i as u32);
        }
        self.push(NodeLabel::Var(name.into()))
    }

    /// Creates a fresh variable node with an auto-generated name
    /// (`v0`, `v1`, … skipping collisions).
    pub fn fresh_var(&mut self) -> QueryNodeId {
        loop {
            let name = format!("v{}", self.fresh);
            self.fresh += 1;
            if !self.nodes.iter().any(|l| l.as_var() == Some(&name)) {
                return self.push(NodeLabel::Var(name.into()));
            }
        }
    }

    /// Returns the node labeled with constant `value`, creating it if
    /// needed.
    pub fn constant(&mut self, value: &str) -> QueryNodeId {
        if let Some(i) = self.nodes.iter().position(|l| l.as_const() == Some(value)) {
            return QueryNodeId(i as u32);
        }
        self.push(NodeLabel::Const(value.into()))
    }

    fn push(&mut self, label: NodeLabel) -> QueryNodeId {
        let id = QueryNodeId(self.nodes.len() as u32);
        self.nodes.push(label);
        id
    }

    /// Adds the edge `src -pred-> dst`; duplicate edges are ignored.
    pub fn edge(&mut self, src: QueryNodeId, pred: &str, dst: QueryNodeId) -> &mut Self {
        self.push_edge(src, pred, dst, false)
    }

    /// Adds an OPTIONAL edge `src -pred-> dst`; duplicate edges are
    /// ignored (a required duplicate subsumes an optional one).
    pub fn optional_edge(&mut self, src: QueryNodeId, pred: &str, dst: QueryNodeId) -> &mut Self {
        self.push_edge(src, pred, dst, true)
    }

    fn push_edge(
        &mut self,
        src: QueryNodeId,
        pred: &str,
        dst: QueryNodeId,
        optional: bool,
    ) -> &mut Self {
        let same_triple = |e: &QueryEdge| e.src == src && e.dst == dst && &*e.pred == pred;
        if let Some(existing) = self.edges.iter_mut().find(|e| same_triple(e)) {
            // A required declaration wins over an optional one.
            existing.optional &= optional;
            return self;
        }
        self.edges.push(QueryEdge {
            src,
            dst,
            pred: pred.into(),
            optional,
        });
        self
    }

    /// Marks `n` as the projected node.
    pub fn project(&mut self, n: QueryNodeId) -> &mut Self {
        self.projected = Some(n);
        self
    }

    /// Adds a disequality between two variable nodes.
    pub fn diseq(&mut self, a: QueryNodeId, b: QueryNodeId) -> &mut Self {
        self.diseqs.push((a, b));
        self
    }

    /// Finalizes the query.
    ///
    /// # Errors
    /// Fails if no projected node was set, the projected node is not a
    /// variable, or a disequality is malformed.
    pub fn build(self) -> Result<SimpleQuery, QueryError> {
        let projected = self
            .projected
            .ok_or_else(|| QueryError::InvalidProjection {
                message: "no projected node set".to_string(),
            })?;
        if projected.index() >= self.nodes.len() {
            return Err(QueryError::InvalidProjection {
                message: format!("projected node {projected} out of range"),
            });
        }
        if !self.nodes[projected.index()].is_var() {
            return Err(QueryError::InvalidProjection {
                message: "the projected node must be a variable".to_string(),
            });
        }
        // The projected node must always be bound by a match: it may not
        // appear exclusively on OPTIONAL edges.
        let touching: Vec<&QueryEdge> = self
            .edges
            .iter()
            .filter(|e| e.src == projected || e.dst == projected)
            .collect();
        if !touching.is_empty() && touching.iter().all(|e| e.optional) {
            return Err(QueryError::InvalidProjection {
                message: "the projected node may not be optional-only".to_string(),
            });
        }
        for e in &self.edges {
            if e.src.index() >= self.nodes.len() || e.dst.index() >= self.nodes.len() {
                return Err(QueryError::UnknownNode {
                    message: format!("edge endpoint out of range ({} -> {})", e.src, e.dst),
                });
            }
        }
        let mut diseqs = Vec::with_capacity(self.diseqs.len());
        for (a, b) in self.diseqs {
            diseqs.push(validate_diseq(&self.nodes, a, b)?);
        }
        diseqs.sort_unstable();
        diseqs.dedup();
        let mut out = vec![Vec::new(); self.nodes.len()];
        let mut inc = vec![Vec::new(); self.nodes.len()];
        for (i, e) in self.edges.iter().enumerate() {
            out[e.src.index()].push(i as u32);
            inc[e.dst.index()].push(i as u32);
        }
        Ok(SimpleQuery {
            nodes: self.nodes,
            edges: self.edges,
            projected,
            diseqs,
            out,
            inc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Q1 from Figure 2a of the paper: the Erdős-number-2 chain.
    pub(crate) fn erdos_q1() -> SimpleQuery {
        let mut b = SimpleQuery::builder();
        let a1 = b.var("a1");
        let a2 = b.var("a2");
        let a3 = b.var("a3");
        let a4 = b.var("a4");
        let p1 = b.var("p1");
        let p2 = b.var("p2");
        let p3 = b.var("p3");
        b.edge(p1, "wb", a1)
            .edge(p1, "wb", a2)
            .edge(p2, "wb", a2)
            .edge(p2, "wb", a3)
            .edge(p3, "wb", a3)
            .edge(p3, "wb", a4)
            .project(a1);
        b.build().unwrap()
    }

    #[test]
    fn builder_dedupes_vars_and_constants() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let x2 = b.var("x");
        assert_eq!(x, x2);
        let c = b.constant("Erdos");
        let c2 = b.constant("Erdos");
        assert_eq!(c, c2);
        b.edge(x, "wb", c).edge(x, "wb", c); // duplicate edge ignored
        b.project(x);
        let q = b.build().unwrap();
        assert_eq!(q.node_count(), 2);
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn q1_has_expected_shape_and_costs() {
        let q = erdos_q1();
        assert_eq!(q.node_count(), 7);
        assert_eq!(q.edge_count(), 6);
        assert_eq!(q.var_count(), 7);
        // Examples 4.2/4.3 count Q1 as 6 variables.
        assert_eq!(q.generalization_vars(), 6);
        assert!(q.is_connected());
    }

    #[test]
    fn projection_must_be_a_variable() {
        let mut b = SimpleQuery::builder();
        let c = b.constant("Erdos");
        b.project(c);
        assert!(matches!(
            b.build(),
            Err(QueryError::InvalidProjection { .. })
        ));

        let b = SimpleQuery::builder();
        assert!(matches!(
            b.build(),
            Err(QueryError::InvalidProjection { .. })
        ));
    }

    #[test]
    fn diseqs_are_canonicalized_and_validated() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.edge(x, "wb", y).project(x);
        b.diseq(y, x).diseq(x, y); // unordered + duplicate
        let q = b.build().unwrap();
        assert_eq!(q.diseqs(), &[(x, y)]);

        let q2 = q.without_diseqs();
        assert!(q2.diseqs().is_empty());
        let q3 = q2.with_diseqs([(y, x)]).unwrap();
        assert_eq!(q3.diseqs(), &[(x, y)]);
    }

    #[test]
    fn diseq_allows_var_const_but_rejects_const_const_and_self() {
        // Example 5.1 of the paper uses disequalities like `?a1 != Bob`,
        // i.e. between a variable and a constant node.
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let c = b.constant("Erdos");
        b.edge(x, "wb", c).project(x);
        b.diseq(x, c);
        let q = b.build().unwrap();
        assert_eq!(q.diseqs().len(), 1);

        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let c1 = b.constant("Erdos");
        let c2 = b.constant("Bob");
        b.edge(x, "wb", c1).edge(x, "wb", c2).project(x);
        b.diseq(c1, c2);
        assert!(matches!(
            b.build(),
            Err(QueryError::InvalidDisequality { .. })
        ));

        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        b.project(x).diseq(x, x);
        assert!(matches!(
            b.build(),
            Err(QueryError::InvalidDisequality { .. })
        ));
    }

    #[test]
    fn fresh_vars_avoid_collisions() {
        let mut b = SimpleQuery::builder();
        let v0 = b.var("v0");
        let f = b.fresh_var(); // must skip v0
        assert_ne!(v0, f);
        b.edge(v0, "p", f).project(v0);
        let q = b.build().unwrap();
        assert_eq!(q.var_count(), 2);
        assert!(q.node_of_var("v1").is_some());
    }

    #[test]
    fn adjacency_reflects_edges() {
        let q = erdos_q1();
        let p1 = q.node_of_var("p1").unwrap();
        let a2 = q.node_of_var("a2").unwrap();
        assert_eq!(q.out_edges(p1).len(), 2);
        assert_eq!(q.in_edges(a2).len(), 2);
        assert_eq!(q.degree(a2), 2);
    }

    #[test]
    fn disconnected_query_is_detected() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let w = b.var("w");
        b.edge(x, "p", y).edge(z, "p", w).project(x);
        let q = b.build().unwrap();
        assert!(!q.is_connected());
    }

    #[test]
    fn from_explanation_builds_trivial_branch() {
        let mut b = questpro_graph::Ontology::builder();
        b.edge("p1", "wb", "Alice").unwrap();
        b.edge("p1", "wb", "Bob").unwrap();
        let o = b.build();
        let ex =
            Explanation::from_triples(&o, &[("p1", "wb", "Alice"), ("p1", "wb", "Bob")], "Alice")
                .unwrap();
        let q = SimpleQuery::from_explanation(&o, &ex);
        assert_eq!(q.edge_count(), 2);
        assert_eq!(q.var_count(), 1);
        assert_eq!(q.generalization_vars(), 0);
        assert!(q.label(q.projected()).is_var());
        assert!(q.node_of_const("p1").is_some());
        assert!(q.node_of_const("Bob").is_some());
        assert!(q.node_of_const("Alice").is_none()); // it is the variable
    }

    #[test]
    fn from_explanation_handles_isolated_distinguished_node() {
        let mut b = questpro_graph::Ontology::builder();
        b.edge("p1", "wb", "Alice").unwrap();
        let o = b.build();
        let ex = Explanation::from_edges(&o, [], "Alice").unwrap();
        let q = SimpleQuery::from_explanation(&o, &ex);
        assert_eq!(q.node_count(), 1);
        assert_eq!(q.edge_count(), 0);
    }

    #[test]
    fn optional_edges_are_tracked_and_required_wins() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        let g = b.var("g");
        b.edge(x, "starring", y)
            .optional_edge(x, "genre", g)
            .project(y);
        let q = b.build().unwrap();
        assert_eq!(q.required_edge_count(), 1);
        assert_eq!(q.optional_edge_count(), 1);
        assert!(q.has_optional());

        // Declaring the same triple required after optional upgrades it.
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.optional_edge(x, "p", y).edge(x, "p", y).project(x);
        let q = b.build().unwrap();
        assert_eq!(q.optional_edge_count(), 0);
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn optional_only_projection_is_rejected() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.optional_edge(y, "p", x).project(x);
        assert!(matches!(
            b.build(),
            Err(QueryError::InvalidProjection { .. })
        ));
    }

    #[test]
    fn shape_hash_is_renaming_invariant() {
        let q1 = erdos_q1();
        // Same query with different variable names.
        let mut b = SimpleQuery::builder();
        let a1 = b.var("x1");
        let a2 = b.var("x2");
        let a3 = b.var("x3");
        let a4 = b.var("x4");
        let p1 = b.var("y1");
        let p2 = b.var("y2");
        let p3 = b.var("y3");
        b.edge(p1, "wb", a1)
            .edge(p1, "wb", a2)
            .edge(p2, "wb", a2)
            .edge(p2, "wb", a3)
            .edge(p3, "wb", a3)
            .edge(p3, "wb", a4)
            .project(a1);
        let q2 = b.build().unwrap();
        assert_eq!(q1.shape_hash(), q2.shape_hash());
    }
}
