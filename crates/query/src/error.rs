//! Errors for query construction and parsing.

use std::fmt;

/// Errors raised while building or parsing queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The projected node was never set or is not a variable.
    InvalidProjection {
        /// Description of the problem.
        message: String,
    },
    /// A disequality references a non-variable or a missing node.
    InvalidDisequality {
        /// Description of the problem.
        message: String,
    },
    /// A node id does not belong to this query.
    UnknownNode {
        /// Description of the missing node.
        message: String,
    },
    /// SPARQL text could not be parsed.
    Parse {
        /// Byte offset in the input where the error was detected.
        at: usize,
        /// Description of the problem.
        message: String,
    },
    /// A union query must have at least one branch.
    EmptyUnion,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidProjection { message } => {
                write!(f, "invalid projection: {message}")
            }
            QueryError::InvalidDisequality { message } => {
                write!(f, "invalid disequality: {message}")
            }
            QueryError::UnknownNode { message } => write!(f, "unknown query node: {message}"),
            QueryError::Parse { at, message } => {
                write!(f, "SPARQL parse error at byte {at}: {message}")
            }
            QueryError::EmptyUnion => write!(f, "a union query needs at least one branch"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_describe_the_problem() {
        let e = QueryError::Parse {
            at: 10,
            message: "expected `}`".into(),
        };
        assert!(e.to_string().contains("byte 10"));
        assert!(QueryError::EmptyUnion.to_string().contains("at least one"));
    }
}
