//! Byte-level mutators.
//!
//! Mutations degrade the structure-aware generators' valid inputs into
//! near-valid hostile ones — the most productive region for parser
//! bugs, because deeply-wrong input is rejected at the first byte while
//! *almost*-right input exercises every branch of the grammar.

use questpro_graph::rng::Rng;

/// Grammar fragments worth splicing in whole: escape-sequence stubs,
/// keywords, directives, and framing headers that plain bit flips would
/// almost never synthesize.
pub const DICTIONARY: &[&str] = &[
    "\\ud83d",
    "\\ude00",
    "\\uD800A",
    "\\u",
    "1e999",
    "-1e999",
    "1e-999",
    "18446744073709551616",
    "%zz",
    "%",
    "%2",
    "%40",
    "@type",
    "#",
    "UNION",
    "SELECT",
    "FILTER(",
    "OPTIONAL {",
    "!=",
    "\"",
    "\\\\",
    "{{{{{{{{",
    "[[[[[[[[",
    "Content-Length: 7",
    "Content-Length: +4",
    "Transfer-Encoding: chunked",
    "\r\n\r\n",
    "\u{0}",
];

/// Hard cap on mutated inputs — mutation must never grow an input into
/// something whose *size* (rather than shape) dominates the run.
const MAX_LEN: usize = 4096;

/// Applies 1–4 random mutation operators to `bytes` in place.
pub fn mutate(rng: &mut impl Rng, bytes: &mut Vec<u8>) {
    let ops = rng.random_range(1..5usize);
    for _ in 0..ops {
        apply_one(rng, bytes);
    }
    bytes.truncate(MAX_LEN);
}

fn apply_one(rng: &mut impl Rng, bytes: &mut Vec<u8>) {
    match rng.random_range(0..6u32) {
        // Flip one bit.
        0 if !bytes.is_empty() => {
            let i = rng.random_range(0..bytes.len());
            bytes[i] ^= 1 << rng.random_range(0..8u32);
        }
        // Overwrite one byte with an interesting value.
        1 if !bytes.is_empty() => {
            const INTERESTING: &[u8] = &[
                0, 0xff, 0x80, b'"', b'\\', b'{', b'}', b'[', b']', b'%', b'?', b':', b'@', b'#',
                b'\r', b'\n', b' ', b'.',
            ];
            let i = rng.random_range(0..bytes.len());
            bytes[i] = INTERESTING[rng.random_range(0..INTERESTING.len())];
        }
        // Delete a short range.
        2 if !bytes.is_empty() => {
            let start = rng.random_range(0..bytes.len());
            let len = rng.random_range(1..9usize).min(bytes.len() - start);
            bytes.drain(start..start + len);
        }
        // Duplicate a short range (repetition stresses depth/size limits).
        3 if !bytes.is_empty() => {
            let start = rng.random_range(0..bytes.len());
            let len = rng.random_range(1..17usize).min(bytes.len() - start);
            let chunk: Vec<u8> = bytes[start..start + len].to_vec();
            let at = rng.random_range(0..=bytes.len());
            bytes.splice(at..at, chunk);
        }
        // Splice in a dictionary token.
        4 => {
            let tok = DICTIONARY[rng.random_range(0..DICTIONARY.len())].as_bytes();
            let at = rng.random_range(0..=bytes.len());
            bytes.splice(at..at, tok.iter().copied());
        }
        // Truncate (also the arm empty inputs always fall into).
        _ => {
            let keep = if bytes.is_empty() {
                0
            } else {
                rng.random_range(0..bytes.len())
            };
            bytes.truncate(keep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::rng::StdRng;

    #[test]
    fn mutation_is_deterministic_for_a_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(5);
            let mut b = b"SELECT ?x WHERE { ?x :p ?y . }".to_vec();
            for _ in 0..50 {
                mutate(&mut rng, &mut b);
            }
            b
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mutation_respects_the_length_cap() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut b = vec![b'a'; 64];
        for _ in 0..2_000 {
            mutate(&mut rng, &mut b);
            assert!(b.len() <= MAX_LEN);
        }
    }

    #[test]
    fn empty_inputs_survive_every_operator() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = Vec::new();
        for _ in 0..200 {
            mutate(&mut rng, &mut b);
            b.clear();
        }
    }
}
