//! Deterministic fuzzing and differential oracles for every input
//! surface of the workspace.
//!
//! QuestPro's front door is six hand-rolled input surfaces —
//! `questpro-wire` JSON, the SPARQL dialect in `questpro-query`, the
//! triple text format in `questpro-graph`, HTTP/1.1 head parsing in
//! `questpro-server`, the binary snapshot decoder in `questpro-store`,
//! and the live-update batch layer (wire parse → incremental
//! store/ontology apply).
//! This crate drives each of them with seeded, structure-aware
//! generators plus byte-level mutators (see [`gen`] and [`mutate`]),
//! and checks three oracle classes on every iteration:
//!
//! 1. **no-panic** — every input returns `Ok` or a structured error;
//!    a panic caught by `catch_unwind` is a reported failure, with the
//!    input shrunk by [`minimize::minimize`] before it is reported;
//! 2. **round-trip** — `parse ∘ format = id` for JSON values, union
//!    queries (up to isomorphism), and ontologies (up to node-id
//!    renumbering, compared as sorted serialized lines);
//! 3. **differential** — `POST /eval` responses from the in-process
//!    router byte-agree with the library one-shot path, responses to
//!    arbitrarily mutated bodies are still well-formed JSON, and every
//!    incremental triple update produces a store byte-identical to a
//!    from-scratch rebuild of the updated world.
//!
//! Everything is seeded by the workspace's own xoshiro RNG, so a run is
//! reproduced exactly by `questpro fuzz --surface S --seed N --iters I`
//! on any platform — that is what makes the CI smoke job meaningful.

pub mod gen;
pub mod minimize;
pub mod mutate;
pub mod surfaces;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Instant;

use questpro_graph::rng::SplitMix64;
use questpro_graph::rng::{Rng as _, StdRng};

/// One fuzzed input surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Surface {
    /// `questpro-wire` JSON parsing/serialization.
    Wire,
    /// The SPARQL dialect in `questpro-query`.
    Sparql,
    /// The triple text format in `questpro-graph`.
    Triples,
    /// HTTP/1.1 head parsing plus the `/eval` differential oracle.
    Http,
    /// The binary snapshot decoder in `questpro-store`.
    Store,
    /// Batched triple updates: wire parsing plus the incremental-vs-
    /// scratch differential across store and ontology.
    Update,
}

impl Surface {
    /// All surfaces, in the order `--all` runs them.
    pub const ALL: [Surface; 6] = [
        Surface::Wire,
        Surface::Sparql,
        Surface::Triples,
        Surface::Http,
        Surface::Store,
        Surface::Update,
    ];

    /// The surface's CLI / corpus-directory name.
    pub fn name(self) -> &'static str {
        match self {
            Surface::Wire => "wire",
            Surface::Sparql => "sparql",
            Surface::Triples => "triples",
            Surface::Http => "http",
            Surface::Store => "store",
            Surface::Update => "update",
        }
    }

    /// Parses a CLI surface name.
    pub fn from_name(s: &str) -> Option<Surface> {
        Surface::ALL.into_iter().find(|x| x.name() == s)
    }
}

impl std::fmt::Display for Surface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Knobs of a fuzzing run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; every iteration's stream is derived from it.
    pub seed: u64,
    /// Iterations per surface.
    pub iters: u64,
    /// Failures kept (with reproducers) per surface; the counters keep
    /// counting past this cap.
    pub max_failures: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            iters: 10_000,
            max_failures: 8,
        }
    }
}

/// Which oracle a failure violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A parser panicked instead of returning an error.
    Panic,
    /// `parse ∘ format` did not reproduce the original.
    RoundTrip,
    /// The server response disagreed with the library path (or was not
    /// well-formed JSON).
    Differential,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureKind::Panic => "panic",
            FailureKind::RoundTrip => "round-trip",
            FailureKind::Differential => "differential",
        })
    }
}

/// One oracle violation, with a (minimized, where possible) reproducer.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Violated oracle.
    pub kind: FailureKind,
    /// The offending input bytes (UTF-8 where the surface is textual).
    pub input: Vec<u8>,
    /// What went wrong, human-readable.
    pub detail: String,
    /// The per-iteration seed that produced the failure.
    pub seed: u64,
}

impl Failure {
    fn new(kind: FailureKind, input: impl Into<Vec<u8>>, detail: impl Into<String>) -> Failure {
        Failure {
            kind,
            input: input.into(),
            detail: detail.into(),
            seed: 0,
        }
    }
}

/// The outcome of fuzzing one surface.
#[derive(Debug)]
pub struct SurfaceReport {
    /// Which surface ran.
    pub surface: Surface,
    /// Iterations executed.
    pub iters: u64,
    /// Caught panics.
    pub panics: u64,
    /// Non-panic oracle violations.
    pub violations: u64,
    /// Kept failures (at most `max_failures`), reproducers attached.
    pub failures: Vec<Failure>,
    /// Wall-clock milliseconds.
    pub elapsed_ms: u128,
}

impl SurfaceReport {
    /// True when the surface survived with zero failures of any kind.
    pub fn clean(&self) -> bool {
        self.panics == 0 && self.violations == 0
    }
}

impl std::fmt::Display for SurfaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "surface {}: {} iters, {} panics, {} violations ({} ms)",
            self.surface, self.iters, self.panics, self.violations, self.elapsed_ms
        )?;
        for fail in &self.failures {
            writeln!(
                f,
                "  [{}] seed {} — {}\n    input: {:?}",
                fail.kind,
                fail.seed,
                fail.detail,
                String::from_utf8_lossy(&fail.input)
            )?;
        }
        Ok(())
    }
}

/// Serializes panic-hook swaps across concurrently fuzzing threads
/// (test binaries run tests in parallel; the hook is process-global).
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Silences the default panic hook for the duration of `f`.
///
/// Expected panics are part of the no-panic oracle — without this, a
/// fuzz run that *finds* a panic would spray backtraces over the
/// report. The previous hook is restored even if `f` itself panics.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let _guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            let _ = std::panic::take_hook();
        }
    }
    // Taking the hook inside Restore::drop reinstates the *default*
    // hook, which is what the process started with: the workspace never
    // installs a custom one.
    let restore = Restore;
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    drop(restore);
    out
}

/// Runs `f`, turning an unwind into a `Err(message)`.
pub(crate) fn catching<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|e| {
        if let Some(s) = e.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = e.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Fuzzes one surface for `cfg.iters` iterations.
///
/// Every iteration runs on its own derived seed (a SplitMix64 stream of
/// the master seed xor a per-surface salt), so any reported failure can
/// be replayed in isolation with `--iters 1 --seed <iteration seed>`
/// semantics — `Failure::seed` records it.
pub fn run_surface(surface: Surface, cfg: &FuzzConfig) -> SurfaceReport {
    with_quiet_panics(|| {
        let start = Instant::now();
        let salt: u64 = match surface {
            Surface::Wire => 0x57495245,
            Surface::Sparql => 0x53504152,
            Surface::Triples => 0x54525049,
            Surface::Http => 0x48545450,
            Surface::Store => 0x53544F52,
            Surface::Update => 0x55504454,
        };
        let mut seeds = SplitMix64::seed_from_u64(cfg.seed ^ salt);
        let mut ctx = surfaces::Ctx::new(surface);
        let mut report = SurfaceReport {
            surface,
            iters: cfg.iters,
            panics: 0,
            violations: 0,
            failures: Vec::new(),
            elapsed_ms: 0,
        };
        for _ in 0..cfg.iters {
            let iter_seed = seeds.next_u64();
            let mut rng = StdRng::seed_from_u64(iter_seed);
            let found = match catching(|| ctx.iterate(&mut rng)) {
                Ok(found) => found,
                Err(msg) => vec![Failure::new(
                    FailureKind::Panic,
                    Vec::new(),
                    format!("harness-level panic: {msg}"),
                )],
            };
            for mut fail in found {
                match fail.kind {
                    FailureKind::Panic => report.panics += 1,
                    _ => report.violations += 1,
                }
                if report.failures.len() < cfg.max_failures {
                    fail.seed = iter_seed;
                    report.failures.push(fail);
                }
            }
        }
        report.elapsed_ms = start.elapsed().as_millis();
        report
    })
}

/// Fuzzes all six surfaces with the same configuration.
pub fn run_all(cfg: &FuzzConfig) -> Vec<SurfaceReport> {
    Surface::ALL
        .into_iter()
        .map(|s| run_surface(s, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface_names_round_trip() {
        for s in Surface::ALL {
            assert_eq!(Surface::from_name(s.name()), Some(s));
        }
        assert_eq!(Surface::from_name("nope"), None);
    }

    #[test]
    fn catching_reports_panic_messages() {
        assert_eq!(catching(|| 7).unwrap(), 7);
        let msg = with_quiet_panics(|| catching(|| panic!("boom {}", 1)).unwrap_err());
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn short_runs_are_clean_on_every_surface() {
        let cfg = FuzzConfig {
            seed: 1,
            iters: 250,
            max_failures: 8,
        };
        for report in run_all(&cfg) {
            assert!(report.clean(), "{report}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = FuzzConfig {
            seed: 42,
            iters: 50,
            max_failures: 8,
        };
        let a = run_surface(Surface::Wire, &cfg);
        let b = run_surface(Surface::Wire, &cfg);
        assert_eq!(a.panics, b.panics);
        assert_eq!(a.violations, b.violations);
    }
}
