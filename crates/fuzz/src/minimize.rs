//! Greedy reproducer minimization (ddmin-lite).
//!
//! When an oracle fails on a mutated input, the raw reproducer carries
//! hundreds of irrelevant bytes. [`minimize`] shrinks it by repeatedly
//! deleting chunks of halving size while the caller-supplied predicate
//! still reports the failure — the classic delta-debugging reduction,
//! without the complement bookkeeping the full algorithm needs (inputs
//! here are tiny, so greedy chunk removal converges fast).

/// Shrinks `input` while `still_fails` holds.
///
/// The predicate must be deterministic (it is handed candidate inputs,
/// not the original). The budget bounds predicate invocations so a
/// pathological predicate can never wedge a fuzz run; the best input
/// found within budget is returned.
pub fn minimize(input: &[u8], mut still_fails: impl FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut best = input.to_vec();
    let mut budget = 2_000usize;
    let mut chunk = (best.len() / 2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut progress = false;
        let mut start = 0;
        while start < best.len() && budget > 0 {
            let end = (start + chunk).min(best.len());
            let mut candidate = Vec::with_capacity(best.len() - (end - start));
            candidate.extend_from_slice(&best[..start]);
            candidate.extend_from_slice(&best[end..]);
            budget -= 1;
            if !candidate.is_empty() && still_fails(&candidate) {
                best = candidate;
                progress = true;
                // Retry the same offset: the next chunk slid into it.
            } else {
                start = end;
            }
        }
        if !progress {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_to_the_failing_core() {
        // Failure: input contains the byte pair "%z".
        let input = b"prefix junk %z suffix junk and more junk";
        let min = minimize(input, |b| b.windows(2).any(|w| w == b"%z"));
        assert_eq!(min, b"%z");
    }

    #[test]
    fn keeps_input_when_nothing_can_be_removed() {
        let input = b"abc";
        let min = minimize(input, |b| b == b"abc");
        assert_eq!(min, b"abc");
    }

    #[test]
    fn predicate_budget_is_bounded() {
        let mut calls = 0usize;
        let input = vec![b'x'; 1024];
        let _ = minimize(&input, |_| {
            calls += 1;
            false
        });
        assert!(calls <= 2_000);
    }
}
