//! Structure-aware input generators.
//!
//! Each generator produces *valid* instances of its surface's model —
//! a JSON value, a union query, an ontology, an HTTP request — so the
//! round-trip and differential oracles have something meaningful to
//! check; the byte-level [`crate::mutate`] pass then degrades those
//! valid inputs into hostile ones for the no-panic oracle.
//!
//! Labels are deliberately nasty: the pools below mix plain `snake_case`
//! identifiers with every metacharacter class that has ever broken a
//! hand-rolled parser — quotes, backslashes, newlines, the formats' own
//! delimiters, `%`, directives, and non-ASCII text.

use questpro_graph::rng::Rng;
use questpro_graph::{Ontology, OntologyBuilder};
use questpro_query::{QueryBuilder, SimpleQuery, UnionQuery};
use questpro_wire::Json;

/// Metacharacter-rich labels every textual surface must survive.
pub const NASTY_LABELS: &[&str] = &[
    "plain",
    "wb",
    "author_1",
    "paper 1",
    "line\nbreak",
    "tab\there",
    "carriage\rreturn",
    "@type",
    "#comment",
    "percent%40",
    "%",
    "quote\"mark",
    "back\\slash",
    "dot.label",
    "brace}close",
    "brace{open",
    "question?mark",
    "colon:sep",
    "bang!=neq",
    "emoji\u{1F600}",
    "na\u{EF}ve",
    "UNION",
    "SELECT",
];

/// A random label: usually from [`NASTY_LABELS`], sometimes a fresh
/// random string over an alphabet that includes the metacharacters.
/// Always non-empty (empty labels are not representable in either
/// textual format, by design).
pub fn label(rng: &mut impl Rng) -> String {
    if rng.random_bool(0.7) {
        NASTY_LABELS[rng.random_range(0..NASTY_LABELS.len())].to_string()
    } else {
        const ALPHABET: &[char] = &[
            'a',
            'b',
            'z',
            '0',
            '_',
            '-',
            ' ',
            '"',
            '\\',
            '\n',
            '%',
            '#',
            '@',
            '.',
            '}',
            '?',
            ':',
            '\u{1F600}',
        ];
        let len = rng.random_range(1..9usize);
        (0..len)
            .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
            .collect()
    }
}

// ---------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------

/// A random JSON value, depth-bounded. All numbers are finite (the
/// serializer maps non-finite to `null` by design, which would be a
/// false round-trip failure).
pub fn json_value(rng: &mut impl Rng, depth: usize) -> Json {
    let scalar_only = depth >= 4;
    match rng.random_range(0..if scalar_only { 4u32 } else { 6u32 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.random_bool(0.5)),
        2 => Json::Num(finite_f64(rng)),
        3 => Json::Str(label(rng)),
        4 => {
            let n = rng.random_range(0..4usize);
            Json::Arr((0..n).map(|_| json_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.random_range(0..4usize);
            let mut pairs: Vec<(String, Json)> = Vec::with_capacity(n);
            for _ in 0..n {
                let key = label(rng);
                // Duplicate keys are legal JSON but not value-preserving
                // under any reading; keep generated objects unambiguous.
                if pairs.iter().all(|(k, _)| *k != key) {
                    pairs.push((key, json_value(rng, depth + 1)));
                }
            }
            Json::Obj(pairs)
        }
    }
}

/// A finite `f64` spanning integers, small fractions, and raw-bit
/// patterns (subnormals included).
fn finite_f64(rng: &mut impl Rng) -> f64 {
    match rng.random_range(0..4u32) {
        0 => rng.random_range(0..2_000u64) as f64 - 1_000.0,
        1 => (rng.random_range(0..2_000u64) as f64 - 1_000.0) / 64.0,
        2 => 1.0 / (rng.random_range(1..1_000u64) as f64),
        _ => {
            let v = f64::from_bits(rng.next_u64());
            if v.is_finite() {
                v
            } else {
                0.5
            }
        }
    }
}

// ---------------------------------------------------------------------
// Union queries
// ---------------------------------------------------------------------

/// Constant / predicate pools a query generator draws from; `None`
/// pools fall back to [`label`]'s metacharacter-rich stream.
#[derive(Debug, Clone, Copy)]
struct Vocab {
    consts: Option<&'static [&'static str]>,
    preds: Option<&'static [&'static str]>,
}

impl Vocab {
    fn constant(self, rng: &mut impl Rng) -> String {
        match self.consts {
            Some(pool) => pool[rng.random_range(0..pool.len())].to_string(),
            None => label(rng),
        }
    }

    fn pred(self, rng: &mut impl Rng) -> String {
        match self.preds {
            Some(pool) => pool[rng.random_range(0..pool.len())].to_string(),
            None => label(rng),
        }
    }
}

/// A random union query over metacharacter-rich labels.
pub fn union_query(rng: &mut impl Rng) -> UnionQuery {
    let vocab = Vocab {
        consts: None,
        preds: None,
    };
    let branches = rng.random_range(1..3usize);
    let qs: Vec<SimpleQuery> = (0..branches).map(|_| branch(rng, vocab)).collect();
    UnionQuery::new(qs).expect("at least one branch was generated")
}

/// A random union query over the differential-oracle vocabulary, so
/// evaluation against [`tiny_ontology_text`] yields meaningful results.
pub fn vocab_query(rng: &mut impl Rng) -> UnionQuery {
    let vocab = Vocab {
        consts: Some(&["alice", "bob", "carol", "paper1", "paper2"]),
        preds: Some(&["wb", "cite"]),
    };
    let branches = rng.random_range(1..3usize);
    let qs: Vec<SimpleQuery> = (0..branches).map(|_| branch(rng, vocab)).collect();
    UnionQuery::new(qs).expect("at least one branch was generated")
}

/// One valid `SimpleQuery`: the projected variable always touches a
/// required edge (or is the lone isolated node — the only isolated-node
/// shape the concrete syntax can express), every other node is an edge
/// endpoint, and disequalities link distinct variables.
fn branch(rng: &mut impl Rng, vocab: Vocab) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let proj = b.var("x0");
    if rng.random_bool(0.05) {
        b.project(proj);
        return b.build().expect("isolated projected variable is valid");
    }
    let mut vars = vec![proj];
    let mut nodes = vec![proj];
    let edge_count = rng.random_range(1..6usize);
    for i in 0..edge_count {
        // First edge anchors the projection with a required edge.
        let src = if i == 0 {
            proj
        } else {
            pick_or_new(rng, &mut b, &mut vars, &mut nodes, vocab)
        };
        let dst = pick_or_new(rng, &mut b, &mut vars, &mut nodes, vocab);
        let pred = vocab.pred(rng);
        if i > 0 && rng.random_bool(0.2) {
            b.optional_edge(src, &pred, dst);
        } else {
            b.edge(src, &pred, dst);
        }
    }
    if vars.len() >= 2 && rng.random_bool(0.3) {
        let a = vars[rng.random_range(0..vars.len())];
        let c = vars[rng.random_range(0..vars.len())];
        if a != c {
            b.diseq(a, c);
        }
    }
    b.project(proj);
    b.build()
        .expect("generated branch satisfies the invariants")
}

/// An existing node (60%), or a fresh variable / constant.
fn pick_or_new(
    rng: &mut impl Rng,
    b: &mut QueryBuilder,
    vars: &mut Vec<questpro_query::QueryNodeId>,
    nodes: &mut Vec<questpro_query::QueryNodeId>,
    vocab: Vocab,
) -> questpro_query::QueryNodeId {
    if rng.random_bool(0.6) {
        return nodes[rng.random_range(0..nodes.len())];
    }
    let id = if rng.random_bool(0.6) {
        let name = format!("x{}", nodes.len());
        let id = b.var(&name);
        if !vars.contains(&id) {
            vars.push(id);
        }
        id
    } else {
        b.constant(&vocab.constant(rng))
    };
    if !nodes.contains(&id) {
        nodes.push(id);
    }
    id
}

// ---------------------------------------------------------------------
// Ontologies
// ---------------------------------------------------------------------

/// A random small ontology with metacharacter-rich labels; duplicate
/// triples and conflicting types are avoided so construction cannot
/// fail.
pub fn ontology(rng: &mut impl Rng) -> Ontology {
    let mut b = OntologyBuilder::new();
    let edge_count = rng.random_range(1..9usize);
    let mut seen = Vec::new();
    let mut values = Vec::new();
    for _ in 0..edge_count {
        let (s, p, d) = (label(rng), label(rng), label(rng));
        if seen.contains(&(s.clone(), p.clone(), d.clone())) {
            continue;
        }
        seen.push((s.clone(), p.clone(), d.clone()));
        b.edge(&s, &p, &d).expect("triple was deduplicated");
        values.push(s);
        values.push(d);
    }
    let mut typed = Vec::new();
    for _ in 0..rng.random_range(0..3usize) {
        let v = values[rng.random_range(0..values.len())].clone();
        if typed.contains(&v) {
            continue;
        }
        typed.push(v.clone());
        b.typed_node(&v, &label(rng))
            .expect("value typed only once");
    }
    b.build()
}

/// A random dictionary-encoded store with metacharacter-rich labels:
/// triples, isolated nodes, and type declarations. Each label is typed
/// at most once so construction cannot fail.
pub fn store(rng: &mut impl Rng) -> questpro_store::TripleStore {
    let mut b = questpro_store::StoreBuilder::new();
    let mut values = Vec::new();
    for _ in 0..rng.random_range(0..9usize) {
        let (s, p, o) = (label(rng), label(rng), label(rng));
        b.add_triple(&s, &p, &o);
        values.push(s);
        values.push(o);
    }
    for _ in 0..rng.random_range(0..3usize) {
        let v = label(rng);
        b.add_node(&v);
        values.push(v);
    }
    let mut typed = Vec::new();
    for _ in 0..rng.random_range(0..3usize) {
        if values.is_empty() {
            break;
        }
        let v = values[rng.random_range(0..values.len())].clone();
        if typed.contains(&v) {
            continue;
        }
        b.add_type(&v, &label(rng)).expect("value typed only once");
        typed.push(v);
    }
    b.build().expect("generated stores satisfy the invariants")
}

/// A random triple-update batch against `store`.
///
/// Deletes are mostly drawn from the store's own rows (so chains of
/// valid updates make progress), occasionally a fabricated missing
/// triple; inserts are mostly fresh rows, occasionally a deliberate
/// collision with an existing one. Invalid batches are the point: the
/// update differential oracle requires the incremental and the
/// from-scratch paths to *agree* on acceptance, and on the result when
/// accepted. Never empty (the wire layer rejects empty batches by
/// design, which would make the round-trip stage vacuous).
pub fn update_batch(
    rng: &mut impl Rng,
    store: &questpro_store::TripleStore,
) -> questpro_graph::TripleDelta {
    let mut delta = questpro_graph::TripleDelta {
        inserts: Vec::new(),
        deletes: Vec::new(),
    };
    let row_labels = |store: &questpro_store::TripleStore, row: usize| {
        let t = store.triples()[row];
        [
            store.nodes().label(t[0]).to_string(),
            store.preds().label(t[1]).to_string(),
            store.nodes().label(t[2]).to_string(),
        ]
    };
    let rows = store.triple_count();
    for _ in 0..rng.random_range(0..3usize) {
        if rows > 0 && !rng.random_bool(0.15) {
            delta
                .deletes
                .push(row_labels(store, rng.random_range(0..rows)));
        } else {
            delta.deletes.push([label(rng), label(rng), label(rng)]);
        }
    }
    for _ in 0..rng.random_range(0..4usize) {
        if rows > 0 && rng.random_bool(0.15) {
            delta
                .inserts
                .push(row_labels(store, rng.random_range(0..rows)));
        } else {
            delta.inserts.push([label(rng), label(rng), label(rng)]);
        }
    }
    if delta.inserts.is_empty() && delta.deletes.is_empty() {
        delta.inserts.push([label(rng), label(rng), label(rng)]);
    }
    delta
}

/// The fixed six-edge world the `/eval` differential oracle queries.
pub fn tiny_ontology_text() -> &'static str {
    "alice wb paper1\n\
     bob wb paper1\n\
     bob wb paper2\n\
     carol cite paper2\n\
     paper1 cite paper2\n\
     carol wb paper2\n\
     @type alice Author\n\
     @type paper1 Paper\n"
}

// ---------------------------------------------------------------------
// HTTP requests
// ---------------------------------------------------------------------

/// The parsed shape a well-formed generated request must produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectedRequest {
    /// Uppercased method.
    pub method: String,
    /// Path portion of the target.
    pub path: String,
    /// Exact body bytes.
    pub body: Vec<u8>,
}

/// A random HTTP/1.1 request.
///
/// Returns the wire bytes plus, for well-formed requests, the shape
/// `read_request` must parse them into (`None` means the request is
/// hostile on purpose and only the no-panic oracle applies).
pub fn http_request(rng: &mut impl Rng) -> (Vec<u8>, Option<ExpectedRequest>) {
    if rng.random_bool(0.5) {
        let method = ["GET", "POST", "DELETE", "PUT"][rng.random_range(0..4usize)];
        let path = [
            "/healthz",
            "/metrics",
            "/eval",
            "/ontologies",
            "/sessions/1",
            "/debug/traces",
        ][rng.random_range(0..6usize)];
        let body: Vec<u8> = (0..rng.random_range(0..40usize))
            .map(|_| rng.random_range(0..256u64) as u8)
            .collect();
        let mut text = format!("{method} {path} HTTP/1.1\r\nHost: fuzz\r\n");
        if !body.is_empty() || rng.random_bool(0.5) {
            text.push_str(&format!("Content-Length: {}\r\n", body.len()));
            if rng.random_bool(0.2) {
                // An identical repeat is legal framing (RFC 9110 §8.6).
                text.push_str(&format!("Content-Length: {}\r\n", body.len()));
            }
        }
        text.push_str("\r\n");
        let mut bytes = text.into_bytes();
        bytes.extend_from_slice(&body);
        let expected = ExpectedRequest {
            method: method.to_string(),
            path: path.to_string(),
            body,
        };
        (bytes, Some(expected))
    } else {
        (hostile_request(rng), None)
    }
}

/// A request drawn from the smuggling/malformed corpus of shapes: bad
/// methods and versions, conflicting or non-digit or overflowing
/// `Content-Length`, headers without colons, truncated heads.
fn hostile_request(rng: &mut impl Rng) -> Vec<u8> {
    let method = ["GET", "BOGUS", "get", "", "P\u{d6}ST"][rng.random_range(0..5usize)];
    let target =
        ["/eval", "/sessions/+1", "/%2e%2e", "/a?limit=+5", "*"][rng.random_range(0..5usize)];
    let version = ["HTTP/1.1", "HTTP/1.0", "HTTP/2", "ICY", ""][rng.random_range(0..5usize)];
    let mut text = format!("{method} {target} {version}\r\n");
    for _ in 0..rng.random_range(0..4usize) {
        let header = [
            "Content-Length: 4",
            "Content-Length: 5",
            "Content-Length: +4",
            "Content-Length: -4",
            "Content-Length: 4 4",
            "Content-Length: 0x10",
            "Content-Length: 18446744073709551616",
            "Content-Length:",
            "Content-Length: \u{664}",
            "Transfer-Encoding: chunked",
            "Host fuzz",
            ": empty-name",
            "X-Junk: \"quoted\\value\"",
        ][rng.random_range(0..13usize)];
        text.push_str(header);
        text.push_str("\r\n");
    }
    if rng.random_bool(0.8) {
        text.push_str("\r\n");
    }
    let mut bytes = text.into_bytes();
    for _ in 0..rng.random_range(0..10usize) {
        bytes.push(rng.random_range(0..256u64) as u8);
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::rng::StdRng;

    #[test]
    fn generated_queries_are_valid_and_formattable() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let q = union_query(&mut rng);
            assert!(!questpro_query::sparql::format_union(&q).is_empty());
        }
    }

    #[test]
    fn generated_ontologies_serialize() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let o = ontology(&mut rng);
            assert!(o.edge_count() >= 1);
        }
    }

    #[test]
    fn generated_stores_encode_and_decode() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_empty = false;
        let mut saw_typed = false;
        for _ in 0..200 {
            let s = store(&mut rng);
            saw_empty |= s.triple_count() == 0;
            saw_typed |= !s.node_types().is_empty();
            let bytes = questpro_store::encode(&s);
            assert_eq!(questpro_store::decode(&bytes).unwrap(), s);
        }
        assert!(saw_empty && saw_typed);
    }

    #[test]
    fn tiny_ontology_parses() {
        let o = questpro_graph::triples::parse(tiny_ontology_text()).unwrap();
        assert_eq!(o.edge_count(), 6);
    }

    #[test]
    fn well_formed_requests_label_their_expectation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut saw_valid = false;
        let mut saw_hostile = false;
        for _ in 0..50 {
            let (bytes, expected) = http_request(&mut rng);
            assert!(!bytes.is_empty());
            saw_valid |= expected.is_some();
            saw_hostile |= expected.is_none();
        }
        assert!(saw_valid && saw_hostile);
    }
}
