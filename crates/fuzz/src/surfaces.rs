//! Per-surface fuzzing drivers: one `iterate` = generate → oracle →
//! mutate → oracle.
//!
//! Every iteration of every surface runs two stages:
//!
//! 1. **structure stage** — a generator-built valid instance is
//!    formatted and re-parsed; the round-trip oracle compares the
//!    result with the original (value equality for JSON, isomorphism
//!    for queries, sorted serialized lines for ontologies, field
//!    equality for HTTP requests, store equality plus byte-identical
//!    re-encoding for snapshots);
//! 2. **mutation stage** — the formatted text is byte-mutated and
//!    re-parsed; the no-panic oracle applies, and *accepted* mutants
//!    must themselves round-trip (idempotence: whatever the parser
//!    builds, the formatter must be able to reproduce).
//!
//! The HTTP surface additionally runs the differential oracle: a
//! `POST /eval` through the in-process router must byte-agree with the
//! library one-shot path, and mutated bodies must always come back as
//! well-formed JSON envelopes. It also pins the *staged* parser the
//! event loop uses (`parse_request`): on a well-formed request it must
//! agree with the blocking reader, and it must be chunking-invariant —
//! every prefix shorter than what it consumed parses as "incomplete",
//! and every prefix at or past that point yields the identical request
//! (the event loop may hand it any byte boundary the kernel produces).

use std::io::Cursor;
use std::sync::Arc;
use std::time::Duration;

use questpro_engine::evaluate_union_with;
use questpro_graph::rng::{Rng, StdRng};
use questpro_graph::{triples, Ontology};
use questpro_query::iso::union_isomorphic;
use questpro_query::sparql;
use questpro_server::http::{parse_request, read_request};
use questpro_server::{route, AppState, Request};
use questpro_wire::Json;

use crate::{catching, gen, minimize, mutate, Failure, FailureKind, Surface};

/// Body cap handed to `read_request` during head fuzzing — small enough
/// that a hostile `Content-Length` can never make the fuzzer allocate
/// seriously, large enough that no generated request trips it.
const MAX_FUZZ_BODY: usize = 1 << 16;

/// Per-surface state that persists across iterations (only the HTTP
/// surface needs any: the in-process server `AppState`).
pub struct Ctx {
    surface: Surface,
    http: Option<HttpState>,
}

struct HttpState {
    state: AppState,
    ont: Arc<Ontology>,
}

impl Ctx {
    /// Creates the state for one surface's run.
    pub fn new(surface: Surface) -> Ctx {
        let http = (surface == Surface::Http).then(|| {
            let state = AppState::new(1, 1 << 20, Duration::from_secs(60), 4);
            let ont = state
                .registry
                .insert("fuzz", gen::tiny_ontology_text())
                .expect("the fuzz world registers exactly once");
            HttpState { state, ont }
        });
        Ctx { surface, http }
    }

    /// Runs one iteration, returning any oracle violations found.
    pub fn iterate(&mut self, rng: &mut StdRng) -> Vec<Failure> {
        match self.surface {
            Surface::Wire => wire_iter(rng),
            Surface::Sparql => sparql_iter(rng),
            Surface::Triples => triples_iter(rng),
            Surface::Http => {
                let http = self.http.as_ref().expect("constructed in Ctx::new");
                http_iter(rng, http)
            }
            Surface::Store => store_iter(rng),
            Surface::Update => update_iter(rng),
        }
    }
}

/// Shrinks a panicking input with [`minimize::minimize`] and wraps it.
fn panic_failure(bytes: &[u8], msg: String, mut panics: impl FnMut(&[u8]) -> bool) -> Failure {
    let min = minimize::minimize(bytes, |b| catching(|| panics(b)).unwrap_or(true));
    Failure::new(FailureKind::Panic, min, format!("parser panicked: {msg}"))
}

// ---------------------------------------------------------------------
// wire — JSON
// ---------------------------------------------------------------------

fn wire_panics(b: &[u8]) -> bool {
    let text = String::from_utf8_lossy(b);
    catching(|| {
        let _ = questpro_wire::parse(&text);
    })
    .is_err()
}

fn wire_iter(rng: &mut StdRng) -> Vec<Failure> {
    let mut out = Vec::new();
    // Structure stage: value → text → value must be the identity.
    let v = gen::json_value(rng, 0);
    let text = v.to_text();
    match catching(|| questpro_wire::parse(&text)) {
        Err(msg) => out.push(panic_failure(text.as_bytes(), msg, wire_panics)),
        Ok(Err(e)) => out.push(Failure::new(
            FailureKind::RoundTrip,
            text.as_bytes(),
            format!("serializer output rejected by the parser: {e}"),
        )),
        Ok(Ok(back)) => {
            if back != v {
                out.push(Failure::new(
                    FailureKind::RoundTrip,
                    text.as_bytes(),
                    format!("parse(serialize(v)) != v (got {})", back.to_text()),
                ));
            }
        }
    }
    // Mutation stage: no-panic, and accepted mutants must round-trip.
    let mut bytes = text.into_bytes();
    mutate::mutate(rng, &mut bytes);
    let mutated = String::from_utf8_lossy(&bytes).into_owned();
    match catching(|| questpro_wire::parse(&mutated)) {
        Err(msg) => out.push(panic_failure(&bytes, msg, wire_panics)),
        Ok(Ok(v2)) => {
            let t2 = v2.to_text();
            match questpro_wire::parse(&t2) {
                Ok(v3) if v3 == v2 => {}
                Ok(_) => out.push(Failure::new(
                    FailureKind::RoundTrip,
                    t2.as_bytes(),
                    "reserializing an accepted mutant changed its value",
                )),
                Err(e) => out.push(Failure::new(
                    FailureKind::RoundTrip,
                    t2.as_bytes(),
                    format!("reserialized mutant no longer parses: {e}"),
                )),
            }
        }
        Ok(Err(_)) => {}
    }
    out
}

// ---------------------------------------------------------------------
// sparql — query text
// ---------------------------------------------------------------------

fn sparql_panics(b: &[u8]) -> bool {
    let text = String::from_utf8_lossy(b);
    catching(|| {
        let _ = sparql::parse_union(&text);
    })
    .is_err()
}

fn sparql_iter(rng: &mut StdRng) -> Vec<Failure> {
    let mut out = Vec::new();
    let q = gen::union_query(rng);
    let text = sparql::format_union(&q);
    match catching(|| sparql::parse_union(&text)) {
        Err(msg) => out.push(panic_failure(text.as_bytes(), msg, sparql_panics)),
        Ok(Err(e)) => out.push(Failure::new(
            FailureKind::RoundTrip,
            text.as_bytes(),
            format!("formatted query rejected by the parser: {e}"),
        )),
        Ok(Ok(back)) => {
            if !union_isomorphic(&q, &back) {
                out.push(Failure::new(
                    FailureKind::RoundTrip,
                    text.as_bytes(),
                    "parse(format(q)) is not isomorphic to q",
                ));
            }
        }
    }
    let mut bytes = text.into_bytes();
    mutate::mutate(rng, &mut bytes);
    let mutated = String::from_utf8_lossy(&bytes).into_owned();
    match catching(|| sparql::parse_union(&mutated)) {
        Err(msg) => out.push(panic_failure(&bytes, msg, sparql_panics)),
        Ok(Ok(q2)) => {
            let t2 = sparql::format_union(&q2);
            match sparql::parse_union(&t2) {
                Ok(q3) if union_isomorphic(&q2, &q3) => {}
                Ok(_) => out.push(Failure::new(
                    FailureKind::RoundTrip,
                    t2.as_bytes(),
                    "reformatting an accepted mutant changed the query",
                )),
                Err(e) => out.push(Failure::new(
                    FailureKind::RoundTrip,
                    t2.as_bytes(),
                    format!("reformatted mutant no longer parses: {e}"),
                )),
            }
        }
        Ok(Err(_)) => {}
    }
    out
}

// ---------------------------------------------------------------------
// triples — ontology text
// ---------------------------------------------------------------------

fn triples_panics(b: &[u8]) -> bool {
    let text = String::from_utf8_lossy(b);
    catching(|| {
        let _ = triples::parse(&text);
    })
    .is_err()
}

/// Ontology equality up to node-id renumbering: the serialized lines as
/// a sorted multiset. (`parse` may renumber nodes that only appear in
/// `@type` declarations, so byte equality would be too strict.)
fn sorted_lines(text: &str) -> Vec<&str> {
    let mut lines: Vec<&str> = text.lines().collect();
    lines.sort_unstable();
    lines
}

fn triples_iter(rng: &mut StdRng) -> Vec<Failure> {
    let mut out = Vec::new();
    let o = gen::ontology(rng);
    let text = triples::serialize(&o);
    match catching(|| triples::parse(&text)) {
        Err(msg) => out.push(panic_failure(text.as_bytes(), msg, triples_panics)),
        Ok(Err(e)) => out.push(Failure::new(
            FailureKind::RoundTrip,
            text.as_bytes(),
            format!("serialized ontology rejected by the parser: {e}"),
        )),
        Ok(Ok(o2)) => {
            let text2 = triples::serialize(&o2);
            if sorted_lines(&text) != sorted_lines(&text2) {
                out.push(Failure::new(
                    FailureKind::RoundTrip,
                    text.as_bytes(),
                    "parse(serialize(o)) lost or changed triples",
                ));
            }
        }
    }
    let mut bytes = text.into_bytes();
    mutate::mutate(rng, &mut bytes);
    let mutated = String::from_utf8_lossy(&bytes).into_owned();
    match catching(|| triples::parse(&mutated)) {
        Err(msg) => out.push(panic_failure(&bytes, msg, triples_panics)),
        Ok(Ok(o3)) => {
            let t3 = triples::serialize(&o3);
            match triples::parse(&t3) {
                Ok(o4) if sorted_lines(&triples::serialize(&o4)) == sorted_lines(&t3) => {}
                Ok(_) => out.push(Failure::new(
                    FailureKind::RoundTrip,
                    t3.as_bytes(),
                    "reserializing an accepted mutant changed the ontology",
                )),
                Err(e) => out.push(Failure::new(
                    FailureKind::RoundTrip,
                    t3.as_bytes(),
                    format!("reserialized mutant no longer parses: {e}"),
                )),
            }
        }
        Ok(Err(_)) => {}
    }
    out
}

// ---------------------------------------------------------------------
// store — binary snapshot decoding
// ---------------------------------------------------------------------

fn store_panics(b: &[u8]) -> bool {
    catching(|| {
        let _ = questpro_store::decode(b);
    })
    .is_err()
}

fn store_iter(rng: &mut StdRng) -> Vec<Failure> {
    let mut out = Vec::new();
    // Structure stage: decode(encode(s)) must reproduce the store, and
    // re-encoding the decoded store must be byte-identical (snapshots
    // of the same data are diffable by contract).
    let s = gen::store(rng);
    let bytes = questpro_store::encode(&s);
    match catching(|| questpro_store::decode(&bytes)) {
        Err(msg) => out.push(panic_failure(&bytes, msg, store_panics)),
        Ok(Err(e)) => out.push(Failure::new(
            FailureKind::RoundTrip,
            &bytes[..],
            format!("encoder output rejected by the decoder: {e}"),
        )),
        Ok(Ok(back)) => {
            if back != s {
                out.push(Failure::new(
                    FailureKind::RoundTrip,
                    &bytes[..],
                    "decode(encode(s)) != s",
                ));
            } else if questpro_store::encode(&back) != bytes {
                out.push(Failure::new(
                    FailureKind::RoundTrip,
                    &bytes[..],
                    "re-encoding a decoded snapshot changed its bytes",
                ));
            }
        }
    }
    // Mutation stage: arbitrary bytes must decode to Ok or a named
    // error, never a panic; accepted mutants must round-trip.
    let mut mutated = bytes;
    mutate::mutate(rng, &mut mutated);
    match catching(|| questpro_store::decode(&mutated)) {
        Err(msg) => out.push(panic_failure(&mutated, msg, store_panics)),
        Ok(Ok(s2)) => {
            let bytes2 = questpro_store::encode(&s2);
            match questpro_store::decode(&bytes2) {
                Ok(s3) if s3 == s2 => {}
                Ok(_) => out.push(Failure::new(
                    FailureKind::RoundTrip,
                    &bytes2[..],
                    "re-encoding an accepted mutant changed the store",
                )),
                Err(e) => out.push(Failure::new(
                    FailureKind::RoundTrip,
                    &bytes2[..],
                    format!("re-encoded mutant no longer decodes: {e}"),
                )),
            }
        }
        Ok(Err(_)) => {}
    }
    out
}

// ---------------------------------------------------------------------
// update — batched triple updates, incremental vs from-scratch
// ---------------------------------------------------------------------

fn update_panics(b: &[u8]) -> bool {
    let text = String::from_utf8_lossy(b);
    catching(|| {
        if let Ok(v) = questpro_wire::parse(&text) {
            let _ = questpro_wire::update::parse_update(&v);
        }
    })
    .is_err()
}

/// One update iteration: a chain of random batches against a random
/// store. After every *accepted* batch the incremental store must be
/// byte-identical to a from-scratch rebuild of the updated ontology,
/// and both apply paths (columnar store overlay, graph delta) must
/// agree on acceptance. The wire encoding round-trips each batch, and
/// the mutation stage throws damaged batch JSON at the whole pipeline.
fn update_iter(rng: &mut StdRng) -> Vec<Failure> {
    let mut out = Vec::new();
    let mut store = gen::store(rng);
    let mut last_body = None;
    for _ in 0..rng.random_range(1..4usize) {
        let delta = gen::update_batch(rng, &store);
        // Wire round-trip: render -> parse must be the identity (the
        // server and the CLI both speak this encoding).
        let body = questpro_wire::update::render_update(&delta);
        match questpro_wire::update::parse_update(&body) {
            Ok(back) if back == delta => {}
            Ok(_) => out.push(Failure::new(
                FailureKind::RoundTrip,
                body.to_text().into_bytes(),
                "parse(render(delta)) != delta",
            )),
            Err(e) => out.push(Failure::new(
                FailureKind::RoundTrip,
                body.to_text().into_bytes(),
                format!("rendered batch rejected by parse_update: {e}"),
            )),
        }
        last_body = Some(body.to_text());
        // Differential: the incremental columnar overlay vs rebuilding
        // the updated ontology from scratch.
        let inc = match catching(|| store.apply_update(&delta)) {
            Ok(r) => r,
            Err(msg) => {
                out.push(panic_failure(body.to_text().as_bytes(), msg, update_panics));
                return out;
            }
        };
        let ont = store
            .to_ontology()
            .expect("a generated store always materializes");
        let scratch = match catching(|| ont.apply_delta(&delta)) {
            Ok(r) => r,
            Err(msg) => {
                out.push(panic_failure(body.to_text().as_bytes(), msg, update_panics));
                return out;
            }
        };
        match (inc, scratch) {
            (Ok(inc), Ok((new_ont, _))) => {
                let scratch_store = questpro_store::TripleStore::from_ontology(&new_ont)
                    .expect("an updated ontology always re-encodes");
                if questpro_store::encode(&inc) != questpro_store::encode(&scratch_store) {
                    out.push(Failure::new(
                        FailureKind::Differential,
                        body.to_text().into_bytes(),
                        "incremental store != from-scratch rebuild after update",
                    ));
                    return out;
                }
                if inc.to_ontology().is_err() {
                    out.push(Failure::new(
                        FailureKind::Differential,
                        body.to_text().into_bytes(),
                        "incrementally updated store no longer materializes",
                    ));
                    return out;
                }
                store = inc;
            }
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => {
                out.push(Failure::new(
                    FailureKind::Differential,
                    body.to_text().into_bytes(),
                    format!("store accepted a batch the graph rejects: {e}"),
                ));
                return out;
            }
            (Err(e), Ok(_)) => {
                out.push(Failure::new(
                    FailureKind::Differential,
                    body.to_text().into_bytes(),
                    format!("graph accepted a batch the store rejects: {e}"),
                ));
                return out;
            }
        }
    }
    // Mutation stage: damaged batch JSON must parse to Ok or a named
    // error — and an *accepted* mutant must apply without panicking on
    // either path.
    let mut bytes = last_body.expect("at least one round ran").into_bytes();
    mutate::mutate(rng, &mut bytes);
    let mutated = String::from_utf8_lossy(&bytes).into_owned();
    match catching(|| {
        if let Ok(v) = questpro_wire::parse(&mutated) {
            if let Ok(delta) = questpro_wire::update::parse_update(&v) {
                let inc_ok = store.apply_update(&delta).is_ok();
                let graph_ok = store
                    .to_ontology()
                    .expect("the chained store materializes")
                    .apply_delta(&delta)
                    .is_ok();
                return Some((inc_ok, graph_ok));
            }
        }
        None
    }) {
        Err(msg) => out.push(panic_failure(&bytes, msg, update_panics)),
        Ok(Some((inc_ok, graph_ok))) if inc_ok != graph_ok => {
            out.push(Failure::new(
                FailureKind::Differential,
                &bytes[..],
                format!(
                    "mutant batch splits the paths: store {}, graph {}",
                    if inc_ok { "accepts" } else { "rejects" },
                    if graph_ok { "accepts" } else { "rejects" }
                ),
            ));
        }
        Ok(_) => {}
    }
    out
}

// ---------------------------------------------------------------------
// http — head parsing + /eval differential
// ---------------------------------------------------------------------

fn http_panics(b: &[u8]) -> bool {
    catching(|| {
        let _ = read_request(&mut Cursor::new(b), MAX_FUZZ_BODY);
    })
    .is_err()
}

fn parse_panics(b: &[u8]) -> bool {
    catching(|| {
        let _ = parse_request(b, MAX_FUZZ_BODY);
    })
    .is_err()
}

fn http_iter(rng: &mut StdRng, http: &HttpState) -> Vec<Failure> {
    let mut out = Vec::new();
    // Head parsing: structure + mutation.
    let (bytes, expected) = gen::http_request(rng);
    match catching(|| read_request(&mut Cursor::new(&bytes[..]), MAX_FUZZ_BODY)) {
        Err(msg) => out.push(panic_failure(&bytes, msg, http_panics)),
        Ok(Ok(req)) => {
            if let Some(exp) = &expected {
                if req.method != exp.method || req.path != exp.path || req.body != exp.body {
                    out.push(Failure::new(
                        FailureKind::RoundTrip,
                        &bytes[..],
                        format!(
                            "well-formed request parsed to {} {} ({}B body), expected {} {} ({}B)",
                            req.method,
                            req.path,
                            req.body.len(),
                            exp.method,
                            exp.path,
                            exp.body.len()
                        ),
                    ));
                }
            }
        }
        Ok(Err(e)) => {
            if expected.is_some() {
                out.push(Failure::new(
                    FailureKind::RoundTrip,
                    &bytes[..],
                    format!("well-formed request rejected: {e:?}"),
                ));
            }
        }
    }
    // Staged parser (the event-loop path): must agree with the blocking
    // reader on well-formed input, and must be chunking-invariant.
    match catching(|| parse_request(&bytes, MAX_FUZZ_BODY)) {
        Err(msg) => out.push(panic_failure(&bytes, msg, parse_panics)),
        Ok(Ok(Some((req, consumed)))) => {
            if let Some(exp) = &expected {
                if req.method != exp.method || req.path != exp.path || req.body != exp.body {
                    out.push(Failure::new(
                        FailureKind::RoundTrip,
                        &bytes[..],
                        format!(
                            "staged parser read {} {} ({}B body), expected {} {} ({}B)",
                            req.method,
                            req.path,
                            req.body.len(),
                            exp.method,
                            exp.path,
                            exp.body.len()
                        ),
                    ));
                }
            }
            // Chunking invariance at random split points. A full-buffer
            // success implies the head fits MAX_HEAD_BYTES, so no prefix
            // can spuriously trip the head cap: every prefix must be
            // either "incomplete" or the exact same parse.
            for _ in 0..4 {
                let split = rng.random_range(0..=bytes.len());
                match catching(|| parse_request(&bytes[..split], MAX_FUZZ_BODY)) {
                    Err(msg) => {
                        out.push(panic_failure(&bytes[..split], msg, parse_panics));
                    }
                    Ok(Ok(None)) if split < consumed => {}
                    Ok(Ok(Some((p, c))))
                        if split >= consumed
                            && c == consumed
                            && p.method == req.method
                            && p.path == req.path
                            && p.body == req.body => {}
                    Ok(verdict) => {
                        let shape = match verdict {
                            Ok(Some((_, c))) => format!("parsed (consumed {c})"),
                            Ok(None) => "incomplete".to_string(),
                            Err(e) => format!("rejected: {e:?}"),
                        };
                        out.push(Failure::new(
                            FailureKind::RoundTrip,
                            &bytes[..],
                            format!(
                                "staged parser is chunking-variant: full buffer consumed \
                                 {consumed}B but the {split}B prefix came back {shape}"
                            ),
                        ));
                    }
                }
            }
        }
        Ok(Ok(None)) => {
            if expected.is_some() {
                out.push(Failure::new(
                    FailureKind::RoundTrip,
                    &bytes[..],
                    "staged parser left a complete well-formed request as incomplete".to_string(),
                ));
            }
        }
        Ok(Err(e)) => {
            if expected.is_some() {
                out.push(Failure::new(
                    FailureKind::RoundTrip,
                    &bytes[..],
                    format!("staged parser rejected a well-formed request: {e:?}"),
                ));
            }
        }
    }
    let mut mutated = bytes;
    mutate::mutate(rng, &mut mutated);
    if let Err(msg) = catching(|| {
        let _ = read_request(&mut Cursor::new(&mutated[..]), MAX_FUZZ_BODY);
    }) {
        out.push(panic_failure(&mutated, msg, http_panics));
    }
    // The staged parser sees mutants too — both whole and mid-buffer
    // truncated, since the event loop feeds it arbitrary partial reads.
    if let Err(msg) = catching(|| {
        let _ = parse_request(&mutated, MAX_FUZZ_BODY);
        let _ = parse_request(&mutated[..mutated.len() / 2], MAX_FUZZ_BODY);
    }) {
        out.push(panic_failure(&mutated, msg, parse_panics));
    }
    // Differential: the router's /eval answer must byte-agree with the
    // library path on the same textual query.
    let q = gen::vocab_query(rng);
    let text = sparql::format_union(&q);
    let body = Json::obj([
        ("ontology", Json::str("fuzz")),
        ("query", Json::str(text.clone())),
    ])
    .to_text();
    let request = eval_request(body.clone().into_bytes());
    match catching(|| route(&http.state, &request)) {
        Err(msg) => out.push(Failure::new(
            FailureKind::Panic,
            body.as_bytes(),
            format!("router panicked on a valid /eval body: {msg}"),
        )),
        Ok(resp) => {
            let reparsed = sparql::parse_union(&text).expect("formatted query parses");
            let results = evaluate_union_with(&http.ont, &reparsed, 1);
            let expected_body = Json::obj([(
                "results",
                Json::Arr(
                    results
                        .iter()
                        .map(|&r| Json::str(http.ont.value_str(r)))
                        .collect(),
                ),
            )])
            .to_text();
            if resp.status != 200 || resp.body != expected_body.as_bytes() {
                out.push(Failure::new(
                    FailureKind::Differential,
                    body.as_bytes(),
                    format!(
                        "server /eval diverged from the library path: status {}, body {:?}, expected {:?}",
                        resp.status,
                        String::from_utf8_lossy(&resp.body),
                        expected_body
                    ),
                ));
            }
        }
    }
    // Mutated bodies: never a panic, always a well-formed JSON envelope.
    let mut mutated_body = body.into_bytes();
    mutate::mutate(rng, &mut mutated_body);
    let request = eval_request(mutated_body.clone());
    match catching(|| route(&http.state, &request)) {
        Err(msg) => out.push(Failure::new(
            FailureKind::Panic,
            &mutated_body[..],
            format!("router panicked on a mutated /eval body: {msg}"),
        )),
        Ok(resp) => {
            let ok = std::str::from_utf8(&resp.body)
                .ok()
                .is_some_and(|t| questpro_wire::parse(t).is_ok());
            if !ok {
                out.push(Failure::new(
                    FailureKind::Differential,
                    &mutated_body[..],
                    format!(
                        "response to a mutated body is not well-formed JSON (status {})",
                        resp.status
                    ),
                ));
            }
        }
    }
    out
}

fn eval_request(body: Vec<u8>) -> Request {
    Request {
        method: "POST".to_string(),
        path: "/eval".to_string(),
        query: String::new(),
        headers: vec![("content-type".to_string(), "application/json".to_string())],
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_ctx_registers_the_fuzz_world() {
        let ctx = Ctx::new(Surface::Http);
        let http = ctx.http.as_ref().unwrap();
        assert_eq!(http.ont.edge_count(), 6);
        assert!(http.state.registry.get("fuzz").is_some());
    }

    #[test]
    fn every_surface_iterates_without_failures() {
        for surface in Surface::ALL {
            let mut ctx = Ctx::new(surface);
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..25 {
                let fails = ctx.iterate(&mut rng);
                assert!(fails.is_empty(), "{surface}: {:?}", fails);
            }
        }
    }
}
