//! Global engine instrumentation counters.
//!
//! The matcher counts the search-tree nodes it expands (candidate
//! bindings tried) and flushes the per-search total into a process-wide
//! relaxed atomic when each search — or each parallel shard — finishes.
//! Callers snapshot the counter around a region of work and report the
//! delta (see `InferenceStats` in `questpro-core` and the experiment
//! binaries).
//!
//! Determinism: for complete enumerations (collect/count/images) and
//! sequential searches the flushed totals are identical across thread
//! counts, because every shard does exactly the work the sequential
//! search would do for its slice. The one exception is a *parallel*
//! `exists()` — its early-stop race means shards may expand a few more
//! or fewer nodes between runs — so treat the counter as exact for
//! deterministic drivers and indicative otherwise.

use std::sync::atomic::{AtomicU64, Ordering};

static NODES_EXPANDED: AtomicU64 = AtomicU64::new(0);
static SEARCHES: AtomicU64 = AtomicU64::new(0);
static MATCHES: AtomicU64 = AtomicU64::new(0);
static CONSISTENCY_LOOKUPS: AtomicU64 = AtomicU64::new(0);
static CONSISTENCY_HITS: AtomicU64 = AtomicU64::new(0);

/// Total search-tree nodes expanded by all matcher searches in this
/// process since start (or the last [`reset_nodes_expanded`]).
pub fn nodes_expanded() -> u64 {
    NODES_EXPANDED.load(Ordering::Relaxed)
}

/// Total matcher search drives finished in this process: one per
/// sequential search, one per shard of a parallel search. **Monotonic**
/// — never reset; scrape endpoints can export it as a counter.
pub fn searches_total() -> u64 {
    SEARCHES.load(Ordering::Relaxed)
}

/// Total matches emitted by all matcher searches in this process.
/// **Monotonic** — never reset.
pub fn matches_total() -> u64 {
    MATCHES.load(Ordering::Relaxed)
}

/// Total `ConsistencyCache` lookups in this process. **Monotonic.**
pub fn consistency_lookups_total() -> u64 {
    CONSISTENCY_LOOKUPS.load(Ordering::Relaxed)
}

/// `ConsistencyCache` lookups answered from a cache (no matcher run).
/// **Monotonic.**
pub fn consistency_hits_total() -> u64 {
    CONSISTENCY_HITS.load(Ordering::Relaxed)
}

/// Resets the process-wide expansion counter (tests and experiment
/// harnesses that want absolute rather than delta readings). The
/// monotonic scrape counters ([`searches_total`] and friends) are
/// deliberately *not* resettable: consumers export them cumulatively
/// and compute rates from deltas.
pub fn reset_nodes_expanded() {
    NODES_EXPANDED.store(0, Ordering::Relaxed);
}

pub(crate) fn add_nodes_expanded(n: u64) {
    if n > 0 {
        NODES_EXPANDED.fetch_add(n, Ordering::Relaxed);
    }
}

/// Flushes one finished search drive: its expansion and emission totals.
pub(crate) fn flush_search(expanded: u64, matched: u64) {
    SEARCHES.fetch_add(1, Ordering::Relaxed);
    add_nodes_expanded(expanded);
    if matched > 0 {
        MATCHES.fetch_add(matched, Ordering::Relaxed);
    }
}

pub(crate) fn add_consistency_lookup(hit: bool) {
    CONSISTENCY_LOOKUPS.fetch_add(1, Ordering::Relaxed);
    if hit {
        CONSISTENCY_HITS.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_counters_are_monotonic() {
        let (s0, m0) = (searches_total(), matches_total());
        let (l0, h0) = (consistency_lookups_total(), consistency_hits_total());
        flush_search(5, 2);
        add_consistency_lookup(true);
        add_consistency_lookup(false);
        // Other tests run concurrently, so assert lower bounds only.
        assert!(searches_total() > s0);
        assert!(matches_total() >= m0 + 2);
        assert!(consistency_lookups_total() >= l0 + 2);
        assert!(consistency_hits_total() > h0);
    }
}
