//! Global engine instrumentation counters.
//!
//! The matcher counts the search-tree nodes it expands (candidate
//! bindings tried) and flushes the per-search total into a process-wide
//! relaxed atomic when each search — or each parallel shard — finishes.
//! Callers snapshot the counter around a region of work and report the
//! delta (see `InferenceStats` in `questpro-core` and the experiment
//! binaries).
//!
//! Determinism: for complete enumerations (collect/count/images) and
//! sequential searches the flushed totals are identical across thread
//! counts, because every shard does exactly the work the sequential
//! search would do for its slice. The one exception is a *parallel*
//! `exists()` — its early-stop race means shards may expand a few more
//! or fewer nodes between runs — so treat the counter as exact for
//! deterministic drivers and indicative otherwise.

use std::sync::atomic::{AtomicU64, Ordering};

static NODES_EXPANDED: AtomicU64 = AtomicU64::new(0);

/// Total search-tree nodes expanded by all matcher searches in this
/// process since start (or the last [`reset_nodes_expanded`]).
pub fn nodes_expanded() -> u64 {
    NODES_EXPANDED.load(Ordering::Relaxed)
}

/// Resets the process-wide expansion counter (tests and experiment
/// harnesses that want absolute rather than delta readings).
pub fn reset_nodes_expanded() {
    NODES_EXPANDED.store(0, Ordering::Relaxed);
}

pub(crate) fn add_nodes_expanded(n: u64) {
    if n > 0 {
        NODES_EXPANDED.fetch_add(n, Ordering::Relaxed);
    }
}
