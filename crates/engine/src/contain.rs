//! Containment and equivalence of queries via the frozen-instance test.
//!
//! For plain conjunctive queries, `a ⊑ b` (every result of `a` on every
//! ontology is a result of `b`) holds iff there is a homomorphism from
//! `b` into `a` viewed as a *frozen instance* — constants keep their
//! values, variables become fresh distinct values — that maps `b`'s
//! projected node to `a`'s projected node (the classical Chandra–Merlin
//! argument, restated for graph patterns).
//!
//! Disequalities make containment Π₂ᵖ-hard in general, so this module
//! uses a **sound, incomplete** extension: a disequality `(x, y)` of `b`
//! is accepted only if the images are distinct constants or are
//! themselves constrained apart by a disequality of `a`. When the test
//! answers `true`, containment genuinely holds; a `false` may be a false
//! negative only for diseq-carrying queries.
//!
//! These tests are how the experiment harness decides that inference has
//! *reconstructed* a target query (the paper's success criterion).

use questpro_query::{NodeLabel, QueryNodeId, SimpleQuery, UnionQuery};

/// Whether `a ⊑ b`: every result of `a` is a result of `b`, on every
/// ontology. Sound; complete for disequality-free queries.
///
/// OPTIONAL edges never constrain the result set (they only extend
/// provenance), so containment is decided on the required parts alone.
pub fn contained_in(a: &SimpleQuery, b: &SimpleQuery) -> bool {
    // Search for a homomorphism from b's required part into frozen(a)'s
    // required part.
    let mut map = vec![u32::MAX; b.node_count()];
    if !try_map(b, a, b.projected(), a.projected(), &mut map) {
        return false;
    }
    extend(b, a, &mut map, 0)
}

/// Whether two simple queries are semantically equivalent (mutual
/// containment).
pub fn equivalent(a: &SimpleQuery, b: &SimpleQuery) -> bool {
    contained_in(a, b) && contained_in(b, a)
}

/// Whether `a ⊑ b` for unions: every branch of `a` must be contained in
/// some branch of `b` (complete for unions of diseq-free CQs).
pub fn union_contained_in(a: &UnionQuery, b: &UnionQuery) -> bool {
    a.branches()
        .iter()
        .all(|qa| b.branches().iter().any(|qb| contained_in(qa, qb)))
}

/// Whether two union queries are semantically equivalent.
pub fn union_equivalent(a: &UnionQuery, b: &UnionQuery) -> bool {
    union_contained_in(a, b) && union_contained_in(b, a)
}

/// Attempts `bn ↦ an`; label compatibility only (constants must match a
/// constant of the same value, variables map anywhere).
fn try_map(
    b: &SimpleQuery,
    a: &SimpleQuery,
    bn: QueryNodeId,
    an: QueryNodeId,
    map: &mut [u32],
) -> bool {
    let compatible = match (b.label(bn), a.label(an)) {
        (NodeLabel::Const(x), NodeLabel::Const(y)) => x == y,
        (NodeLabel::Const(_), NodeLabel::Var(_)) => false,
        (NodeLabel::Var(_), _) => true,
    };
    if !compatible {
        return false;
    }
    match map[bn.index()] {
        u32::MAX => {
            map[bn.index()] = an.index() as u32;
            true
        }
        existing => existing == an.index() as u32,
    }
}

fn extend(b: &SimpleQuery, a: &SimpleQuery, map: &mut Vec<u32>, depth: usize) -> bool {
    if depth == b.edge_count() {
        return finish_isolated(b, a, map, 0);
    }
    let be = &b.edges()[depth];
    if be.optional {
        // Optional edges of `b` do not constrain results.
        return extend(b, a, map, depth + 1);
    }
    for ae in a.edges() {
        if ae.optional || ae.pred != be.pred {
            continue;
        }
        let saved = map.clone();
        if try_map(b, a, be.src, ae.src, map)
            && try_map(b, a, be.dst, ae.dst, map)
            && extend(b, a, map, depth + 1)
        {
            return true;
        }
        *map = saved;
    }
    false
}

fn finish_isolated(b: &SimpleQuery, a: &SimpleQuery, map: &mut Vec<u32>, from: usize) -> bool {
    let next = (from..b.node_count()).find(|&i| map[i] == u32::MAX);
    let Some(bi) = next else {
        return diseqs_sound(b, a, map);
    };
    let bn = QueryNodeId::from_index(bi);
    for an in a.node_ids() {
        let saved = map[bi];
        if try_map(b, a, bn, an, map) && finish_isolated(b, a, map, bi + 1) {
            return true;
        }
        map[bi] = saved;
    }
    false
}

/// Sound acceptance of `b`'s disequalities under the mapping: images must
/// be distinct constants, or distinct nodes tied apart by a disequality
/// of `a`.
fn diseqs_sound(b: &SimpleQuery, a: &SimpleQuery, map: &[u32]) -> bool {
    b.diseqs().iter().all(|&(x, y)| {
        let ax = QueryNodeId::from_index(map[x.index()] as usize);
        let ay = QueryNodeId::from_index(map[y.index()] as usize);
        if ax == ay {
            return false;
        }
        match (a.label(ax).as_const(), a.label(ay).as_const()) {
            (Some(cx), Some(cy)) => cx != cy,
            _ => {
                let pair = if ax < ay { (ax, ay) } else { (ay, ax) };
                a.diseqs().contains(&pair)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_query::fixtures::{erdos_q1, erdos_q2};

    fn coauthor_query(name: Option<&str>) -> SimpleQuery {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let other = match name {
            Some(n) => b.constant(n),
            None => b.var("other"),
        };
        b.edge(p, "wb", x).edge(p, "wb", other).project(x);
        b.build().unwrap()
    }

    #[test]
    fn specialization_is_contained_in_generalization() {
        let erdos = coauthor_query(Some("Erdos"));
        let anyone = coauthor_query(None);
        assert!(contained_in(&erdos, &anyone));
        assert!(!contained_in(&anyone, &erdos));
        assert!(!equivalent(&erdos, &anyone));
    }

    #[test]
    fn renamed_queries_are_equivalent() {
        let q1 = erdos_q1();
        let mut b = SimpleQuery::builder();
        let a1 = b.var("z1");
        let a2 = b.var("z2");
        let a3 = b.var("z3");
        let a4 = b.var("z4");
        let p1 = b.var("w1");
        let p2 = b.var("w2");
        let p3 = b.var("w3");
        b.edge(p1, "wb", a1)
            .edge(p1, "wb", a2)
            .edge(p2, "wb", a2)
            .edge(p2, "wb", a3)
            .edge(p3, "wb", a3)
            .edge(p3, "wb", a4)
            .project(a1);
        let renamed = b.build().unwrap();
        assert!(equivalent(&q1, &renamed));
    }

    #[test]
    fn diseq_free_chain_folds_to_a_single_edge() {
        // Under homomorphism semantics the diseq-free Q1 chain folds onto
        // one wb edge, so Q1, Q2 and the single-edge query are mutually
        // equivalent — the very over-generalization that motivates the
        // paper's disequality constraints (Section V).
        assert!(contained_in(&erdos_q1(), &erdos_q2()));
        assert!(contained_in(&erdos_q2(), &erdos_q1()));
        assert!(equivalent(&erdos_q1(), &erdos_q2()));
        // Adding a disequality ?a1 != ?a2 to Q1 blocks the fold: the
        // disjoint-edge Q2 is then no longer contained in Q1.
        let q1 = erdos_q1();
        let a1 = q1.node_of_var("a1").unwrap();
        let a2 = q1.node_of_var("a2").unwrap();
        let q1d = q1.with_diseqs([(a1, a2)]).unwrap();
        assert!(!contained_in(&erdos_q2(), &q1d));
        // And constants block folding too: anchoring the chain end at
        // Erdos separates it from the unconstrained disjoint edges.
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        let anchored = b.build().unwrap();
        assert!(!contained_in(&erdos_q2(), &anchored));
        assert!(contained_in(&anchored, &erdos_q2()));
    }

    #[test]
    fn longer_chain_is_contained_in_shorter() {
        // "Erdős number ≤ 2 path" vs "co-author": a 2-chain folds onto a
        // 1-chain? From shorter INTO longer: hom from 1-edge pattern into
        // 2-chain exists (map onto first edge), so 2-chain ⊑ 1-edge.
        let one = coauthor_query(None);
        let q1 = erdos_q1();
        assert!(contained_in(&q1, &one));
    }

    #[test]
    fn different_predicates_are_incomparable() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.edge(y, "cites", x).project(x);
        let cites = b.build().unwrap();
        let wb = coauthor_query(None);
        assert!(!contained_in(&cites, &wb));
        assert!(!contained_in(&wb, &cites));
    }

    #[test]
    fn projection_anchors_the_homomorphism() {
        // Same single-edge pattern projected on source vs target.
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.edge(x, "wb", y).project(x);
        let src_proj = b.build().unwrap();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        b.edge(x, "wb", y).project(y);
        let dst_proj = b.build().unwrap();
        assert!(!contained_in(&src_proj, &dst_proj));
        assert!(!contained_in(&dst_proj, &src_proj));
    }

    #[test]
    fn diseq_containment_is_sound() {
        // b = co-authors that are distinct (?x != ?other); a = the same
        // with matching diseq → contained. Without a's diseq → rejected.
        let plain = coauthor_query(None);
        let x = plain.node_of_var("x").unwrap();
        let other = plain.node_of_var("other").unwrap();
        let with_diseq = plain.with_diseqs([(x, other)]).unwrap();
        assert!(contained_in(&with_diseq, &with_diseq));
        // a=plain has no diseq, so mapping b=with_diseq's diseq cannot be
        // certified.
        assert!(!contained_in(&plain, &with_diseq));
        // The other direction holds: dropping a diseq only widens b.
        assert!(contained_in(&with_diseq, &plain));
    }

    #[test]
    fn union_containment_per_branch() {
        let erdos = coauthor_query(Some("Erdos"));
        let bob = coauthor_query(Some("Bob"));
        let anyone = coauthor_query(None);
        let u_spec = UnionQuery::new(vec![erdos.clone(), bob.clone()]).unwrap();
        let u_gen = UnionQuery::single(anyone);
        assert!(union_contained_in(&u_spec, &u_gen));
        assert!(!union_contained_in(&u_gen, &u_spec));
        let u_same = UnionQuery::new(vec![bob, erdos]).unwrap();
        assert!(union_equivalent(&u_spec, &u_same));
    }

    #[test]
    fn constant_must_map_to_equal_constant() {
        let erdos = coauthor_query(Some("Erdos"));
        let bob = coauthor_query(Some("Bob"));
        assert!(!contained_in(&erdos, &bob));
        assert!(!contained_in(&bob, &erdos));
        assert!(equivalent(&erdos, &erdos));
    }
}
