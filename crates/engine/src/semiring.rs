//! Semiring provenance: polynomials over ontology edges.
//!
//! The paper's graph-provenance model (Def. 2.4) keeps, per result, the
//! *set of match images*. Its companion technical report (cited as the
//! relational/semiring variant) works instead with **provenance
//! polynomials** in the sense of Green, Karvounarakis & Tannen: each
//! ontology edge is an indeterminate, a match contributes the product of
//! the edges it uses, and alternative derivations add up:
//!
//! ```text
//! prov(Carol) = e3·e4  +  e3·e4·e7   →  (as a positive polynomial)
//! ```
//!
//! This module computes those polynomials from the same matcher the rest
//! of the engine uses, in the free commutative idempotent-exponent
//! semiring (monomials are edge *sets* — using an edge twice in one
//! match is absorbed, matching `Trio`/`B(X)`-style models and the
//! paper's image semantics where `μ(Q)` is a set). Monomials and
//! polynomials are canonically ordered, so equality is structural.
//!
//! The graph model stays primary; polynomials are a view: every monomial
//! is exactly the edge set of one provenance image, and
//! [`Polynomial::images`] recovers the Def. 2.4 subgraphs.

use std::collections::BTreeSet;
use std::fmt;
use std::ops::ControlFlow;

use questpro_graph::{EdgeId, NodeId, Ontology, Subgraph};
use questpro_query::{SimpleQuery, UnionQuery};

use crate::matcher::Matcher;

/// A product of distinct edge indeterminates (one match's edge usage).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial {
    edges: BTreeSet<EdgeId>,
}

impl Monomial {
    /// The monomial over the given edges (duplicates absorbed).
    pub fn new(edges: impl IntoIterator<Item = EdgeId>) -> Self {
        Self {
            edges: edges.into_iter().collect(),
        }
    }

    /// The edge indeterminates, sorted.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges.iter().copied()
    }

    /// Number of distinct indeterminates.
    pub fn degree(&self) -> usize {
        self.edges.len()
    }

    /// Whether this is the unit monomial (empty product).
    pub fn is_unit(&self) -> bool {
        self.edges.is_empty()
    }

    /// Semiring product: union of the indeterminate sets.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        Monomial {
            edges: self.edges.union(&other.edges).copied().collect(),
        }
    }
}

/// A sum of distinct monomials: the provenance polynomial of one result.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    monomials: BTreeSet<Monomial>,
}

impl Polynomial {
    /// The zero polynomial (no derivations).
    pub fn zero() -> Self {
        Self::default()
    }

    /// A polynomial from monomials (duplicates absorbed — the boolean
    /// specialization of polynomial provenance, where multiplicities of
    /// identical derivations collapse).
    pub fn from_monomials(ms: impl IntoIterator<Item = Monomial>) -> Self {
        Self {
            monomials: ms.into_iter().collect(),
        }
    }

    /// The monomials, canonically ordered.
    pub fn monomials(&self) -> impl Iterator<Item = &Monomial> {
        self.monomials.iter()
    }

    /// Number of distinct derivations.
    pub fn len(&self) -> usize {
        self.monomials.len()
    }

    /// Whether the polynomial is zero.
    pub fn is_empty(&self) -> bool {
        self.monomials.is_empty()
    }

    /// Semiring sum: union of derivation sets.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        Polynomial {
            monomials: self.monomials.union(&other.monomials).cloned().collect(),
        }
    }

    /// Semiring product: pairwise monomial products (used when composing
    /// derivations, e.g. of a join of two sub-results).
    pub fn mul(&self, other: &Polynomial) -> Polynomial {
        let mut out = BTreeSet::new();
        for a in &self.monomials {
            for b in &other.monomials {
                out.insert(a.mul(b));
            }
        }
        Polynomial { monomials: out }
    }

    /// Evaluates the polynomial under a boolean assignment: does any
    /// derivation survive when only `alive` edges are trusted? This is
    /// the classic deletion-propagation question answered directly from
    /// provenance.
    pub fn survives(&self, alive: &dyn Fn(EdgeId) -> bool) -> bool {
        self.monomials.iter().any(|m| m.edges().all(alive))
    }

    /// The Def. 2.4 view: each monomial as a provenance subgraph.
    pub fn images(&self, ont: &Ontology) -> Vec<Subgraph> {
        self.monomials
            .iter()
            .map(|m| Subgraph::from_edges(ont, m.edges()))
            .collect()
    }

    /// Renders the polynomial with edge descriptions, e.g.
    /// `(paper3 -wb-> Carol · paper3 -wb-> Erdos) + …`.
    pub fn describe(&self, ont: &Ontology) -> String {
        if self.monomials.is_empty() {
            return "0".to_string();
        }
        self.monomials
            .iter()
            .map(|m| {
                if m.is_unit() {
                    "1".to_string()
                } else {
                    let factors: Vec<String> = m.edges().map(|e| ont.describe_edge(e)).collect();
                    format!("({})", factors.join(" · "))
                }
            })
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unit() {
            return write!(f, "1");
        }
        let parts: Vec<String> = self.edges.iter().map(|e| e.to_string()).collect();
        write!(f, "{}", parts.join("·"))
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.monomials.is_empty() {
            return write!(f, "0");
        }
        let parts: Vec<String> = self.monomials.iter().map(|m| m.to_string()).collect();
        write!(f, "{}", parts.join(" + "))
    }
}

/// The provenance polynomial of `res` w.r.t. a simple query: one
/// monomial per distinct match edge-usage, up to `limit` monomials.
pub fn polynomial_of(
    ont: &Ontology,
    q: &SimpleQuery,
    res: NodeId,
    limit: Option<usize>,
) -> Polynomial {
    let mut monomials: BTreeSet<Monomial> = BTreeSet::new();
    Matcher::new(ont, q).bind(q.projected(), res).for_each(|m| {
        monomials.insert(Monomial::new(m.edges.iter().flatten().copied()));
        match limit {
            Some(l) if monomials.len() >= l => ControlFlow::Break(()),
            _ => ControlFlow::Continue(()),
        }
    });
    Polynomial { monomials }
}

/// The provenance polynomial of `res` w.r.t. a union query: the semiring
/// sum over branches.
pub fn polynomial_of_union(
    ont: &Ontology,
    q: &UnionQuery,
    res: NodeId,
    limit: Option<usize>,
) -> Polynomial {
    let mut acc = Polynomial::zero();
    for branch in q.branches() {
        acc = acc.add(&polynomial_of(ont, branch, res, limit));
        if let Some(l) = limit {
            if acc.len() >= l {
                break;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::provenance_of;
    use questpro_query::QueryBuilder;

    fn world() -> Ontology {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Carol"),
            ("paper4", "Erdos"),
            ("paper5", "Frank"),
            ("paper5", "Gina"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        b.build()
    }

    fn coauthors_of_erdos() -> SimpleQuery {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        b.build().unwrap()
    }

    #[test]
    fn alternative_derivations_add_up() {
        let o = world();
        let q = coauthors_of_erdos();
        let carol = o.node_by_value("Carol").unwrap();
        let p = polynomial_of(&o, &q, carol, None);
        // Carol is derivable via paper3 and via paper4: two monomials of
        // degree 2 each.
        assert_eq!(p.len(), 2);
        assert!(p.monomials().all(|m| m.degree() == 2));
        let text = p.describe(&o);
        assert!(text.contains("paper3 -wb-> Carol"));
        assert!(text.contains("paper4 -wb-> Carol"));
        assert!(text.contains(" + "));
    }

    #[test]
    fn monomials_agree_with_graph_provenance() {
        let o = world();
        let q = coauthors_of_erdos();
        let carol = o.node_by_value("Carol").unwrap();
        let poly_images: BTreeSet<Subgraph> = polynomial_of(&o, &q, carol, None)
            .images(&o)
            .into_iter()
            .collect();
        let graph_images: BTreeSet<Subgraph> =
            provenance_of(&o, &q, carol, None).into_iter().collect();
        assert_eq!(poly_images, graph_images);
    }

    #[test]
    fn deletion_propagation_via_boolean_evaluation() {
        let o = world();
        let q = coauthors_of_erdos();
        let carol = o.node_by_value("Carol").unwrap();
        let p = polynomial_of(&o, &q, carol, None);
        // Delete everything touching paper3: Carol survives via paper4.
        let paper3 = o.node_by_value("paper3").unwrap();
        let alive = |e: EdgeId| o.edge(e).src != paper3;
        assert!(p.survives(&alive));
        // Delete both papers' Erdos edges: no derivation survives.
        let erdos = o.node_by_value("Erdos").unwrap();
        let alive = |e: EdgeId| o.edge(e).dst != erdos;
        assert!(!p.survives(&alive));
    }

    #[test]
    fn zero_for_non_results() {
        let o = world();
        let q = coauthors_of_erdos();
        let frank = o.node_by_value("Frank").unwrap();
        let p = polynomial_of(&o, &q, frank, None);
        assert!(p.is_empty());
        assert_eq!(p.describe(&o), "0");
        assert_eq!(p.to_string(), "0");
    }

    #[test]
    fn semiring_laws_hold_on_samples() {
        let o = world();
        let q = coauthors_of_erdos();
        let carol = o.node_by_value("Carol").unwrap();
        let erdos_node = o.node_by_value("Erdos").unwrap();
        let a = polynomial_of(&o, &q, carol, None);
        let b = polynomial_of(&o, &q, erdos_node, None);
        // Commutativity and idempotence of +.
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&a), a);
        // Distributivity on these samples.
        let c = Polynomial::from_monomials([Monomial::new([EdgeId::new(0)])]);
        assert_eq!(a.add(&b).mul(&c), a.mul(&c).add(&b.mul(&c)));
        // 1 is neutral for ·, 0 for +.
        let one = Polynomial::from_monomials([Monomial::default()]);
        assert_eq!(a.mul(&one), a);
        assert_eq!(a.add(&Polynomial::zero()), a);
    }

    #[test]
    fn union_polynomials_sum_branches() {
        let o = world();
        let q1 = coauthors_of_erdos();
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let p5 = b.constant("paper5");
        b.edge(p5, "wb", x).project(x);
        let q2 = b.build().unwrap();
        let u = UnionQuery::new(vec![q1, q2]).unwrap();
        let carol = o.node_by_value("Carol").unwrap();
        let p = polynomial_of_union(&o, &u, carol, None);
        assert_eq!(p.len(), 2); // only the first branch derives Carol
        let frank = o.node_by_value("Frank").unwrap();
        let pf = polynomial_of_union(&o, &u, frank, None);
        assert_eq!(pf.len(), 1);
        assert_eq!(pf.monomials().next().unwrap().degree(), 1);
    }

    #[test]
    fn limit_caps_monomials() {
        let o = world();
        let q = coauthors_of_erdos();
        let carol = o.node_by_value("Carol").unwrap();
        let p = polynomial_of(&o, &q, carol, Some(1));
        assert_eq!(p.len(), 1);
    }
}
