//! Volcano-style cost estimation over columnar predicate statistics.
//!
//! The matcher must pick, at each step, which pattern edge to match
//! next. The classic heuristic ("most bound endpoints, then smallest
//! predicate pool") ignores how *selective* a predicate actually is: a
//! predicate with a million edges but a single distinct subject is
//! nearly free once its source is bound. This module derives expected
//! candidate counts from the [`PredStats`] kept by
//! `questpro-graph::columnar` — the classic System R / Volcano
//! uniformity assumption:
//!
//! * both endpoints bound — expected matches `card / (ds · do)`
//!   (uniform and independent subject/object choice);
//! * source bound — expected scan `card / ds` (average out-fanout);
//! * target bound — expected scan `card / do` (average in-fanout);
//! * neither bound — full predicate scan, `card`.
//!
//! Estimates are plain finite `f64`s (never NaN), so "order by cost" is
//! a total order, and they depend only on per-predicate statistics —
//! never on node or edge *ids* — so any id remapping that preserves the
//! graph structure leaves every estimate unchanged. Both properties are
//! locked in by tests (here and in the repo-level property suite).
//!
//! Cost-based ordering changes only *search effort*, never the match
//! set: the matcher's result semantics are order-independent. The
//! global [`set_ordering_mode`] switch exists so benches and the
//! differential test can pit [`OrderingMode::CostBased`] against the
//! classic heuristic and assert identical inference output.

use std::sync::atomic::{AtomicU8, Ordering};

use questpro_graph::{Ontology, PredId, PredStats};

/// How the matcher orders required pattern edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingMode {
    /// Statistics-driven ordering (the default): expand the edge with
    /// the smallest estimated candidate scan first.
    CostBased,
    /// The pre-cost heuristic: most bound endpoints first, ties broken
    /// by raw predicate-pool size. Kept as an ablation/differential
    /// baseline.
    Classic,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the process-global edge-ordering mode (default: cost-based).
///
/// Output of every driver is identical in both modes; only search cost
/// differs. Used by the ordering differential test and benches.
pub fn set_ordering_mode(mode: OrderingMode) {
    MODE.store(
        match mode {
            OrderingMode::CostBased => 0,
            OrderingMode::Classic => 1,
        },
        Ordering::Relaxed,
    );
}

/// The current process-global edge-ordering mode.
pub fn ordering_mode() -> OrderingMode {
    match MODE.load(Ordering::Relaxed) {
        0 => OrderingMode::CostBased,
        _ => OrderingMode::Classic,
    }
}

/// Expected number of candidate edges scanned to match one pattern edge
/// with the given endpoint binding state, from predicate statistics.
///
/// Always finite and non-negative; 0 for a predicate with no edges.
#[inline]
pub fn estimate_scan(st: PredStats, src_bound: bool, dst_bound: bool) -> f64 {
    let card = f64::from(st.cardinality);
    if st.cardinality == 0 {
        return 0.0;
    }
    let ds = f64::from(st.distinct_subjects.max(1));
    let dobj = f64::from(st.distinct_objects.max(1));
    match (src_bound, dst_bound) {
        (true, true) => card / (ds * dobj),
        (true, false) => card / ds,
        (false, true) => card / dobj,
        (false, false) => card,
    }
}

/// [`estimate_scan`] looked up through the ontology's statistics.
#[inline]
pub fn edge_cost(ont: &Ontology, p: PredId, src_bound: bool, dst_bound: bool) -> f64 {
    estimate_scan(ont.pred_stats(p), src_bound, dst_bound)
}

/// Estimated work of merging two explanation pattern graphs with `m1`
/// and `m2` edges: the greedy pairing examines candidate pairs from the
/// `m1 × m2` cross product per iteration, up to `min(m1, m2)` times.
///
/// Used to size work items for the work-stealing dispatcher and to
/// order explanation pairs largest-first (LPT scheduling), which bounds
/// makespan regardless of which worker steals what.
#[inline]
pub fn merge_pair_cost(m1: usize, m2: usize) -> u64 {
    let pairs = (m1 as u64).saturating_mul(m2 as u64);
    pairs.saturating_mul(m1.min(m2).max(1) as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::Ontology;

    fn world() -> Ontology {
        let mut b = Ontology::builder();
        b.edge("p1", "wb", "a1").unwrap();
        b.edge("p1", "wb", "a2").unwrap();
        b.edge("p2", "wb", "a1").unwrap();
        b.edge("p2", "cites", "p1").unwrap();
        b.build()
    }

    #[test]
    fn estimates_follow_the_uniformity_formulas() {
        let o = world();
        let wb = o.pred_by_name("wb").unwrap();
        // wb: card 3, 2 distinct subjects, 2 distinct objects.
        assert_eq!(edge_cost(&o, wb, false, false), 3.0);
        assert_eq!(edge_cost(&o, wb, true, false), 1.5);
        assert_eq!(edge_cost(&o, wb, false, true), 1.5);
        assert_eq!(edge_cost(&o, wb, true, true), 0.75);
    }

    #[test]
    fn estimates_are_finite_and_total() {
        let o = world();
        let mut costs = Vec::new();
        for praw in 0..o.pred_count() {
            let p = questpro_graph::PredId::from_usize(praw);
            for (sb, db) in [(false, false), (true, false), (false, true), (true, true)] {
                let c = edge_cost(&o, p, sb, db);
                assert!(c.is_finite() && c >= 0.0);
                costs.push(c);
            }
        }
        // total_cmp never panics and sorts them totally.
        costs.sort_by(f64::total_cmp);
    }

    #[test]
    fn zero_cardinality_is_zero_cost() {
        assert_eq!(estimate_scan(PredStats::default(), false, false), 0.0);
        assert_eq!(estimate_scan(PredStats::default(), true, true), 0.0);
    }

    #[test]
    fn ordering_mode_roundtrips() {
        assert_eq!(ordering_mode(), OrderingMode::CostBased);
        set_ordering_mode(OrderingMode::Classic);
        assert_eq!(ordering_mode(), OrderingMode::Classic);
        set_ordering_mode(OrderingMode::CostBased);
        assert_eq!(ordering_mode(), OrderingMode::CostBased);
    }

    #[test]
    fn merge_pair_cost_is_positive_and_monotone() {
        assert_eq!(merge_pair_cost(0, 0), 1);
        assert!(merge_pair_cost(3, 4) <= merge_pair_cost(4, 4));
        assert!(merge_pair_cost(2, 2) < merge_pair_cost(8, 8));
    }
}
