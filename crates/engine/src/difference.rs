//! Difference queries for the feedback stage (Section V).
//!
//! To distinguish candidate queries `Q_i`, `Q_j`, the paper evaluates the
//! difference `Q_i − Q_j` *without* provenance tracking, samples one
//! result, binds it back into `Q_i`, and only then computes provenance
//! for that single result — avoiding the cost of provenance-tracking two
//! full evaluations.

use std::collections::BTreeSet;

use questpro_graph::rng::{IteratorRandom, Rng};

use questpro_graph::{NodeId, Ontology, Subgraph};
use questpro_query::UnionQuery;

use crate::eval::{evaluate_union, provenance_of_union};

/// Evaluates `a − b`: results of `a` that are not results of `b`.
pub fn difference(ont: &Ontology, a: &UnionQuery, b: &UnionQuery) -> BTreeSet<NodeId> {
    let _t = questpro_trace::span("engine.difference");
    let ra = evaluate_union(ont, a);
    if ra.is_empty() {
        return ra;
    }
    let rb = evaluate_union(ont, b);
    let out: BTreeSet<NodeId> = ra.difference(&rb).copied().collect();
    if questpro_log::enabled(questpro_log::Level::Trace) {
        questpro_log::emit(
            questpro_log::Level::Trace,
            "engine.difference",
            "difference query evaluated",
            vec![
                ("left_results", ra.len().into()),
                ("right_results", rb.len().into()),
                ("difference", out.len().into()),
            ],
        );
    }
    out
}

/// Evaluates `a − b`, samples one result uniformly, and returns it with
/// one provenance graph w.r.t. `a` (the witness shown to the user).
///
/// Returns `None` when the difference is empty. The provenance graph is
/// sampled among the first `prov_limit` distinct images.
pub fn difference_with_witness<R: Rng>(
    ont: &Ontology,
    a: &UnionQuery,
    b: &UnionQuery,
    rng: &mut R,
    prov_limit: usize,
) -> Option<(NodeId, Subgraph)> {
    let diff = difference(ont, a, b);
    let res = diff.into_iter().choose(rng)?;
    let imgs = provenance_of_union(ont, a, res, Some(prov_limit.max(1)));
    let img = imgs
        .into_iter()
        .choose(rng)
        .expect("a difference result always has provenance w.r.t. `a`");
    Some((res, img))
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::rng::StdRng;
    use questpro_query::SimpleQuery;

    fn world() -> Ontology {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Erdos"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Frank"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        b.build()
    }

    fn coauthors_of(name: &str) -> UnionQuery {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let c = b.constant(name);
        b.edge(p, "wb", x).edge(p, "wb", c).project(x);
        UnionQuery::single(b.build().unwrap())
    }

    fn all_authors() -> UnionQuery {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        b.edge(p, "wb", x).project(x);
        UnionQuery::single(b.build().unwrap())
    }

    #[test]
    fn difference_removes_second_query_results() {
        let o = world();
        let diff = difference(&o, &all_authors(), &coauthors_of("Erdos"));
        let names: Vec<_> = diff.iter().map(|&n| o.value_str(n)).collect();
        // Co-authors of Erdos: Bob, Carol, Erdos. Everyone else remains.
        assert_eq!(names, vec!["Alice", "Dave", "Frank"]);
    }

    #[test]
    fn empty_difference_when_contained() {
        let o = world();
        let diff = difference(&o, &coauthors_of("Erdos"), &all_authors());
        assert!(diff.is_empty());
    }

    #[test]
    fn witness_carries_provenance_of_the_first_query() {
        let o = world();
        let mut rng = StdRng::seed_from_u64(7);
        let (res, img) =
            difference_with_witness(&o, &all_authors(), &coauthors_of("Erdos"), &mut rng, 8)
                .expect("non-empty difference");
        let name = o.value_str(res);
        assert!(["Alice", "Dave", "Frank"].contains(&name));
        // The witness image is a single wb edge producing `res`.
        assert_eq!(img.edge_count(), 1);
        assert!(img.describe(&o).contains(name));
    }

    #[test]
    fn witness_is_none_on_empty_difference() {
        let o = world();
        let mut rng = StdRng::seed_from_u64(7);
        assert!(
            difference_with_witness(&o, &coauthors_of("Erdos"), &all_authors(), &mut rng, 8)
                .is_none()
        );
    }

    #[test]
    fn witness_sampling_is_seed_deterministic() {
        let o = world();
        let a = all_authors();
        let b = coauthors_of("Erdos");
        let w1 = difference_with_witness(&o, &a, &b, &mut StdRng::seed_from_u64(3), 8);
        let w2 = difference_with_witness(&o, &a, &b, &mut StdRng::seed_from_u64(3), 8);
        assert_eq!(w1, w2);
    }
}
