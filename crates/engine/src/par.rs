//! Deterministic data-parallel helpers on `std::thread::scope`.
//!
//! The workspace's parallelism contract: every output is written back
//! to its item's *position*, so the assembled result is bit-identical
//! at every thread count no matter which worker computed what, or in
//! what order. Two schedulers honor that contract:
//!
//! * [`map_chunked`] — static strided assignment (worker `w` takes
//!   items `w, w+W, w+2W, …`). Zero coordination; good when item costs
//!   are roughly uniform or unknown.
//! * [`map_stealing`] — cost-aware work stealing. Items are seeded into
//!   per-worker deques largest-first (LPT), each worker drains its own
//!   deque from the front and, when empty, *steals from the back* of
//!   the fullest other deque. Each `(index, output)` pair lands in its
//!   indexed slot during assembly, so scheduling nondeterminism never
//!   reaches the output — the parallel==sequential differential suite
//!   stays the oracle.
//!
//! Used by evaluation (per-candidate existence checks), union
//! evaluation (per-branch), Algorithm 1's pairwise merges (stealing,
//! cost-sized), and the experiment harness.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Caps a requested worker count at the host's available parallelism.
///
/// Oversubscribing a small host only adds scheduling overhead — outputs
/// are identical at every thread count by construction, so trimming
/// workers is purely a performance guard. A floor of two is kept
/// whenever callers ask for parallelism at all, so the parallel code
/// path (and the determinism suite that exercises it) still runs on
/// single-CPU machines.
pub fn effective_threads(requested: usize) -> usize {
    if requested <= 1 {
        return requested.max(1);
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.min(hw.max(2))
}

/// Maps `f` over `items` on up to `threads` scoped workers, preserving
/// input order in the output. Falls back to a plain sequential map when
/// `threads <= 1` or there are fewer than two items. `f` runs exactly
/// once per item either way.
pub fn map_chunked<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = effective_threads(threads);
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    items
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .map(f)
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        let per_worker: Vec<Vec<U>> = handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect();
        // Inverse of the strided assignment: item i was the
        // (i / workers)-th job of worker (i % workers).
        let mut iters: Vec<_> = per_worker.into_iter().map(Vec::into_iter).collect();
        (0..items.len())
            .map(|i| iters[i % workers].next().expect("stride exhausted early"))
            .collect()
    })
}

/// Maps `f` over `items` on up to `threads` workers with cost-aware
/// work stealing, preserving input order in the output.
///
/// `cost(i)` estimates the work of item `i` (any non-negative scale;
/// only relative magnitudes matter). Items are sorted largest-first and
/// dealt round-robin into per-worker deques — the classic LPT seeding —
/// then idle workers steal from the back of the fullest other deque, so
/// one oversized item can no longer serialize the whole batch the way a
/// fixed stride can. Outputs are written to indexed slots during
/// assembly: **which** worker computes an item never affects **where**
/// its result lands, so results are bit-identical to the sequential map
/// for every thread count.
///
/// Falls back to a plain sequential map when `threads <= 1` or there
/// are fewer than two items. `f` runs exactly once per item either way.
pub fn map_stealing<T, U, F>(
    items: &[T],
    cost: impl Fn(usize) -> u64,
    threads: usize,
    f: F,
) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = effective_threads(threads);
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    // LPT seeding: largest items first, dealt round-robin. Ties keep
    // index order (stable sort) — not that order matters for output.
    let mut by_cost: Vec<usize> = (0..items.len()).collect();
    by_cost.sort_by_key(|&i| std::cmp::Reverse(cost(i)));
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (rank, &i) in by_cost.iter().enumerate() {
        deques[rank % workers]
            .lock()
            .expect("deque poisoned")
            .push_back(i);
    }
    let f = &f;
    let deques = &deques;
    let mut out: Vec<Option<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut done: Vec<(usize, U)> = Vec::new();
                    loop {
                        // Own work first (front = largest remaining seed).
                        let next = deques[w].lock().expect("deque poisoned").pop_front();
                        let i = match next {
                            Some(i) => i,
                            None => {
                                // Steal from the back of the fullest victim.
                                let victim = (0..workers).filter(|&v| v != w).max_by_key(|&v| {
                                    deques[v].lock().expect("deque poisoned").len()
                                });
                                match victim.and_then(|v| {
                                    deques[v].lock().expect("deque poisoned").pop_back()
                                }) {
                                    Some(i) => i,
                                    None => break,
                                }
                            }
                        };
                        done.push((i, f(&items[i])));
                    }
                    done
                })
            })
            .collect();
        let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        for h in handles {
            for (i, u) in h.join().expect("stealing worker panicked") {
                debug_assert!(slots[i].is_none(), "item {i} computed twice");
                slots[i] = Some(u);
            }
        }
        slots
    });
    out.iter_mut()
        .map(|slot| slot.take().expect("every item is computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(map_chunked(&items, threads, |&x| x * x), expect);
        }
    }

    #[test]
    fn effective_threads_keeps_sequential_and_parallel_distinct() {
        assert_eq!(effective_threads(0), 1);
        assert_eq!(effective_threads(1), 1);
        // Any request for parallelism yields at least two workers, so the
        // parallel code path is exercised even on single-CPU hosts…
        assert!(effective_threads(2) >= 2);
        assert!(effective_threads(1024) >= 2);
        // …but never more than asked for.
        assert!(effective_threads(2) <= 2);
        assert!(effective_threads(8) <= 8);
    }

    #[test]
    fn handles_empty_and_single_item() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunked(&empty, 8, |&x| x).is_empty());
        assert_eq!(map_chunked(&[7], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn stealing_preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..53).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            // Skewed costs: one huge item, the rest tiny — the shape
            // that defeats static striding.
            let got = map_stealing(
                &items,
                |i| if i == 7 { 1_000_000 } else { 1 },
                threads,
                |&x| x * 3 + 1,
            );
            assert_eq!(got, expect, "diverged at threads={threads}");
        }
    }

    #[test]
    fn stealing_runs_each_item_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let counters: Vec<AtomicU32> = (0..40).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..40).collect();
        let out = map_stealing(
            &items,
            |i| (i as u64 % 5) + 1,
            8,
            |&i| {
                counters[i].fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out, items);
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stealing_handles_empty_single_and_zero_costs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_stealing(&empty, |_| 1, 8, |&x| x).is_empty());
        assert_eq!(map_stealing(&[9], |_| 0, 8, |&x| x - 1), vec![8]);
        let items = [5u8, 6, 7];
        assert_eq!(map_stealing(&items, |_| 0, 2, |&x| x), vec![5, 6, 7]);
    }
}
