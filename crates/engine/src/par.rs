//! Deterministic data-parallel helpers on `std::thread::scope`.
//!
//! The workspace's parallelism contract: assign items to workers by a
//! fixed rule (worker `w` takes items `w, w+W, w+2W, …`), run each
//! worker on its own scoped thread, and write every output back to its
//! item's position. Any fold whose sequential form is a left-to-right
//! pass over independent items is then bit-identical at every thread
//! count. The strided assignment interleaves cheap and expensive items
//! (which tend to cluster in candidate lists), so workers stay balanced
//! without any dynamic stealing that could perturb output order. Used
//! by evaluation (per-candidate existence checks), union evaluation
//! (per-branch), Algorithm 1's pairwise merges, and the experiment
//! harness.

/// Caps a requested worker count at the host's available parallelism.
///
/// Oversubscribing a small host only adds scheduling overhead — outputs
/// are identical at every thread count by construction, so trimming
/// workers is purely a performance guard. A floor of two is kept
/// whenever callers ask for parallelism at all, so the parallel code
/// path (and the determinism suite that exercises it) still runs on
/// single-CPU machines.
pub fn effective_threads(requested: usize) -> usize {
    if requested <= 1 {
        return requested.max(1);
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.min(hw.max(2))
}

/// Maps `f` over `items` on up to `threads` scoped workers, preserving
/// input order in the output. Falls back to a plain sequential map when
/// `threads <= 1` or there are fewer than two items. `f` runs exactly
/// once per item either way.
pub fn map_chunked<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = effective_threads(threads);
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    items
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .map(f)
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        let per_worker: Vec<Vec<U>> = handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect();
        // Inverse of the strided assignment: item i was the
        // (i / workers)-th job of worker (i % workers).
        let mut iters: Vec<_> = per_worker.into_iter().map(Vec::into_iter).collect();
        (0..items.len())
            .map(|i| iters[i % workers].next().expect("stride exhausted early"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_for_every_thread_count() {
        let items: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(map_chunked(&items, threads, |&x| x * x), expect);
        }
    }

    #[test]
    fn effective_threads_keeps_sequential_and_parallel_distinct() {
        assert_eq!(effective_threads(0), 1);
        assert_eq!(effective_threads(1), 1);
        // Any request for parallelism yields at least two workers, so the
        // parallel code path is exercised even on single-CPU hosts…
        assert!(effective_threads(2) >= 2);
        assert!(effective_threads(1024) >= 2);
        // …but never more than asked for.
        assert!(effective_threads(2) <= 2);
        assert!(effective_threads(8) <= 8);
    }

    #[test]
    fn handles_empty_and_single_item() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunked(&empty, 8, |&x| x).is_empty());
        assert_eq!(map_chunked(&[7], 8, |&x| x + 1), vec![8]);
    }
}
