//! Backtracking enumeration of query matches (Definition 2.2).
//!
//! A *match* of a simple query `Q` into an ontology `O` is a pair of
//! functions — on nodes and on edges — such that constants map to the
//! node holding the same value, edges map to edges with the same
//! predicate and compatible endpoints, and disequality constraints hold.
//! Matches are **homomorphisms**: two query nodes may map to the same
//! ontology node (the paper's Example 2.7 relies on this).
//!
//! [`Matcher`] resolves a query against an ontology once (constants →
//! node ids, predicates → pred ids), orders the pattern edges by
//! estimated scan cost (see [`crate::cost`]; the pre-cost
//! most-constrained-first heuristic remains available as an ablation
//! mode), and then backtracks. It supports four orthogonal refinements
//! used across the system:
//!
//! * **bindings** ([`Matcher::bind`]) — pre-assign query nodes, used to
//!   anchor evaluation at a candidate result and to compute the
//!   provenance of one result (Section V's `bind(Q, res)`);
//! * **restriction** ([`Matcher::restrict`]) — only edges of a given
//!   subgraph may be used, which turns the ontology matcher into an
//!   explanation matcher;
//! * **onto tracking** ([`Matcher::onto`]) — require the image to cover
//!   the restriction subgraph entirely, yielding the *onto* homomorphisms
//!   that define consistency (Def. 2.6);
//! * **OPTIONAL edges** (the paper's future-work operator) — required
//!   edges are matched first and determine the result; each optional
//!   edge then extends the match in every possible way, and is skipped
//!   when it cannot match (in onto mode a skip branch is always
//!   explored, since covering one part of an explanation can require
//!   *not* extending into another). [`Matcher::skip_optionals`] turns
//!   the extension phase off for result-only evaluation, where it is
//!   semantically irrelevant.
//!
//! Two performance layers sit on top of the plain backtracking search:
//!
//! * **predicate-signature pruning** — before a query node is bound to
//!   an ontology node, the required incident predicates of the query
//!   node (a 64-bit mask) are tested against the node's precomputed
//!   [`Ontology::out_signature`] / [`Ontology::in_signature`]. A failed
//!   subset test proves no match can extend the binding, cutting the
//!   branch in one AND/compare;
//! * **sharded parallel search** ([`Matcher::parallel`]) — the candidate
//!   pool of the first (most-constrained) required edge is materialized
//!   and split into contiguous chunks, one `std::thread::scope` worker
//!   per chunk, each running the identical sequential search over its
//!   chunk. Concatenating per-chunk outputs in chunk order reproduces
//!   the sequential enumeration order exactly, so parallel results are
//!   bit-identical to sequential ones — a workspace-wide invariant that
//!   the determinism test suite enforces.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, Ordering};

use questpro_graph::{EdgeId, NodeId, Ontology, PredId, Subgraph};
use questpro_query::{QueryNodeId, SimpleQuery};

use crate::metrics;

/// A match: images of the matched query nodes and edges.
///
/// Required edges and their endpoints are always matched; OPTIONAL edges
/// (and nodes appearing only on skipped optional edges) may be `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Match {
    /// Image of each query node, indexed by query node id; `None` for
    /// nodes bound only by skipped optional edges.
    pub nodes: Vec<Option<NodeId>>,
    /// Image of each query edge, indexed by query edge position; `None`
    /// for skipped optional edges.
    pub edges: Vec<Option<EdgeId>>,
}

impl Match {
    /// The ontology node a query node is mapped to, if it was bound.
    pub fn node_image(&self, n: QueryNodeId) -> Option<NodeId> {
        self.nodes[n.index()]
    }

    /// The result this match yields: the image of the projected node
    /// (always bound — a query's projected node is never optional-only).
    pub fn result(&self, q: &SimpleQuery) -> NodeId {
        self.nodes[q.projected().index()].expect("projected node is always bound")
    }

    /// The provenance graph of this match: the image `μ(Q')` of the
    /// matched sub-query (Def. 2.4), including images of isolated query
    /// nodes.
    pub fn image(&self, ont: &Ontology) -> Subgraph {
        Subgraph::from_parts(
            ont,
            self.edges.iter().flatten().copied(),
            self.nodes.iter().flatten().copied(),
        )
    }
}

/// Configurable backtracking matcher for one (query, ontology) pair.
///
/// ```
/// use questpro_engine::Matcher;
/// use questpro_graph::Ontology;
/// use questpro_query::SimpleQuery;
///
/// let mut b = Ontology::builder();
/// b.edge("paper1", "wb", "Alice")?;
/// b.edge("paper1", "wb", "Bob")?;
/// let ont = b.build();
///
/// let mut qb = SimpleQuery::builder();
/// let a = qb.var("a");
/// let p = qb.var("p");
/// qb.edge(p, "wb", a).project(a);
/// let q = qb.build().unwrap();
///
/// // Two homomorphisms: one per wb edge.
/// assert_eq!(Matcher::new(&ont, &q).count(), 2);
/// // Anchored at Alice there is exactly one.
/// let alice = ont.node_by_value("Alice").unwrap();
/// let m = Matcher::new(&ont, &q).bind(q.projected(), alice).first().unwrap();
/// assert_eq!(m.result(&q), alice);
/// # Ok::<(), questpro_graph::GraphError>(())
/// ```
pub struct Matcher<'a> {
    ont: &'a Ontology,
    q: &'a SimpleQuery,
    /// `Some(v)` for constant query nodes resolved to an ontology node.
    const_assign: Vec<Option<NodeId>>,
    /// Resolved predicate of each query edge.
    preds: Vec<PredId>,
    /// False when a constant or a *required* predicate does not exist in
    /// the ontology (the query then has no matches at all).
    resolvable: bool,
    /// Indexes of required edges.
    required: Vec<usize>,
    /// Indexes of optional edges with a resolvable predicate.
    optionals: Vec<usize>,
    /// Whether the optional extension phase runs.
    include_optionals: bool,
    /// Nodes with no incident edges at all (enumerated at the end).
    enumerable: Vec<bool>,
    /// Nodes that are always part of a match: endpoints of required
    /// edges plus edge-free nodes. Nodes outside this set enter a match
    /// only when one of their optional edges is matched.
    required_scope: Vec<bool>,
    /// Caller-provided bindings applied before the search.
    pre_bound: Vec<(usize, NodeId)>,
    /// Only edges/nodes of this subgraph may be used as images.
    restrict: Option<&'a Subgraph>,
    /// Require the image to cover the restriction subgraph (onto).
    onto: bool,
    /// Use plain declaration order instead of most-constrained-first
    /// (ablation knob; see `sequential_order`).
    sequential: bool,
    /// Disequality partners per query node.
    diseq_partners: Vec<Vec<usize>>,
    /// Per-query-node masks of predicates on *required* incident edges,
    /// for 1-hop signature pruning against the ontology's signatures.
    req_out_mask: Vec<u64>,
    req_in_mask: Vec<u64>,
    /// Worker count for the sharded drivers (`collect`, `count`,
    /// `exists`, image enumeration); 1 = fully sequential.
    threads: usize,
}

/// One materialized top-level candidate: target edge plus the node
/// bindings it would introduce (at most two).
type TopCandidate = (EdgeId, [(usize, NodeId); 2], usize);

impl<'a> Matcher<'a> {
    /// Resolves `q` against `ont` and prepares a matcher.
    pub fn new(ont: &'a Ontology, q: &'a SimpleQuery) -> Self {
        let mut resolvable = true;
        let mut const_assign = vec![None; q.node_count()];
        for n in q.node_ids() {
            if let Some(value) = q.label(n).as_const() {
                match ont.node_by_value(value) {
                    Some(v) => const_assign[n.index()] = Some(v),
                    None => resolvable = false,
                }
            }
        }
        let mut preds = Vec::with_capacity(q.edge_count());
        let mut required = Vec::new();
        let mut optionals = Vec::new();
        for (i, e) in q.edges().iter().enumerate() {
            match ont.pred_by_name(&e.pred) {
                Some(p) => {
                    preds.push(p);
                    if e.optional {
                        optionals.push(i);
                    } else {
                        required.push(i);
                    }
                }
                None => {
                    preds.push(PredId::new(0));
                    if e.optional {
                        // An unresolvable optional edge simply never
                        // matches; drop it from the extension phase.
                    } else {
                        resolvable = false;
                        required.push(i);
                    }
                }
            }
        }
        let mut enumerable = vec![true; q.node_count()];
        let mut required_scope = vec![false; q.node_count()];
        for e in q.edges() {
            enumerable[e.src.index()] = false;
            enumerable[e.dst.index()] = false;
            if !e.optional {
                required_scope[e.src.index()] = true;
                required_scope[e.dst.index()] = true;
            }
        }
        for (i, e) in enumerable.iter().enumerate() {
            if *e {
                required_scope[i] = true;
            }
        }
        let mut diseq_partners = vec![Vec::new(); q.node_count()];
        for &(a, b) in q.diseqs() {
            diseq_partners[a.index()].push(b.index());
            diseq_partners[b.index()].push(a.index());
        }
        let mut req_out_mask = vec![0u64; q.node_count()];
        let mut req_in_mask = vec![0u64; q.node_count()];
        for (i, e) in q.edges().iter().enumerate() {
            if !e.optional && ont.pred_by_name(&e.pred).is_some() {
                let bit = ont.pred_bit(preds[i]);
                req_out_mask[e.src.index()] |= bit;
                req_in_mask[e.dst.index()] |= bit;
            }
        }
        Self {
            ont,
            q,
            const_assign,
            preds,
            resolvable,
            required,
            optionals,
            include_optionals: true,
            enumerable,
            required_scope,
            pre_bound: Vec::new(),
            restrict: None,
            onto: false,
            sequential: false,
            diseq_partners,
            req_out_mask,
            req_in_mask,
            threads: 1,
        }
    }

    /// Pre-binds query node `n` to ontology node `v`.
    pub fn bind(mut self, n: QueryNodeId, v: NodeId) -> Self {
        self.pre_bound.push((n.index(), v));
        self
    }

    /// Restricts images to the edges and nodes of `sub`.
    pub fn restrict(mut self, sub: &'a Subgraph) -> Self {
        self.restrict = Some(sub);
        self
    }

    /// Restricts to `sub` *and* requires the match image to cover every
    /// edge and node of `sub` (an onto homomorphism).
    pub fn onto(mut self, sub: &'a Subgraph) -> Self {
        self.restrict = Some(sub);
        self.onto = true;
        self
    }

    /// Disables the OPTIONAL extension phase. Result sets are unchanged
    /// (results are determined by the required part); only provenance
    /// and onto checks need the extension.
    pub fn skip_optionals(mut self) -> Self {
        self.include_optionals = false;
        self
    }

    /// Matches required edges in declaration order instead of
    /// most-constrained-first. Results are identical; only the search
    /// cost changes — this exists so the ordering heuristic can be
    /// measured (bench `matching/ordering`).
    pub fn sequential_order(mut self) -> Self {
        self.sequential = true;
        self
    }

    /// Shards the search across up to `threads` scoped workers by the
    /// candidate pool of the first (most-constrained) required edge.
    ///
    /// Affects [`Matcher::collect`], [`Matcher::count`],
    /// [`Matcher::exists`], and the image enumeration used by
    /// provenance; `for_each` and `first` always run sequentially.
    /// Outputs are **bit-identical** to the sequential search: chunks
    /// are contiguous slices of the candidate pool, merged in order.
    pub fn parallel(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enumerates matches, invoking `f` on each; stop early by returning
    /// [`ControlFlow::Break`]. Always sequential (see
    /// [`Matcher::parallel`] for the sharded drivers).
    pub fn for_each(&self, mut f: impl FnMut(&Match) -> ControlFlow<()>) {
        let Some((order, mut state)) = self.prepare() else {
            return;
        };
        let _ = self.recurse(&order, 0, &mut state, &mut f);
        metrics::flush_search(state.expanded, state.matched);
    }

    /// The first match, if any (sequential enumeration order).
    pub fn first(&self) -> Option<Match> {
        let mut found = None;
        self.for_each(|m| {
            found = Some(m.clone());
            ControlFlow::Break(())
        });
        found
    }

    /// Whether any match exists. With [`Matcher::parallel`], shards
    /// race with a shared early-stop flag — the boolean outcome is
    /// identical either way.
    pub fn exists(&self) -> bool {
        if self.threads > 1 {
            let stop = AtomicBool::new(false);
            if let Some(found) = self.map_chunks(|chunk, order, proto| {
                let mut any = false;
                self.run_chunk(chunk, order, proto, Some(&stop), |_| {
                    any = true;
                    stop.store(true, Ordering::Relaxed);
                    ControlFlow::Break(())
                });
                any
            }) {
                return found.iter().any(|&b| b);
            }
        }
        self.first().is_some()
    }

    /// Counts all matches (use with care on large ontologies).
    pub fn count(&self) -> u64 {
        if self.threads > 1 {
            if let Some(counts) = self.map_chunks(|chunk, order, proto| {
                let mut n = 0u64;
                self.run_chunk(chunk, order, proto, None, |_| {
                    n += 1;
                    ControlFlow::Continue(())
                });
                n
            }) {
                return counts.iter().sum();
            }
        }
        let mut n = 0;
        self.for_each(|_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    }

    /// All matches, in deterministic sequential enumeration order
    /// (parallel sharding merges chunk outputs in chunk order, so the
    /// result is identical for every thread count).
    pub fn collect(&self) -> Vec<Match> {
        if self.threads > 1 {
            if let Some(per_chunk) = self.map_chunks(|chunk, order, proto| {
                let mut out = Vec::new();
                self.run_chunk(chunk, order, proto, None, |m| {
                    out.push(m.clone());
                    ControlFlow::Continue(())
                });
                out
            }) {
                return per_chunk.concat();
            }
        }
        let mut out = Vec::new();
        self.for_each(|m| {
            out.push(m.clone());
            ControlFlow::Continue(())
        });
        out
    }

    /// Distinct match images (Def. 2.4) in first-encountered order,
    /// stopping after `limit` when given. Equals the sequential
    /// "enumerate matches, dedupe images, stop at limit" fold for every
    /// thread count: each shard keeps at most `limit` distinct images
    /// (a global prefix can draw at most that many from one shard) and
    /// the merge walks shards in chunk order.
    pub fn images(&self, limit: Option<usize>) -> Vec<Subgraph> {
        if limit == Some(0) {
            return Vec::new();
        }
        let fold = |shard_limit: Option<usize>| {
            move |chunk: &[TopCandidate], order: &[usize], proto: &State| {
                let mut seen = std::collections::BTreeSet::new();
                let mut ordered = Vec::new();
                self.run_chunk(chunk, order, proto, None, |m| {
                    let img = m.image(self.ont);
                    if seen.insert(img.clone()) {
                        ordered.push(img);
                        if shard_limit.is_some_and(|l| ordered.len() >= l) {
                            return ControlFlow::Break(());
                        }
                    }
                    ControlFlow::Continue(())
                });
                ordered
            }
        };
        let per_chunk = if self.threads > 1 {
            self.map_chunks(fold(limit))
        } else {
            None
        };
        let chunks = match per_chunk {
            Some(chunks) => chunks,
            None => {
                // Sequential fallback: one "chunk" spanning everything.
                let mut seen = std::collections::BTreeSet::new();
                let mut ordered = Vec::new();
                self.for_each(|m| {
                    let img = m.image(self.ont);
                    if seen.insert(img.clone()) {
                        ordered.push(img);
                        if limit.is_some_and(|l| ordered.len() >= l) {
                            return ControlFlow::Break(());
                        }
                    }
                    ControlFlow::Continue(())
                });
                return ordered;
            }
        };
        let mut seen = std::collections::BTreeSet::new();
        let mut ordered = Vec::new();
        'merge: for chunk in chunks {
            for img in chunk {
                if seen.insert(img.clone()) {
                    ordered.push(img);
                    if limit.is_some_and(|l| ordered.len() >= l) {
                        break 'merge;
                    }
                }
            }
        }
        ordered
    }

    // -- internals ----------------------------------------------------

    /// Resolves pre-bindings and constants, checks initial constraints,
    /// and computes the edge order. `None` means the query provably has
    /// no matches (or violates a pre-binding).
    fn prepare(&self) -> Option<(Vec<usize>, State)> {
        if !self.resolvable {
            return None;
        }
        // If onto is requested, a homomorphism can cover at most one
        // restriction edge per query edge.
        if self.onto {
            let sub = self.restrict.expect("onto implies restrict");
            if self.q.edge_count() < sub.edge_count() {
                return None;
            }
        }
        let mut node_assign: Vec<Option<NodeId>> = self.const_assign.clone();
        // Constants in required scope must lie inside the restriction;
        // a constant reachable only through optional edges merely makes
        // those optional edges unmatchable here.
        if let Some(sub) = self.restrict {
            for (n, v) in node_assign.iter().enumerate() {
                if let Some(v) = v {
                    if self.required_scope[n] && !sub.contains_node(*v) {
                        return None;
                    }
                }
            }
        }
        for &(n, v) in &self.pre_bound {
            match node_assign[n] {
                Some(existing) if existing != v => return None,
                _ => {}
            }
            if let Some(sub) = self.restrict {
                if !sub.contains_node(v) {
                    return None;
                }
            }
            node_assign[n] = Some(v);
        }
        for (n, v) in node_assign.iter().enumerate() {
            if let Some(v) = v {
                if !self.diseqs_ok(&node_assign, n) || !self.sig_ok(n, *v) {
                    return None;
                }
            }
        }
        let order = self.edge_order(&node_assign);
        let state = State {
            node_assign,
            edge_assign: vec![None; self.q.edge_count()],
            cover: CoverTracker::new(self.restrict.filter(|_| self.onto)),
            expanded: 0,
            matched: 0,
        };
        Some((order, state))
    }

    /// 1-hop signature test: can ontology node `v` support every
    /// required incident edge of query node `n`? Sound (never prunes a
    /// real match), not complete.
    #[inline]
    fn sig_ok(&self, n: usize, v: NodeId) -> bool {
        self.req_out_mask[n] & !self.ont.out_signature(v) == 0
            && self.req_in_mask[n] & !self.ont.in_signature(v) == 0
    }

    /// Materializes the candidate pool of the top-level edge `ei`
    /// (structural filters only; conflict/diseq/signature checks run in
    /// `try_bind` per shard).
    fn top_candidates(&self, ei: usize, state: &State) -> Vec<TopCandidate> {
        let qe = &self.q.edges()[ei];
        let (s, d) = (qe.src.index(), qe.dst.index());
        let p = self.preds[ei];
        let nil = (usize::MAX, NodeId::new(0));
        let mut out = Vec::new();
        match (state.node_assign[s], state.node_assign[d]) {
            (Some(ms), Some(md)) => {
                if let Some(te) = self.ont.find_edge(ms, p, md) {
                    if self.edge_allowed(te) {
                        out.push((te, [nil, nil], 0));
                    }
                }
            }
            (Some(ms), None) => {
                for &te in self.ont.out_edges_with_pred(ms, p) {
                    if self.edge_allowed(te) {
                        out.push((te, [(d, self.ont.edge(te).dst), nil], 1));
                    }
                }
            }
            (None, Some(md)) => {
                for &te in self.ont.in_edges_with_pred(md, p) {
                    if self.edge_allowed(te) {
                        out.push((te, [(s, self.ont.edge(te).src), nil], 1));
                    }
                }
            }
            (None, None) => {
                for &te in self.ont.edges_with_pred(p) {
                    if !self.edge_allowed(te) {
                        continue;
                    }
                    let ted = self.ont.edge(te);
                    if s == d {
                        if ted.src == ted.dst {
                            out.push((te, [(s, ted.src), nil], 1));
                        }
                    } else {
                        out.push((te, [(s, ted.src), (d, ted.dst)], 2));
                    }
                }
            }
        }
        out
    }

    /// Runs `worker` over contiguous chunks of the top-level candidate
    /// pool on `std::thread::scope` workers, returning per-chunk outputs
    /// in chunk order. `None` when the search is not shardable (no
    /// required edges, a tiny pool, or an impossible query — callers
    /// fall back to the sequential driver).
    fn map_chunks<T: Send>(
        &self,
        worker: impl Fn(&[TopCandidate], &[usize], &State) -> T + Sync,
    ) -> Option<Vec<T>> {
        let (order, proto) = self.prepare()?;
        if order.is_empty() {
            return None;
        }
        let cands = self.top_candidates(order[0], &proto);
        let threads = crate::par::effective_threads(self.threads);
        if cands.len() < 2 || threads < 2 {
            return None;
        }
        let workers = threads.min(cands.len());
        let chunk_len = cands.len().div_ceil(workers);
        let order = &order;
        let proto = &proto;
        let worker = &worker;
        Some(std::thread::scope(|s| {
            let handles: Vec<_> = cands
                .chunks(chunk_len)
                .map(|chunk| s.spawn(move || worker(chunk, order, proto)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("matcher shard panicked"))
                .collect()
        }))
    }

    /// Sequentially searches one candidate chunk: binds each top-level
    /// candidate and recurses over the remaining edge order, exactly as
    /// the unsharded search would for that slice of the pool.
    fn run_chunk(
        &self,
        chunk: &[TopCandidate],
        order: &[usize],
        proto: &State,
        stop: Option<&AtomicBool>,
        mut on_match: impl FnMut(&Match) -> ControlFlow<()>,
    ) {
        let mut state = proto.clone();
        'outer: for &(te, binds, blen) in chunk {
            if let Some(stop) = stop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            let r = self.try_bind(
                &mut state,
                &mut |st| self.recurse(order, 1, st, &mut on_match),
                order[0],
                te,
                &binds[..blen],
            );
            if r.is_break() {
                break 'outer;
            }
        }
        metrics::flush_search(state.expanded, state.matched);
    }

    /// Static order over the *required* edges.
    ///
    /// Default ([`OrderingMode::CostBased`]): greedily pick the edge
    /// with the smallest estimated candidate scan under the current
    /// binding state, using the Volcano-style estimator over columnar
    /// predicate statistics (`crate::cost`). Ties break toward more
    /// bound endpoints, then lowest edge index, so the order is fully
    /// deterministic.
    ///
    /// [`OrderingMode::Classic`] restores the pre-cost heuristic
    /// (most bound endpoints, then smallest raw predicate pool) for
    /// ablation. Either way the *match set* is identical — ordering
    /// only moves search effort.
    fn edge_order(&self, initial: &[Option<NodeId>]) -> Vec<usize> {
        if self.sequential {
            return self.required.clone();
        }
        let classic = crate::cost::ordering_mode() == crate::cost::OrderingMode::Classic;
        let mut bound: Vec<bool> = initial.iter().map(Option::is_some).collect();
        let mut remaining: Vec<usize> = self.required.clone();
        let mut order = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let pos = if classic {
                remaining
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &ei)| {
                        let e = &self.q.edges()[ei];
                        let b = bound[e.src.index()] as usize + bound[e.dst.index()] as usize;
                        let pool = self.pool_size(self.preds[ei]);
                        // Higher is better: more bound endpoints, smaller pool.
                        (b, usize::MAX - pool)
                    })
                    .map(|(pos, _)| pos)
                    .expect("remaining is non-empty")
            } else {
                remaining
                    .iter()
                    .enumerate()
                    .min_by(|(_, &ea), (_, &eb)| {
                        let key = |ei: usize| {
                            let e = &self.q.edges()[ei];
                            let sb = bound[e.src.index()];
                            let db = bound[e.dst.index()];
                            let mut est = crate::cost::edge_cost(self.ont, self.preds[ei], sb, db);
                            // A restriction caps every scan at its edge count.
                            if let Some(sub) = self.restrict {
                                est = est.min(sub.edge_count() as f64);
                            }
                            // Lower is better: cheaper scan, more bound
                            // endpoints, then declaration order.
                            (est, 2 - (sb as usize + db as usize), ei)
                        };
                        let (ca, ba, ia) = key(ea);
                        let (cb, bb, ib) = key(eb);
                        ca.total_cmp(&cb).then(ba.cmp(&bb)).then(ia.cmp(&ib))
                    })
                    .map(|(pos, _)| pos)
                    .expect("remaining is non-empty")
            };
            let best = remaining[pos];
            order.push(best);
            let e = &self.q.edges()[best];
            bound[e.src.index()] = true;
            bound[e.dst.index()] = true;
            remaining.swap_remove(pos);
        }
        order
    }

    fn pool_size(&self, p: PredId) -> usize {
        match self.restrict {
            Some(sub) => sub.edge_count(),
            None => self.ont.edges_with_pred(p).len(),
        }
    }

    fn edge_allowed(&self, e: EdgeId) -> bool {
        match self.restrict {
            Some(sub) => sub.contains_edge(e),
            None => true,
        }
    }

    fn diseqs_ok(&self, node_assign: &[Option<NodeId>], n: usize) -> bool {
        let v = node_assign[n].expect("checked after assignment");
        self.diseq_partners[n]
            .iter()
            .all(|&m| node_assign[m] != Some(v))
    }

    /// Candidate target edges for query edge `ei` under the current
    /// assignment, passed to `try_edge` one by one; returns `true` if at
    /// least one candidate was structurally applicable.
    fn recurse(
        &self,
        order: &[usize],
        depth: usize,
        state: &mut State,
        f: &mut impl FnMut(&Match) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if depth == order.len() {
            return self.finish_isolated(0, state, f);
        }
        // Onto pruning: every remaining query edge (required or optional)
        // can cover at most one still-uncovered restriction edge.
        if let Some(uncovered) = state.cover.uncovered() {
            let budget = (order.len() - depth)
                + if self.include_optionals {
                    self.optionals.len()
                } else {
                    0
                };
            if uncovered > budget {
                return ControlFlow::Continue(());
            }
        }
        let ei = order[depth];
        self.match_edge(ei, state, &mut |s| self.recurse(order, depth + 1, s, f))
    }

    /// Tries every image of edge `ei` consistent with the current
    /// assignment, invoking `k` for each; does not include a skip branch.
    fn match_edge(
        &self,
        ei: usize,
        state: &mut State,
        k: &mut impl FnMut(&mut State) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let qe = &self.q.edges()[ei];
        let (s, d) = (qe.src.index(), qe.dst.index());
        let p = self.preds[ei];
        match (state.node_assign[s], state.node_assign[d]) {
            (Some(ms), Some(md)) => {
                if let Some(te) = self.ont.find_edge(ms, p, md) {
                    if self.edge_allowed(te) {
                        state.push_edge(ei, te);
                        let r = k(state);
                        state.pop_edge(ei, te);
                        r?;
                    }
                }
            }
            (Some(ms), None) => {
                // Columnar span: exactly the `p`-labeled out edges, in
                // the order the old filter scan produced them.
                for &te in self.ont.out_edges_with_pred(ms, p) {
                    if !self.edge_allowed(te) {
                        continue;
                    }
                    let dst = self.ont.edge(te).dst;
                    self.try_bind(state, k, ei, te, &[(d, dst)])?;
                }
            }
            (None, Some(md)) => {
                for &te in self.ont.in_edges_with_pred(md, p) {
                    if !self.edge_allowed(te) {
                        continue;
                    }
                    let src = self.ont.edge(te).src;
                    self.try_bind(state, k, ei, te, &[(s, src)])?;
                }
            }
            (None, None) => {
                let pool: &[EdgeId] = self.ont.edges_with_pred(p);
                for &te in pool {
                    if !self.edge_allowed(te) {
                        continue;
                    }
                    let ted = self.ont.edge(te);
                    if s == d {
                        if ted.src != ted.dst {
                            continue;
                        }
                        self.try_bind(state, k, ei, te, &[(s, ted.src)])?;
                    } else {
                        self.try_bind(state, k, ei, te, &[(s, ted.src), (d, ted.dst)])?;
                    }
                }
            }
        }
        ControlFlow::Continue(())
    }

    fn try_bind(
        &self,
        state: &mut State,
        k: &mut impl FnMut(&mut State) -> ControlFlow<()>,
        ei: usize,
        te: EdgeId,
        binds: &[(usize, NodeId)],
    ) -> ControlFlow<()> {
        // At most two nodes bind per edge; keep the undo list on the
        // stack (this runs in the innermost search loop).
        state.expanded += 1;
        let mut bound_here = [usize::MAX; 2];
        let mut bound_len = 0usize;
        let mut ok = true;
        for &(n, v) in binds {
            match state.node_assign[n] {
                Some(existing) => {
                    if existing != v {
                        ok = false;
                        break;
                    }
                }
                None => {
                    if !self.sig_ok(n, v) {
                        ok = false;
                        break;
                    }
                    state.node_assign[n] = Some(v);
                    bound_here[bound_len] = n;
                    bound_len += 1;
                    if !self.diseqs_ok(&state.node_assign, n) {
                        ok = false;
                        break;
                    }
                }
            }
        }
        let undo = |state: &mut State| {
            for &n in &bound_here[..bound_len] {
                state.node_assign[n] = None;
            }
        };
        if ok {
            state.push_edge(ei, te);
            let r = k(state);
            state.pop_edge(ei, te);
            undo(state);
            r?;
        } else {
            undo(state);
        }
        ControlFlow::Continue(())
    }

    /// Assigns edge-free variable nodes, then runs the optional phase.
    fn finish_isolated(
        &self,
        from: usize,
        state: &mut State,
        f: &mut impl FnMut(&Match) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let next = (from..self.q.node_count())
            .find(|&n| self.enumerable[n] && state.node_assign[n].is_none());
        let Some(n) = next else {
            return self.extend_optionals(0, state, f);
        };
        match self.restrict {
            Some(sub) => {
                for i in 0..sub.nodes().len() {
                    let v = sub.nodes()[i];
                    self.bind_isolated_and_continue(n, v, state, f)?;
                }
            }
            None => {
                for v in self.ont.node_ids() {
                    self.bind_isolated_and_continue(n, v, state, f)?;
                }
            }
        }
        ControlFlow::Continue(())
    }

    fn bind_isolated_and_continue(
        &self,
        n: usize,
        v: NodeId,
        state: &mut State,
        f: &mut impl FnMut(&Match) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        state.expanded += 1;
        state.node_assign[n] = Some(v);
        let r = if self.diseqs_ok(&state.node_assign, n) {
            self.finish_isolated(n + 1, state, f)
        } else {
            ControlFlow::Continue(())
        };
        state.node_assign[n] = None;
        r
    }

    /// The OPTIONAL extension phase: each optional edge is matched in
    /// every possible way; when nothing matches it is skipped. In onto
    /// mode a skip branch is explored even when matches exist.
    fn extend_optionals(
        &self,
        oi: usize,
        state: &mut State,
        f: &mut impl FnMut(&Match) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        if !self.include_optionals || oi >= self.optionals.len() {
            return self.emit(state, f);
        }
        let ei = self.optionals[oi];
        let mut matched_any = false;
        self.match_edge(ei, state, &mut |s| {
            matched_any = true;
            self.extend_optionals(oi + 1, s, f)
        })?;
        if !matched_any || self.onto {
            // Skip branch: the optional edge stays unmatched.
            self.extend_optionals(oi + 1, state, f)?;
        }
        ControlFlow::Continue(())
    }

    fn emit(
        &self,
        state: &mut State,
        f: &mut impl FnMut(&Match) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // A node is in the match exactly when it is in required scope or
        // one of its optional edges was matched; constants pre-assigned
        // for skipped optional edges are dropped from the image.
        let mut in_scope = self.required_scope.clone();
        for (ei, te) in state.edge_assign.iter().enumerate() {
            if te.is_some() {
                let e = &self.q.edges()[ei];
                in_scope[e.src.index()] = true;
                in_scope[e.dst.index()] = true;
            }
        }
        let scoped_nodes: Vec<Option<NodeId>> = state
            .node_assign
            .iter()
            .enumerate()
            .map(|(n, v)| if in_scope[n] { *v } else { None })
            .collect();
        if self.onto {
            let sub = self.restrict.expect("onto implies restrict");
            if state.cover.uncovered() != Some(0) {
                return ControlFlow::Continue(());
            }
            // Every restriction node must be some in-scope node image.
            for &n in sub.nodes() {
                let covered = scoped_nodes.contains(&Some(n));
                if !covered {
                    return ControlFlow::Continue(());
                }
            }
        }
        let m = Match {
            nodes: scoped_nodes,
            edges: state.edge_assign.clone(),
        };
        debug_assert!(
            self.required.iter().all(|&ei| m.edges[ei].is_some()),
            "required edges are always matched at emit"
        );
        state.matched += 1;
        f(&m)
    }
}

#[derive(Clone)]
struct State {
    node_assign: Vec<Option<NodeId>>,
    edge_assign: Vec<Option<EdgeId>>,
    cover: CoverTracker,
    /// Search-tree nodes expanded (candidate bindings tried); flushed
    /// into [`metrics`] when the search (or shard) finishes.
    expanded: u64,
    /// Matches emitted; flushed alongside `expanded`.
    matched: u64,
}

impl State {
    fn push_edge(&mut self, ei: usize, te: EdgeId) {
        self.edge_assign[ei] = Some(te);
        self.cover.add(te);
    }

    fn pop_edge(&mut self, ei: usize, te: EdgeId) {
        self.edge_assign[ei] = None;
        self.cover.remove(te);
    }
}

/// Tracks how many times each restriction edge is covered, for onto
/// pruning. Inactive (all no-ops) when onto mode is off.
#[derive(Clone)]
struct CoverTracker {
    /// Sorted restriction edges (binary-searchable), empty when inactive.
    edges: Vec<EdgeId>,
    counts: Vec<u32>,
    covered: usize,
    active: bool,
}

impl CoverTracker {
    fn new(sub: Option<&Subgraph>) -> Self {
        match sub {
            Some(s) => Self {
                edges: s.edges().to_vec(),
                counts: vec![0; s.edge_count()],
                covered: 0,
                active: true,
            },
            None => Self {
                edges: Vec::new(),
                counts: Vec::new(),
                covered: 0,
                active: false,
            },
        }
    }

    fn uncovered(&self) -> Option<usize> {
        self.active.then(|| self.edges.len() - self.covered)
    }

    fn add(&mut self, e: EdgeId) {
        if !self.active {
            return;
        }
        if let Ok(i) = self.edges.binary_search(&e) {
            if self.counts[i] == 0 {
                self.covered += 1;
            }
            self.counts[i] += 1;
        }
    }

    fn remove(&mut self, e: EdgeId) {
        if !self.active {
            return;
        }
        if let Ok(i) = self.edges.binary_search(&e) {
            self.counts[i] -= 1;
            if self.counts[i] == 0 {
                self.covered -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_query::fixtures::erdos_q1;

    /// The running-example ontology of Figure 1a plus enough structure
    /// for interesting matches: Alice—Bob—Carol—Erdős chains.
    fn erdos_ontology() -> Ontology {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Carol"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        b.build()
    }

    #[test]
    fn q1_matches_the_erdos_chain() {
        let o = erdos_ontology();
        let q = erdos_q1();
        let m = Matcher::new(&o, &q).first().expect("Q1 matches");
        let alice = o.node_by_value("Alice").unwrap();
        let mut saw_alice = false;
        Matcher::new(&o, &q).for_each(|m| {
            if m.result(&q) == alice {
                saw_alice = true;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        assert!(saw_alice);
        assert_eq!(m.nodes.len(), q.node_count());
        assert_eq!(m.edges.len(), q.edge_count());
        assert!(m.nodes.iter().all(Option::is_some));
        assert!(m.edges.iter().all(Option::is_some));
    }

    #[test]
    fn homomorphisms_may_fold_nodes() {
        let mut b = SimpleQuery::builder();
        let a1 = b.var("a1");
        let p1 = b.var("p1");
        let p2 = b.var("p2");
        b.edge(p1, "wb", a1).edge(p2, "wb", a1).project(a1);
        let q = b.build().unwrap();
        let mut o = Ontology::builder();
        o.edge("paperX", "wb", "Zoe").unwrap();
        let o = o.build();
        let m = Matcher::new(&o, &q).first().expect("folding match exists");
        assert_eq!(m.nodes[p1.index()], m.nodes[p2.index()]);
    }

    #[test]
    fn constants_anchor_the_search() {
        let o = erdos_ontology();
        let mut b = SimpleQuery::builder();
        let a = b.var("a");
        let p = b.var("p");
        let erdos = b.constant("Erdos");
        b.edge(p, "wb", a).edge(p, "wb", erdos).project(a);
        let q = b.build().unwrap();
        let mut results = Vec::new();
        Matcher::new(&o, &q).for_each(|m| {
            results.push(m.result(&q));
            ControlFlow::Continue(())
        });
        let mut names: Vec<_> = results.iter().map(|&n| o.value_str(n)).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names, vec!["Carol", "Erdos"]);
    }

    #[test]
    fn missing_constant_or_predicate_yields_no_matches() {
        let o = erdos_ontology();
        let mut b = SimpleQuery::builder();
        let a = b.var("a");
        let ghost = b.constant("Ghost");
        b.edge(ghost, "wb", a).project(a);
        let q = b.build().unwrap();
        assert!(!Matcher::new(&o, &q).exists());

        let mut b = SimpleQuery::builder();
        let a = b.var("a");
        let x = b.var("x");
        b.edge(x, "unknown_pred", a).project(a);
        let q = b.build().unwrap();
        assert!(!Matcher::new(&o, &q).exists());
    }

    #[test]
    fn diseq_rules_out_equal_assignments() {
        let mut ob = Ontology::builder();
        ob.edge("paper1", "wb", "Alice").unwrap();
        let o = ob.build();
        let mut b = SimpleQuery::builder();
        let a1 = b.var("a1");
        let a2 = b.var("a2");
        let p = b.var("p");
        b.edge(p, "wb", a1).edge(p, "wb", a2).project(a1);
        let without = b.build().unwrap();
        assert!(Matcher::new(&o, &without).exists());
        let a1n = without.node_of_var("a1").unwrap();
        let a2n = without.node_of_var("a2").unwrap();
        let with = without.with_diseqs([(a1n, a2n)]).unwrap();
        assert!(!Matcher::new(&o, &with).exists());
    }

    #[test]
    fn bindings_filter_results() {
        let o = erdos_ontology();
        let q = erdos_q1();
        let alice = o.node_by_value("Alice").unwrap();
        let anchored = Matcher::new(&o, &q).bind(q.projected(), alice);
        assert!(anchored.exists());
        let paper1 = o.node_by_value("paper1").unwrap();
        assert!(!Matcher::new(&o, &q).bind(q.projected(), paper1).exists());
    }

    #[test]
    fn conflicting_bindings_yield_nothing() {
        let o = erdos_ontology();
        let q = erdos_q1();
        let alice = o.node_by_value("Alice").unwrap();
        let bob = o.node_by_value("Bob").unwrap();
        let m = Matcher::new(&o, &q)
            .bind(q.projected(), alice)
            .bind(q.projected(), bob);
        assert!(!m.exists());
    }

    #[test]
    fn restriction_limits_images() {
        let o = erdos_ontology();
        let mut b = SimpleQuery::builder();
        let a = b.var("a");
        let p = b.var("p");
        b.edge(p, "wb", a).project(a);
        let q = b.build().unwrap();
        let alice = o.node_by_value("Alice").unwrap();
        let paper1 = o.node_by_value("paper1").unwrap();
        let wb = o.pred_by_name("wb").unwrap();
        let e = o.find_edge(paper1, wb, alice).unwrap();
        let sub = Subgraph::from_edges(&o, [e]);
        let mut results = Vec::new();
        Matcher::new(&o, &q).restrict(&sub).for_each(|m| {
            results.push(m.result(&q));
            ControlFlow::Continue(())
        });
        assert_eq!(results, vec![alice]);
    }

    #[test]
    fn onto_requires_full_coverage() {
        let o = erdos_ontology();
        let alice = o.node_by_value("Alice").unwrap();
        let paper1 = o.node_by_value("paper1").unwrap();
        let bob = o.node_by_value("Bob").unwrap();
        let wb = o.pred_by_name("wb").unwrap();
        let e1 = o.find_edge(paper1, wb, alice).unwrap();
        let e2 = o.find_edge(paper1, wb, bob).unwrap();
        let sub = Subgraph::from_edges(&o, [e1, e2]);

        let mut b = SimpleQuery::builder();
        let a = b.var("a");
        let p = b.var("p");
        b.edge(p, "wb", a).project(a);
        let one = b.build().unwrap();
        assert!(!Matcher::new(&o, &one).onto(&sub).exists());
        assert!(Matcher::new(&o, &one).restrict(&sub).exists());

        let mut b = SimpleQuery::builder();
        let a1 = b.var("a1");
        let a2 = b.var("a2");
        let p = b.var("p");
        b.edge(p, "wb", a1).edge(p, "wb", a2).project(a1);
        let two = b.build().unwrap();
        let m = Matcher::new(&o, &two)
            .onto(&sub)
            .first()
            .expect("onto match");
        let img = m.image(&o);
        assert_eq!(img, sub);
    }

    #[test]
    fn isolated_projected_node_scans_all_nodes() {
        let o = erdos_ontology();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        b.project(x);
        let q = b.build().unwrap();
        assert_eq!(Matcher::new(&o, &q).count(), o.node_count() as u64);
    }

    #[test]
    fn self_loop_queries_match_self_loop_edges() {
        let mut ob = Ontology::builder();
        ob.edge("n", "self", "n").unwrap();
        ob.edge("n", "p", "m").unwrap();
        let o = ob.build();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        b.edge(x, "self", x).project(x);
        let q = b.build().unwrap();
        let m = Matcher::new(&o, &q).first().expect("self loop matches");
        assert_eq!(o.value_str(m.result(&q)), "n");
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        b.edge(x, "p", x).project(x);
        let q = b.build().unwrap();
        assert!(!Matcher::new(&o, &q).exists());
    }

    #[test]
    fn sequential_order_agrees_with_heuristic_order() {
        let o = erdos_ontology();
        let q = erdos_q1();
        assert_eq!(
            Matcher::new(&o, &q).count(),
            Matcher::new(&o, &q).sequential_order().count()
        );
    }

    #[test]
    fn count_enumerates_all_homomorphisms() {
        let mut ob = Ontology::builder();
        ob.edge("p1", "wb", "a1").unwrap();
        ob.edge("p1", "wb", "a2").unwrap();
        ob.edge("p2", "wb", "a1").unwrap();
        let o = ob.build();
        let mut b = SimpleQuery::builder();
        let a = b.var("a");
        let p = b.var("p");
        b.edge(p, "wb", a).project(a);
        let q = b.build().unwrap();
        assert_eq!(Matcher::new(&o, &q).count(), 3);
    }

    #[test]
    fn parallel_drivers_match_sequential_exactly() {
        // A denser world so the top-level pool has enough candidates to
        // actually shard.
        let mut b = Ontology::builder();
        for i in 0..12 {
            for j in 0..4 {
                b.edge(&format!("p{i}"), "wb", &format!("a{}", (i + j) % 9))
                    .unwrap();
            }
        }
        let o = b.build();
        let mut qb = SimpleQuery::builder();
        let a1 = qb.var("a1");
        let a2 = qb.var("a2");
        let p1 = qb.var("p1");
        let p2 = qb.var("p2");
        qb.edge(p1, "wb", a1)
            .edge(p1, "wb", a2)
            .edge(p2, "wb", a2)
            .project(a1);
        let q = qb.build().unwrap();
        let seq = Matcher::new(&o, &q).collect();
        assert!(!seq.is_empty());
        for threads in [2, 3, 8] {
            let par = Matcher::new(&o, &q).parallel(threads).collect();
            assert_eq!(par, seq, "collect diverged at threads={threads}");
            assert_eq!(
                Matcher::new(&o, &q).parallel(threads).count(),
                seq.len() as u64
            );
            assert!(Matcher::new(&o, &q).parallel(threads).exists());
            assert_eq!(
                Matcher::new(&o, &q).parallel(threads).images(Some(5)),
                Matcher::new(&o, &q).images(Some(5)),
                "limited images diverged at threads={threads}"
            );
            assert_eq!(
                Matcher::new(&o, &q).parallel(threads).images(None),
                Matcher::new(&o, &q).images(None)
            );
        }
    }

    #[test]
    fn signature_pruning_never_changes_results() {
        // Mixed-predicate world where pruning actually fires: nodes with
        // only `cites` edges can never host a `wb` pattern node.
        let mut b = Ontology::builder();
        for i in 0..6 {
            b.edge(&format!("p{i}"), "wb", &format!("a{i}")).unwrap();
            b.edge(&format!("p{i}"), "cites", &format!("p{}", (i + 1) % 6))
                .unwrap();
        }
        let o = b.build();
        let mut qb = SimpleQuery::builder();
        let p = qb.var("p");
        let a = qb.var("a");
        let c = qb.var("c");
        qb.edge(p, "wb", a).edge(p, "cites", c).project(a);
        let q = qb.build().unwrap();
        // Brute-force expectation: for each wb edge and cites edge with a
        // shared paper, one match.
        let mut expect = 0u64;
        for e1 in o.edge_ids() {
            for e2 in o.edge_ids() {
                let (d1, d2) = (o.edge(e1), o.edge(e2));
                if o.pred_str(d1.pred) == "wb" && o.pred_str(d2.pred) == "cites" && d1.src == d2.src
                {
                    expect += 1;
                }
            }
        }
        assert_eq!(Matcher::new(&o, &q).count(), expect);
    }

    // ---- OPTIONAL edges ------------------------------------------------

    /// Films with and without genre edges, for optional matching.
    fn film_world() -> Ontology {
        let mut b = Ontology::builder();
        b.edge("film1", "starring", "Ann").unwrap();
        b.edge("film1", "genre", "Crime").unwrap();
        b.edge("film2", "starring", "Ben").unwrap();
        b.build()
    }

    fn starring_with_optional_genre() -> SimpleQuery {
        let mut b = SimpleQuery::builder();
        let f = b.var("f");
        let a = b.var("a");
        let g = b.var("g");
        b.edge(f, "starring", a)
            .optional_edge(f, "genre", g)
            .project(a);
        b.build().unwrap()
    }

    #[test]
    fn optional_edges_do_not_change_results() {
        let o = film_world();
        let q = starring_with_optional_genre();
        let mut results = Vec::new();
        Matcher::new(&o, &q).for_each(|m| {
            results.push(o.value_str(m.result(&q)).to_string());
            ControlFlow::Continue(())
        });
        results.sort();
        assert_eq!(results, vec!["Ann", "Ben"]);
    }

    #[test]
    fn optional_edges_extend_matches_when_possible() {
        let o = film_world();
        let q = starring_with_optional_genre();
        let g = q.node_of_var("g").unwrap();
        let crime = o.node_by_value("Crime").unwrap();
        let ann = o.node_by_value("Ann").unwrap();
        let ben = o.node_by_value("Ben").unwrap();
        Matcher::new(&o, &q).for_each(|m| {
            if m.result(&q) == ann {
                // film1 has a genre: the optional edge must be matched.
                assert_eq!(m.node_image(g), Some(crime));
                assert_eq!(m.edges.iter().flatten().count(), 2);
            } else {
                assert_eq!(m.result(&q), ben);
                // film2 has no genre: skipped, ?g unbound.
                assert_eq!(m.node_image(g), None);
                assert_eq!(m.edges.iter().flatten().count(), 1);
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn skip_optionals_ignores_the_extension_phase() {
        let o = film_world();
        let q = starring_with_optional_genre();
        let mut count = 0;
        Matcher::new(&o, &q).skip_optionals().for_each(|m| {
            count += 1;
            assert!(m.edges[1].is_none());
            ControlFlow::Continue(())
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn unresolvable_optional_predicate_is_just_skipped() {
        let o = film_world();
        let mut b = SimpleQuery::builder();
        let f = b.var("f");
        let a = b.var("a");
        let x = b.var("x");
        b.edge(f, "starring", a)
            .optional_edge(f, "no_such_pred", x)
            .project(a);
        let q = b.build().unwrap();
        assert_eq!(Matcher::new(&o, &q).count(), 2);
    }

    #[test]
    fn onto_with_optionals_covers_via_extension() {
        // Explanation: film1's two edges. Query: required starring +
        // optional genre. The optional edge must match to cover the
        // genre edge of the explanation.
        let o = film_world();
        let q = starring_with_optional_genre();
        let sub = Subgraph::from_edges(
            &o,
            o.edge_ids()
                .filter(|&e| o.value_str(o.edge(e).src) == "film1"),
        );
        let m = Matcher::new(&o, &q)
            .onto(&sub)
            .first()
            .expect("onto via optional");
        assert_eq!(m.image(&o), sub);
        // And a one-edge explanation (film2) is covered with the
        // optional edge skipped.
        let sub2 = Subgraph::from_edges(
            &o,
            o.edge_ids()
                .filter(|&e| o.value_str(o.edge(e).src) == "film2"),
        );
        let m2 = Matcher::new(&o, &q)
            .onto(&sub2)
            .first()
            .expect("onto via skip");
        assert_eq!(m2.image(&o), sub2);
    }
}
