//! Consistency of queries with example-sets (Definition 2.6).
//!
//! A query `Q` is consistent with an explanation `E` (with distinguished
//! node `res`) when `res ∈ Q(O)` **and** `E` is isomorphic to some graph
//! in the provenance of `res`. Because node values are unique in the
//! ontology, "isomorphic to a provenance graph" collapses to "equal to a
//! match image", so the check becomes: *does an onto homomorphism from
//! `Q` to `E` exist that maps the projected node to `res`?* — exactly
//! the observation the paper makes at the start of Section III.
//!
//! The check is NP-complete in the query size in general; the matcher's
//! coverage pruning keeps it fast at the sizes inference produces.
//!
//! Inference re-runs the same checks constantly: Algorithm 2 / top-k
//! beam search carry the same branches across states and rounds, and
//! disequality inference revisits every `(branch, explanation)` pair.
//! [`ConsistencyCache`] memoizes `find_onto_match` results under a
//! `(query-canonical-hash, explanation-hash)` key so each distinct pair
//! is solved once per inference run.

use questpro_graph::fxhash::{fx_hash_one, FxHashMap};
use questpro_graph::{DeltaSummary, ExampleSet, Explanation, Ontology};
use questpro_query::{sparql, SimpleQuery, UnionQuery};

use crate::matcher::{Match, Matcher};

/// Finds an onto homomorphism from `q` onto `ex` mapping the projected
/// node to the distinguished node, if one exists.
///
/// The returned [`Match`] records the image of every query node — the
/// assignment used by disequality inference (Section V) to read off which
/// values each variable took in each explanation.
pub fn find_onto_match(ont: &Ontology, q: &SimpleQuery, ex: &Explanation) -> Option<Match> {
    Matcher::new(ont, q)
        .bind(q.projected(), ex.distinguished())
        .onto(ex.subgraph())
        .first()
}

/// Whether a simple query is consistent with a single explanation.
pub fn consistent_with_explanation(ont: &Ontology, q: &SimpleQuery, ex: &Explanation) -> bool {
    find_onto_match(ont, q, ex).is_some()
}

/// Whether a union query is consistent with an example-set: every
/// explanation must be covered by at least one branch (Def. 4.1
/// condition 1).
pub fn consistent_with_examples(ont: &Ontology, q: &UnionQuery, examples: &ExampleSet) -> bool {
    examples.iter().all(|ex| {
        q.branches()
            .iter()
            .any(|branch| consistent_with_explanation(ont, branch, ex))
    })
}

/// Cache key of a query: the FxHash of its canonical SPARQL text (the
/// same canonical form `questpro-core` keys its merge cache with, so
/// α-equivalent branches share consistency results).
pub fn query_key(q: &SimpleQuery) -> u64 {
    fx_hash_one(&sparql::format_simple(q))
}

/// Cache key of an explanation: the FxHash of its distinguished node
/// and canonical edge set.
pub fn explanation_key(ex: &Explanation) -> u64 {
    fx_hash_one(&(ex.distinguished(), ex.subgraph().edges()))
}

/// Predicate signature of a `(query, explanation)` pair: the OR of
/// [`Ontology::pred_bit`] over the query's predicates and the
/// explanation subgraph's predicates. A cached consistency result can
/// only change when a live update touches one of those predicates (the
/// match image is exactly the explanation subgraph, and the matcher's
/// candidate ordering reads only the pair's own predicate statistics),
/// so this signature is what [`ConsistencyCache::invalidate_delta`]
/// intersects against [`DeltaSummary::pred_sig`]. A query predicate
/// absent from the ontology yields the all-ones signature: a later
/// update could introduce it, and the 64-bit fold cannot name a bit for
/// a predicate that has no id yet.
fn pair_sig(ont: &Ontology, q: &SimpleQuery, ex: &Explanation) -> u64 {
    let mut sig = 0u64;
    for e in q.edges() {
        match ont.pred_by_name(&e.pred) {
            Some(p) => sig |= ont.pred_bit(p),
            None => return u64::MAX,
        }
    }
    for &e in ex.subgraph().edges() {
        sig |= ont.pred_bit(ont.edge(e).pred);
    }
    sig
}

/// Memoizes [`find_onto_match`] under `(query_key, explanation_key)`.
///
/// Scope contract: one cache per ontology/world — keys do not include
/// the ontology, so reusing a cache across worlds returns stale
/// results. Across *versions* of the same world the cache stays usable:
/// call [`ConsistencyCache::invalidate_delta`] with the update's
/// [`DeltaSummary`] and only the entries whose predicate signature
/// intersects the delta are dropped. Counters feed `InferenceStats`
/// (consistency calls and cache hit rate) in `questpro-core`.
#[derive(Debug, Default)]
pub struct ConsistencyCache {
    /// `(query key, explanation key)` → (predicate signature, result).
    map: FxHashMap<(u64, u64), (u64, Option<Match>)>,
    lookups: u64,
    hits: u64,
}

impl ConsistencyCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached [`find_onto_match`], deriving the query key from `q`.
    pub fn find_onto_match(
        &mut self,
        ont: &Ontology,
        q: &SimpleQuery,
        ex: &Explanation,
    ) -> Option<Match> {
        self.find_onto_match_keyed(query_key(q), ont, q, ex)
    }

    /// Cached [`find_onto_match`] with a precomputed query key (hot
    /// paths that already hold a canonical form, e.g. union branches).
    pub fn find_onto_match_keyed(
        &mut self,
        qkey: u64,
        ont: &Ontology,
        q: &SimpleQuery,
        ex: &Explanation,
    ) -> Option<Match> {
        let key = (qkey, explanation_key(ex));
        self.lookups += 1;
        if let Some((_, cached)) = self.map.get(&key) {
            self.hits += 1;
            crate::metrics::add_consistency_lookup(true);
            return cached.clone();
        }
        crate::metrics::add_consistency_lookup(false);
        let m = find_onto_match(ont, q, ex);
        self.map.insert(key, (pair_sig(ont, q, ex), m.clone()));
        m
    }

    /// Drops exactly the entries a live ontology update can have
    /// changed, keeping the rest warm.
    ///
    /// * When the update kept edge ids stable (insert-only), an entry
    ///   survives iff its predicate signature is disjoint from
    ///   [`DeltaSummary::pred_sig`]: its explanation subgraph is
    ///   untouched and the matcher's candidate ordering reads only the
    ///   statistics of its own predicates, so the memoized search is
    ///   bit-identical on the new version.
    /// * When the update deleted triples, edge ids were compacted and
    ///   the `explanation_key` side of every key — a hash over
    ///   [`questpro_graph::EdgeId`]s — may alias a different subgraph
    ///   on the new version, so the whole cache is dropped.
    ///
    /// Returns the number of entries evicted.
    pub fn invalidate_delta(&mut self, summary: &DeltaSummary) -> usize {
        let before = self.map.len();
        if summary.edge_ids_stable {
            let sig = summary.pred_sig;
            self.map.retain(|_, (s, _)| *s & sig == 0);
        } else {
            self.map.clear();
        }
        before - self.map.len()
    }

    /// Cached [`consistent_with_explanation`].
    pub fn consistent(&mut self, ont: &Ontology, q: &SimpleQuery, ex: &Explanation) -> bool {
        self.find_onto_match(ont, q, ex).is_some()
    }

    /// Total lookups since construction.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run the matcher.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// `hits / lookups`, or 0 when never used.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Number of distinct `(query, explanation)` pairs solved.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache has solved no pair yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::ExampleSet;
    use questpro_query::fixtures::{erdos_q1, erdos_q2};

    /// Figure 1 of the paper, E1 and E2: Alice's and Dave's chains.
    fn world() -> (Ontology, Explanation, Explanation) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Carol"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            ("paper5", "Dave"),
            ("paper5", "Eve"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[
                ("paper1", "wb", "Alice"),
                ("paper1", "wb", "Bob"),
                ("paper2", "wb", "Bob"),
                ("paper2", "wb", "Carol"),
                ("paper3", "wb", "Carol"),
                ("paper3", "wb", "Erdos"),
            ],
            "Alice",
        )
        .unwrap();
        // Dave's chain: Dave -p5- Eve ... shorter: use the Dave–Erdos
        // chain of length 1 for a contrasting shape.
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        (o, e1, e2)
    }

    #[test]
    fn q1_is_consistent_with_the_full_chain() {
        let (o, e1, _) = world();
        assert!(consistent_with_explanation(&o, &erdos_q1(), &e1));
    }

    #[test]
    fn q1_is_not_consistent_with_a_shorter_chain() {
        // Q1 has 6 edges; E2 has 2 — an onto match exists only if Q1 can
        // fold onto the 2-edge graph while hitting the distinguished
        // node. Folding ?p1=?p2=?p3=paper4 works only if each edge of Q1
        // maps to an edge of E2 — possible! But ?a1 must be Dave and the
        // chain alternation must hold. Verify what the checker says and
        // that it agrees with a brute-force expectation.
        let (o, _, e2) = world();
        // Q1 CAN fold: a1=Dave, a2=Erdos (paper1=paper4), a3=Dave, …
        // Both edges of E2 are then covered, so Q1 is consistent with E2.
        assert!(consistent_with_explanation(&o, &erdos_q1(), &e2));
    }

    #[test]
    fn q2_disjoint_edges_is_consistent_with_both() {
        // Proposition 3.1's trivial query: 6 disjoint wb edges. Onto E1
        // (6 edges): yes. Onto E2 (2 edges): also yes, by folding.
        let (o, e1, e2) = world();
        assert!(consistent_with_explanation(&o, &erdos_q2(), &e1));
        assert!(consistent_with_explanation(&o, &erdos_q2(), &e2));
    }

    #[test]
    fn projection_must_hit_the_distinguished_node() {
        let (o, e1, _) = world();
        // Same pattern as a 1-edge query but projected on the paper —
        // papers are never the distinguished author node of E1.
        let mut b = SimpleQuery::builder();
        let p = b.var("p");
        let a = b.var("a");
        b.edge(p, "wb", a).project(p);
        let q = b.build().unwrap();
        assert!(!consistent_with_explanation(&o, &q, &e1));
    }

    #[test]
    fn under_covering_queries_are_rejected() {
        let (o, e1, _) = world();
        // A 1-edge query cannot cover E1's 6 edges.
        let mut b = SimpleQuery::builder();
        let p = b.var("p");
        let a = b.var("a");
        b.edge(p, "wb", a).project(a);
        let q = b.build().unwrap();
        assert!(!consistent_with_explanation(&o, &q, &e1));
    }

    #[test]
    fn constants_in_query_must_appear_in_explanation() {
        let (o, _, e2) = world();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let eve = b.constant("Eve");
        b.edge(p, "wb", x).edge(p, "wb", eve).project(x);
        let q = b.build().unwrap();
        // Eve is not in E2, so no match into E2 exists.
        assert!(!consistent_with_explanation(&o, &q, &e2));
    }

    #[test]
    fn union_consistency_requires_every_explanation_covered() {
        let (o, e1, e2) = world();
        let examples = ExampleSet::from_explanations(vec![e1.clone(), e2.clone()]);
        // Branch tailored to E2 only.
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        let q_short = b.build().unwrap();
        let only_short = UnionQuery::single(q_short.clone());
        assert!(!consistent_with_examples(&o, &only_short, &examples));
        let both = UnionQuery::new(vec![q_short, erdos_q1()]).unwrap();
        assert!(consistent_with_examples(&o, &both, &examples));
    }

    #[test]
    fn trivial_union_is_always_consistent() {
        let (o, e1, e2) = world();
        let examples = ExampleSet::from_explanations(vec![e1, e2]);
        let trivial = UnionQuery::trivial(&o, &examples).unwrap();
        assert!(consistent_with_examples(&o, &trivial, &examples));
    }

    #[test]
    fn onto_match_exposes_variable_assignments() {
        let (o, e1, _) = world();
        let q = erdos_q1();
        let m = find_onto_match(&o, &q, &e1).expect("Q1 onto E1");
        let a1 = q.node_of_var("a1").unwrap();
        let a4 = q.node_of_var("a4").unwrap();
        assert_eq!(o.value_str(m.node_image(a1).unwrap()), "Alice");
        assert_eq!(o.value_str(m.node_image(a4).unwrap()), "Erdos");
    }

    #[test]
    fn cache_agrees_with_uncached_and_counts_hits() {
        let (o, e1, e2) = world();
        let mut cache = ConsistencyCache::new();
        for q in [erdos_q1(), erdos_q2()] {
            for ex in [&e1, &e2] {
                assert_eq!(
                    cache.find_onto_match(&o, &q, ex),
                    find_onto_match(&o, &q, ex)
                );
            }
        }
        assert_eq!(cache.lookups(), 4);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.len(), 4);
        // Second pass: all hits, same answers.
        for q in [erdos_q1(), erdos_q2()] {
            for ex in [&e1, &e2] {
                assert_eq!(
                    cache.consistent(&o, &q, ex),
                    find_onto_match(&o, &q, ex).is_some()
                );
            }
        }
        assert_eq!(cache.lookups(), 8);
        assert_eq!(cache.hits(), 4);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn invalidate_delta_keeps_disjoint_predicates_warm() {
        use questpro_graph::TripleDelta;
        let mut b = Ontology::builder();
        b.edge("paper1", "wb", "Alice").unwrap();
        b.edge("paper1", "cites", "paper2").unwrap();
        b.edge("paper2", "wb", "Bob").unwrap();
        let o = b.build();
        let ex_wb = Explanation::from_triples(&o, &[("paper1", "wb", "Alice")], "Alice").unwrap();
        let ex_cites =
            Explanation::from_triples(&o, &[("paper1", "cites", "paper2")], "paper2").unwrap();
        let mut qb = SimpleQuery::builder();
        let (p, a) = (qb.var("p"), qb.var("a"));
        qb.edge(p, "wb", a).project(a);
        let q_wb = qb.build().unwrap();
        let mut qb = SimpleQuery::builder();
        let (p, c) = (qb.var("p"), qb.var("c"));
        qb.edge(p, "cites", c).project(c);
        let q_cites = qb.build().unwrap();

        let mut cache = ConsistencyCache::new();
        assert!(cache.consistent(&o, &q_wb, &ex_wb));
        assert!(cache.consistent(&o, &q_cites, &ex_cites));
        assert_eq!(cache.len(), 2);

        // Insert-only delta touching only `cites`: the wb entry must
        // stay warm, the cites entry must go.
        let delta = TripleDelta {
            inserts: vec![[
                "paper2".to_string(),
                "cites".to_string(),
                "paper3".to_string(),
            ]],
            deletes: vec![],
        };
        let (next, summary) = o.apply_delta(&delta).unwrap();
        assert!(summary.edge_ids_stable);
        assert_eq!(cache.invalidate_delta(&summary), 1);
        assert_eq!(cache.len(), 1);

        // The surviving entry answers from cache and agrees with a
        // fresh search on the updated version.
        let hits_before = cache.hits();
        assert_eq!(
            cache.find_onto_match(&next, &q_wb, &ex_wb),
            find_onto_match(&next, &q_wb, &ex_wb)
        );
        assert_eq!(cache.hits(), hits_before + 1, "wb entry must stay warm");
        // The evicted pair recomputes against the new version.
        assert!(cache.consistent(&next, &q_cites, &ex_cites));
    }

    #[test]
    fn deletes_clear_the_whole_cache() {
        use questpro_graph::TripleDelta;
        let (o, e1, e2) = world();
        let mut cache = ConsistencyCache::new();
        cache.consistent(&o, &erdos_q1(), &e1);
        cache.consistent(&o, &erdos_q2(), &e2);
        assert_eq!(cache.len(), 2);
        // Deleting any triple compacts edge ids, so explanation keys
        // (hashes over edge ids) may alias: everything must go, even
        // though the deleted predicate is the only one in the world.
        let delta = TripleDelta {
            inserts: vec![],
            deletes: vec![["paper5".to_string(), "wb".to_string(), "Eve".to_string()]],
        };
        let (_, summary) = o.apply_delta(&delta).unwrap();
        assert!(!summary.edge_ids_stable);
        assert_eq!(cache.invalidate_delta(&summary), 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn unknown_query_predicates_invalidate_on_any_delta() {
        use questpro_graph::TripleDelta;
        let (o, e1, _) = world();
        // A query using a predicate the ontology has never seen: its
        // signature cannot name a bit, so it must pin to every delta —
        // a later update could introduce the predicate.
        let mut b = SimpleQuery::builder();
        let (p, a) = (b.var("p"), b.var("a"));
        b.edge(p, "reviewedBy", a).project(a);
        let q = b.build().unwrap();
        let mut cache = ConsistencyCache::new();
        assert!(!cache.consistent(&o, &q, &e1));
        let delta = TripleDelta {
            inserts: vec![[
                "paper9".to_string(),
                "reviewedBy".to_string(),
                "Eve".to_string(),
            ]],
            deletes: vec![],
        };
        let (next, summary) = o.apply_delta(&delta).unwrap();
        assert_eq!(cache.invalidate_delta(&summary), 1, "pinned entry goes");
        // And the recomputed answer reflects the new predicate.
        let ex =
            Explanation::from_triples(&next, &[("paper9", "reviewedBy", "Eve")], "Eve").unwrap();
        assert!(cache.consistent(&next, &q, &ex));
    }

    #[test]
    fn single_node_explanation_needs_edge_free_query() {
        let (o, _, _) = world();
        let ex = Explanation::from_edges(&o, [], "Alice").unwrap();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        b.project(x);
        let q = b.build().unwrap();
        assert!(consistent_with_explanation(&o, &q, &ex));
        // Any query with an edge cannot map into an edge-less subgraph.
        assert!(!consistent_with_explanation(&o, &erdos_q1(), &ex));
    }
}
