//! Query evaluation: result sets and provenance (Definitions 2.2–2.4).
//!
//! Result-set evaluation is *result-anchored*: instead of enumerating all
//! homomorphisms (whose count can be exponential in the pattern size), we
//! enumerate candidate images of the projected node and run an
//! existence-check for each. Candidates come from the cheapest incident
//! edge of the projected node, so a query anchored by a selective
//! predicate never scans the whole ontology.
//!
//! Provenance evaluation enumerates homomorphisms for a *bound* result
//! only (the paper's Section V optimization: run differences without
//! provenance, then bind one result and track provenance just for it).

use std::collections::BTreeSet;

use questpro_graph::rng::{IteratorRandom, Rng, SliceRandom};
use questpro_graph::{NodeId, Ontology, Subgraph};
use questpro_query::{SimpleQuery, UnionQuery};

use crate::matcher::Matcher;
use crate::par::map_chunked;

/// Candidate images of the projected node, computed from its cheapest
/// incident **required** edge (optional edges do not constrain results);
/// `None` means "every node" (the projected node has no required edge).
fn projected_candidates(ont: &Ontology, q: &SimpleQuery) -> Option<Vec<NodeId>> {
    let proj = q.projected();
    let mut best: Option<(usize, Vec<NodeId>)> = None;
    for &ei in q.out_edges(proj) {
        let e = &q.edges()[ei as usize];
        if e.optional {
            continue;
        }
        let Some(p) = ont.pred_by_name(&e.pred) else {
            return Some(Vec::new());
        };
        let pool = ont.edges_with_pred(p);
        if best.as_ref().is_none_or(|(n, _)| pool.len() < *n) {
            let cands: Vec<NodeId> = pool.iter().map(|&te| ont.edge(te).src).collect();
            best = Some((pool.len(), cands));
        }
    }
    for &ei in q.in_edges(proj) {
        let e = &q.edges()[ei as usize];
        if e.optional {
            continue;
        }
        let Some(p) = ont.pred_by_name(&e.pred) else {
            return Some(Vec::new());
        };
        let pool = ont.edges_with_pred(p);
        if best.as_ref().is_none_or(|(n, _)| pool.len() < *n) {
            let cands: Vec<NodeId> = pool.iter().map(|&te| ont.edge(te).dst).collect();
            best = Some((pool.len(), cands));
        }
    }
    best.map(|(_, mut cands)| {
        cands.sort_unstable();
        cands.dedup();
        cands
    })
}

/// Evaluates a simple query: the set of nodes `Q(O)`.
///
/// ```
/// use questpro_engine::{evaluate, provenance_of};
/// use questpro_graph::Ontology;
/// use questpro_query::SimpleQuery;
///
/// let mut b = Ontology::builder();
/// b.edge("paper3", "wb", "Carol")?;
/// b.edge("paper3", "wb", "Erdos")?;
/// let ont = b.build();
/// let mut qb = SimpleQuery::builder();
/// let x = qb.var("x");
/// let p = qb.var("p");
/// let e = qb.constant("Erdos");
/// qb.edge(p, "wb", x).edge(p, "wb", e).project(x);
/// let q = qb.build().unwrap();
///
/// let results = evaluate(&ont, &q);
/// let carol = ont.node_by_value("Carol").unwrap();
/// assert!(results.contains(&carol));
/// // Why Carol? The paper3 co-authorship, as a provenance graph.
/// let images = provenance_of(&ont, &q, carol, None);
/// assert_eq!(images.len(), 1);
/// assert!(images[0].describe(&ont).contains("paper3 -wb-> Erdos"));
/// # Ok::<(), questpro_graph::GraphError>(())
/// ```
pub fn evaluate(ont: &Ontology, q: &SimpleQuery) -> BTreeSet<NodeId> {
    evaluate_with(ont, q, 1)
}

/// [`evaluate`] with the per-candidate existence checks spread over up
/// to `threads` scoped workers. The result is a set, and every check is
/// independent, so the output is identical for every thread count.
pub fn evaluate_with(ont: &Ontology, q: &SimpleQuery, threads: usize) -> BTreeSet<NodeId> {
    // Result sets are determined by the required pattern; skipping the
    // OPTIONAL extension phase makes the existence checks cheaper.
    // Isolated projected node (None): every node extends iff the rest
    // of the pattern matches at all — but diseqs may couple the
    // projected node to the rest, so bind each candidate either way.
    let cands: Vec<NodeId> = match projected_candidates(ont, q) {
        Some(cands) => cands,
        None => ont.node_ids().collect(),
    };
    let hits = map_chunked(&cands, threads, |&v| {
        Matcher::new(ont, q)
            .bind(q.projected(), v)
            .skip_optionals()
            .exists()
    });
    cands
        .into_iter()
        .zip(hits)
        .filter_map(|(v, hit)| hit.then_some(v))
        .collect()
}

/// Evaluates a union query: `q1(O) ∪ … ∪ qn(O)`.
pub fn evaluate_union(ont: &Ontology, q: &UnionQuery) -> BTreeSet<NodeId> {
    evaluate_union_with(ont, q, 1)
}

/// [`evaluate_union`] with branches evaluated concurrently (a union is
/// a set union of independent branch evaluations, so the output is
/// identical for every thread count). A single-branch union falls back
/// to per-candidate parallelism instead.
pub fn evaluate_union_with(ont: &Ontology, q: &UnionQuery, threads: usize) -> BTreeSet<NodeId> {
    // Spans stay on the calling thread: the per-branch workers below
    // record nothing, so the trace shape is thread-count invariant.
    let _t = questpro_trace::span("engine.evaluate_union");
    let branches = q.branches();
    let out = if branches.len() == 1 {
        evaluate_with(ont, &branches[0], threads)
    } else {
        let per_branch = map_chunked(branches, threads, |b| evaluate(ont, b));
        let mut out = BTreeSet::new();
        for set in per_branch {
            out.extend(set);
        }
        out
    };
    questpro_trace::add("branches", branches.len() as u64);
    questpro_trace::add("results", out.len() as u64);
    if questpro_log::enabled(questpro_log::Level::Trace) {
        questpro_log::emit(
            questpro_log::Level::Trace,
            "engine.eval",
            "union query evaluated",
            vec![
                ("branches", branches.len().into()),
                ("results", out.len().into()),
                ("threads", threads.into()),
            ],
        );
    }
    out
}

/// Whether the query has at least one match (i.e. a non-empty result).
pub fn exists_match(ont: &Ontology, q: &SimpleQuery) -> bool {
    Matcher::new(ont, q).exists()
}

/// The provenance of `res` w.r.t. a simple query: all distinct match
/// images `μ(Q)` with `μ(projected) = res` (Def. 2.4), up to `limit`
/// graphs if given.
pub fn provenance_of(
    ont: &Ontology,
    q: &SimpleQuery,
    res: NodeId,
    limit: Option<usize>,
) -> Vec<Subgraph> {
    provenance_of_with(ont, q, res, limit, 1)
}

/// [`provenance_of`] with the match enumeration sharded over up to
/// `threads` workers ([`Matcher::parallel`]). The `limit`-truncated
/// image set equals the sequential one for every thread count: shards
/// are contiguous slices of the enumeration, merged in order.
pub fn provenance_of_with(
    ont: &Ontology,
    q: &SimpleQuery,
    res: NodeId,
    limit: Option<usize>,
    threads: usize,
) -> Vec<Subgraph> {
    let mut images = Matcher::new(ont, q)
        .bind(q.projected(), res)
        .parallel(threads)
        .images(limit);
    // Public contract (and the sequential implementation before
    // sharding): images come back in canonical sorted order.
    images.sort();
    images
}

/// The provenance of `res` w.r.t. a union query: the union of its
/// provenance sets over all branches that produce `res` (Section II-B).
pub fn provenance_of_union(
    ont: &Ontology,
    q: &UnionQuery,
    res: NodeId,
    limit: Option<usize>,
) -> Vec<Subgraph> {
    provenance_of_union_with(ont, q, res, limit, 1)
}

/// [`provenance_of_union`] with each branch's enumeration sharded over
/// up to `threads` workers (branches stay sequential so the early exit
/// at `limit` keeps its left-to-right semantics).
pub fn provenance_of_union_with(
    ont: &Ontology,
    q: &UnionQuery,
    res: NodeId,
    limit: Option<usize>,
    threads: usize,
) -> Vec<Subgraph> {
    let _t = questpro_trace::span("engine.provenance_union");
    let mut images: BTreeSet<Subgraph> = BTreeSet::new();
    'branches: for branch in q.branches() {
        for g in provenance_of_with(ont, branch, res, limit, threads) {
            images.insert(g);
            if let Some(l) = limit {
                if images.len() >= l {
                    break 'branches;
                }
            }
        }
    }
    questpro_trace::add("images", images.len() as u64);
    images.into_iter().collect()
}

/// Samples one `(result, provenance-graph)` pair of a simple query — the
/// generative model of the paper's automatic experiments, where sampled
/// results with their provenance serve as explanations.
///
/// Returns `None` when the query has no results. The provenance graph is
/// drawn uniformly from the first `prov_limit` distinct images of the
/// chosen result.
pub fn sample_result_with_provenance<R: Rng>(
    ont: &Ontology,
    q: &SimpleQuery,
    rng: &mut R,
    prov_limit: usize,
) -> Option<(NodeId, Subgraph)> {
    let results = evaluate(ont, q);
    let res = results.into_iter().choose(rng)?;
    let images = provenance_of(ont, q, res, Some(prov_limit.max(1)));
    let img = images.into_iter().choose(rng)?;
    Some((res, img))
}

/// Samples an example-set for a (hidden) target union query: the
/// generative model of the paper's automatic experiments (Section VI-B),
/// where each explanation is a sampled result together with one of its
/// provenance graphs.
///
/// Results are drawn without replacement while possible (then with
/// replacement), so up to `count` *distinct* output examples are used.
/// Returns fewer explanations (possibly zero) when the query has fewer
/// results.
pub fn sample_example_set<R: Rng>(
    ont: &Ontology,
    target: &UnionQuery,
    count: usize,
    rng: &mut R,
    prov_limit: usize,
) -> questpro_graph::ExampleSet {
    let _t = questpro_trace::span("engine.sample_examples");
    let results: Vec<NodeId> = evaluate_union(ont, target).into_iter().collect();
    let mut order: Vec<NodeId> = results.clone();
    order.shuffle(rng);
    let mut set = questpro_graph::ExampleSet::new();
    let max_attempts = count.saturating_mul(4).max(4);
    let mut attempt = 0usize;
    while set.len() < count && !order.is_empty() && attempt < max_attempts {
        let res = if attempt < order.len() {
            order[attempt]
        } else {
            // With replacement once distinct results are exhausted.
            order[rng.random_range(0..order.len())]
        };
        attempt += 1;
        let imgs = provenance_of_union(ont, target, res, Some(prov_limit.max(1)));
        let Some(img) = imgs.into_iter().choose(rng) else {
            continue;
        };
        let ex = questpro_graph::Explanation::new(img, res)
            .expect("a provenance image always contains its result node");
        set.push(ex);
    }
    questpro_trace::add("examples", set.len() as u64);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::rng::StdRng;
    use questpro_query::fixtures::{erdos_q1, erdos_q2};

    /// Figure 1's four-explanation world: two 2-chains and two 3-chains
    /// to Erdős (shapes simplified but structurally faithful).
    fn ontology() -> Ontology {
        let mut b = Ontology::builder();
        for (p, a) in [
            // E1: Alice -p1- Bob -p2- Carol -p3- Erdos
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Carol"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            // E2: Dave -p4- Erdos (a 1-chain, used for contrast)
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        b.build()
    }

    #[test]
    fn evaluate_returns_distinct_results() {
        let o = ontology();
        let q = erdos_q1();
        let res = evaluate(&o, &q);
        // Every author and paper participating as a1 of some chain.
        assert!(!res.is_empty());
        let names: Vec<_> = res.iter().map(|&n| o.value_str(n)).collect();
        assert!(names.contains(&"Alice"));
    }

    #[test]
    fn union_evaluation_is_set_union() {
        let o = ontology();
        let u = UnionQuery::new(vec![erdos_q1(), erdos_q2()]).unwrap();
        let a = evaluate(&o, &erdos_q1());
        let b = evaluate(&o, &erdos_q2());
        let both = evaluate_union(&o, &u);
        assert!(a.is_subset(&both));
        assert!(b.is_subset(&both));
        assert_eq!(both.len(), a.union(&b).count());
    }

    #[test]
    fn provenance_images_are_distinct_subgraphs() {
        let o = ontology();
        let mut b = SimpleQuery::builder();
        let a = b.var("a");
        let p = b.var("p");
        let erdos = b.constant("Erdos");
        b.edge(p, "wb", a).edge(p, "wb", erdos).project(a);
        let q = b.build().unwrap();
        let carol = o.node_by_value("Carol").unwrap();
        let imgs = provenance_of(&o, &q, carol, None);
        assert_eq!(imgs.len(), 1);
        let img = &imgs[0];
        assert_eq!(img.edge_count(), 2); // paper3's two wb edges
        assert!(img.describe(&o).contains("paper3 -wb-> Carol"));
    }

    #[test]
    fn provenance_respects_limit() {
        let o = ontology();
        let q = erdos_q2(); // six disjoint edges — many images
        let alice = o.node_by_value("Alice").unwrap();
        let imgs = provenance_of(&o, &q, alice, Some(3));
        assert!(imgs.len() <= 3);
        assert!(!imgs.is_empty());
    }

    #[test]
    fn provenance_of_missing_result_is_empty() {
        let o = ontology();
        let q = erdos_q1();
        let paper1 = o.node_by_value("paper1").unwrap();
        // A paper is never the image of ?a1 (targets of wb).
        assert!(provenance_of(&o, &q, paper1, None).is_empty());
    }

    #[test]
    fn union_provenance_merges_branch_images() {
        let o = ontology();
        // Branch A: authors of paper4; Branch B: co-authors of Erdos.
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p4 = b.constant("paper4");
        b.edge(p4, "wb", x).project(x);
        let qa = b.build().unwrap();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        let qb = b.build().unwrap();
        let u = UnionQuery::new(vec![qa, qb]).unwrap();
        let dave = o.node_by_value("Dave").unwrap();
        let imgs = provenance_of_union(&o, &u, dave, None);
        // Dave via branch A (1 edge) and via branch B (2 edges of paper4).
        assert_eq!(imgs.len(), 2);
    }

    #[test]
    fn sampling_is_deterministic_under_a_seed() {
        let o = ontology();
        let q = erdos_q1();
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let s1 = sample_result_with_provenance(&o, &q, &mut r1, 8);
        let s2 = sample_result_with_provenance(&o, &q, &mut r2, 8);
        assert_eq!(s1, s2);
        assert!(s1.is_some());
    }

    #[test]
    fn sampling_empty_query_returns_none() {
        let o = ontology();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let ghost = b.constant("Ghost");
        b.edge(ghost, "wb", x).project(x);
        let q = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample_result_with_provenance(&o, &q, &mut rng, 4).is_none());
    }

    #[test]
    fn isolated_projected_query_returns_all_nodes() {
        let o = ontology();
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        b.project(x);
        let q = b.build().unwrap();
        assert_eq!(evaluate(&o, &q).len(), o.node_count());
    }
}
