//! Query minimization: computing the core of a conjunctive pattern.
//!
//! Homomorphism semantics makes patterns redundant in non-obvious ways —
//! the paper's own diseq-free Q1 chain folds onto a single `wb` edge, so
//! five of its six edges add nothing. The classical fix is the **core**:
//! repeatedly drop an edge whenever the stripped query still contains
//! the original (checked with the frozen-instance homomorphism of
//! [`crate::contain`]); the fixpoint is the unique-up-to-isomorphism
//! minimal equivalent pattern.
//!
//! Minimization is exact for required-only, disequality-free queries.
//! Disequalities break the containment test's completeness and OPTIONAL
//! edges carry provenance semantics that edge-dropping would erase, so
//! queries with either are returned unchanged.

use questpro_query::{QueryBuilder, QueryNodeId, SimpleQuery};

use crate::contain::contained_in;

/// Returns an equivalent query with every redundant edge removed (the
/// core), or a clone when the query carries disequalities or OPTIONAL
/// edges (see module docs).
pub fn minimize(q: &SimpleQuery) -> SimpleQuery {
    let _t = questpro_trace::span("engine.minimize");
    if !q.diseqs().is_empty() || q.has_optional() {
        return q.clone();
    }
    let mut current = q.clone();
    loop {
        let mut improved = false;
        for drop in 0..current.edge_count() {
            let candidate = without_edge(&current, drop);
            // Dropping an edge only weakens the pattern, so
            // `current ⊑ candidate` always holds; equivalence needs the
            // other direction.
            if contained_in(&candidate, &current) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            if questpro_log::enabled(questpro_log::Level::Trace) {
                questpro_log::emit(
                    questpro_log::Level::Trace,
                    "engine.minimize",
                    "query minimized to its core",
                    vec![
                        ("edges_before", q.edge_count().into()),
                        ("edges_after", current.edge_count().into()),
                    ],
                );
            }
            return current;
        }
    }
}

/// `q` with edge `drop` removed; nodes that become isolated are dropped
/// too (except the projected node).
fn without_edge(q: &SimpleQuery, drop: usize) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let mut mapped: Vec<Option<QueryNodeId>> = vec![None; q.node_count()];
    let node = |b: &mut QueryBuilder, n: QueryNodeId, mapped: &mut Vec<Option<QueryNodeId>>| {
        if let Some(m) = mapped[n.index()] {
            return m;
        }
        let m = match q.label(n) {
            questpro_query::NodeLabel::Const(c) => b.constant(c),
            questpro_query::NodeLabel::Var(v) => b.var(v),
        };
        mapped[n.index()] = Some(m);
        m
    };
    // The projected node always survives.
    let proj = node(&mut b, q.projected(), &mut mapped);
    b.project(proj);
    for (i, e) in q.edges().iter().enumerate() {
        if i == drop {
            continue;
        }
        let s = node(&mut b, e.src, &mut mapped);
        let d = node(&mut b, e.dst, &mut mapped);
        b.edge(s, &e.pred, d);
    }
    b.build().expect("edge removal preserves well-formedness")
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_query::fixtures::{erdos_q1, erdos_q2};
    use questpro_query::iso::isomorphic;

    #[test]
    fn diseq_free_q1_minimizes_to_one_edge() {
        let m = minimize(&erdos_q1());
        assert_eq!(m.edge_count(), 1);
        assert!(questpro_query::sparql::format_simple(&m).contains(":wb"));
        // The projected variable survives as the edge target.
        assert!(m.label(m.projected()).is_var());
    }

    #[test]
    fn disjoint_edges_also_fold() {
        let m = minimize(&erdos_q2());
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn anchored_patterns_are_already_minimal() {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert!(isomorphic(&m, &q));
    }

    #[test]
    fn redundant_generalization_of_an_anchor_is_dropped() {
        // ?p wb ?x . ?p wb :Erdos . ?p wb ?y — the ?y edge is subsumed.
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        let y = b.var("y");
        b.edge(p, "wb", x)
            .edge(p, "wb", e)
            .edge(p, "wb", y)
            .project(x);
        let q = b.build().unwrap();
        let m = minimize(&q);
        assert_eq!(m.edge_count(), 2);
        assert!(m.node_of_const("Erdos").is_some());
    }

    #[test]
    fn diseqs_and_optionals_are_left_alone() {
        let q1 = erdos_q1();
        let a1 = q1.node_of_var("a1").unwrap();
        let a2 = q1.node_of_var("a2").unwrap();
        let with_diseq = q1.with_diseqs([(a1, a2)]).unwrap();
        assert_eq!(minimize(&with_diseq).edge_count(), 6);

        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let y = b.var("y");
        let g = b.var("g");
        b.edge(x, "starring", y)
            .optional_edge(x, "genre", g)
            .project(y);
        let q = b.build().unwrap();
        assert_eq!(minimize(&q).edge_count(), 2);
    }

    #[test]
    fn minimization_preserves_semantics_on_data() {
        use crate::eval::evaluate;
        let mut ob = questpro_graph::Ontology::builder();
        for (p, a) in [
            ("paper1", "Alice"),
            ("paper1", "Bob"),
            ("paper2", "Bob"),
            ("paper2", "Carol"),
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
        ] {
            ob.edge(p, "wb", a).unwrap();
        }
        let o = ob.build();
        let q = erdos_q1();
        let m = minimize(&q);
        assert_eq!(evaluate(&o, &q), evaluate(&o, &m));
    }
}
