//! Provenance-aware query engine for QuestPro-RS.
//!
//! This crate is the Rust replacement for the Jena ARQ substrate the
//! paper's implementation relied on. It implements:
//!
//! * **match enumeration** (Def. 2.2) — homomorphisms from a simple query
//!   into an ontology, found by backtracking with candidate filtering and
//!   most-constrained-first edge ordering ([`matcher`]);
//! * **evaluation** — result sets `Q(O)` for simple and union queries,
//!   with the result-anchored strategy that binds the projected node to
//!   each candidate and checks for an extension ([`eval`]);
//! * **provenance** (Def. 2.4) — the set of match images `μ(Q)` for a
//!   given result, deduplicated as canonical [`questpro_graph::Subgraph`]s
//!   ([`eval::provenance_of`]);
//! * **consistency** (Def. 2.6) — does a query admit an *onto*
//!   homomorphism onto each explanation, mapping the projected node to the
//!   distinguished node ([`consistency`]);
//! * **difference queries** (Section V) — `Q_i − Q_j` evaluated without
//!   provenance tracking, with provenance recovered afterwards by binding
//!   a sampled result ([`difference()`]);
//! * **containment and equivalence** of conjunctive queries and their
//!   unions via the frozen-instance homomorphism test ([`contain`]),
//!   used to decide when inference has reconstructed the target query.

pub mod consistency;
pub mod contain;
pub mod cost;
pub mod difference;
pub mod eval;
pub mod matcher;
pub mod metrics;
pub mod minimize;
pub mod par;
pub mod semiring;

pub use consistency::{
    consistent_with_examples, consistent_with_explanation, find_onto_match, ConsistencyCache,
};
pub use contain::{contained_in, equivalent, union_contained_in, union_equivalent};
pub use cost::{
    edge_cost, estimate_scan, merge_pair_cost, ordering_mode, set_ordering_mode, OrderingMode,
};
pub use difference::{difference, difference_with_witness};
pub use eval::{
    evaluate, evaluate_union, evaluate_union_with, evaluate_with, exists_match, provenance_of,
    provenance_of_union, provenance_of_union_with, provenance_of_with, sample_example_set,
    sample_result_with_provenance,
};
pub use matcher::{Match, Matcher};
pub use minimize::minimize;
pub use semiring::{polynomial_of, polynomial_of_union, Monomial, Polynomial};
