//! Session-level analytics over the feedback loop.
//!
//! `questpro-trace` sees individual requests and `questpro-log` sees
//! individual events; neither can answer "how many rounds does a
//! session take to converge?" or "how effective is the consistency
//! cache across sessions on one ontology version?". This crate closes
//! that gap: the feedback layer builds one compact [`SessionRecord`]
//! per finished session, and an [`Aggregator`] folds records into
//! dimensional log2 histograms and counters keyed by
//! `(ontology, version, outcome)`.
//!
//! Design constraints, in order:
//!
//! * **Bounded cardinality with exact drop accounting.** The key space
//!   is capped at [`MAX_KEYS`]; a record whose key is new once the map
//!   is full increments `records_dropped` and lands in **no** bucket.
//!   The invariant `records_in == Σ key sessions + records_dropped`
//!   holds exactly at every instant (property-tested).
//! * **Lock-cheap.** Recording takes one mutex once per *session end*
//!   — never per question or per request — and a disabled recorder is
//!   one relaxed atomic load.
//! * **Traffic-independent exposition.** `/metrics` renders only the
//!   outcome *marginals* (a fixed three-label set, zero-filled), so the
//!   scrape format never varies with which ontologies saw traffic; the
//!   full dimensional breakdown is served by `GET /debug/sessions`.
//! * **Exemplars.** Each key retains the trace IDs of its
//!   [`EXEMPLARS`] slowest sessions, so a histogram bucket can be
//!   joined back to concrete `/debug/traces` entries.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use questpro_trace::hist::{FIRST_BUCKET_LOG2, LAST_BUCKET_LOG2};
use questpro_trace::ring::Ring;

/// Maximum number of live `(ontology, version, outcome)` keys; records
/// for new keys beyond this are counted in `records_dropped`.
pub const MAX_KEYS: usize = 64;
/// Slowest-session exemplars retained per key.
pub const EXEMPLARS: usize = 4;
/// Recent full [`SessionRecord`]s retained for `GET /debug/sessions`.
pub const RECENT: usize = 256;
/// Finite buckets of the wall-time histograms (the `questpro-trace`
/// log2 layout: upper bounds 2^10 ns … 2^33 ns).
pub const NS_BUCKETS: usize = (LAST_BUCKET_LOG2 - FIRST_BUCKET_LOG2 + 1) as usize;
/// Finite buckets of the rounds histogram (upper bounds 2^0 … 2^8).
pub const ROUND_BUCKETS: usize = 9;

/// How a session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Outcome {
    /// The feedback loop reached a final query.
    Converged,
    /// The session was deleted or idle-evicted before converging.
    Abandoned,
    /// The session's pinned ontology version fell off the bounded
    /// registry history (the named 410 path).
    Evicted,
}

impl Outcome {
    /// Every outcome, in the order `/metrics` renders labels.
    pub const ALL: [Outcome; 3] = [Outcome::Converged, Outcome::Abandoned, Outcome::Evicted];

    /// The stable label value (`converged` / `abandoned` / `evicted`).
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Converged => "converged",
            Outcome::Abandoned => "abandoned",
            Outcome::Evicted => "evicted",
        }
    }

    /// Parses a label produced by [`Outcome::as_str`].
    pub fn parse(s: &str) -> Option<Outcome> {
        Outcome::ALL.into_iter().find(|o| o.as_str() == s)
    }
}

/// One finished session, as the feedback layer saw it.
///
/// Wall-clock fields (`wall_ns`, `round_wall_ns`) are telemetry only
/// and vary run to run; every other field is deterministic for a fixed
/// seed and answer sequence (asserted across thread counts by the
/// telemetry differential test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionRecord {
    /// Trace ID to join against `/debug/traces` (0 when untraced).
    pub trace_id: u64,
    /// Ontology the session ran against.
    pub ontology: String,
    /// Ontology version the session was pinned to.
    pub version: u64,
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Question rounds answered (selection + refinement).
    pub rounds: u64,
    /// Questions asked (equals `rounds` for a driven session).
    pub questions: u64,
    /// Yes verdicts given.
    pub yes: u64,
    /// No verdicts given.
    pub no: u64,
    /// Live candidate-pool size after each answered round.
    pub pool_sizes: Vec<u64>,
    /// Wall nanoseconds spent applying each answered round.
    pub round_wall_ns: Vec<u64>,
    /// Total wall nanoseconds across start and every answer.
    pub wall_ns: u64,
    /// Consistency-cache lookups during the session's inference.
    pub consistency_checks: u64,
    /// Consistency-cache lookups answered without a matcher run.
    pub consistency_hits: u64,
    /// Pairwise merge-cache lookups (hits + true + capacity misses).
    pub merge_lookups: u64,
    /// Pairwise merge-cache hits.
    pub merge_hits: u64,
}

impl SessionRecord {
    /// The deterministic projection of this record: everything except
    /// wall clocks and the trace ID. Differential tests compare this
    /// across thread counts.
    pub fn deterministic_key(&self) -> impl PartialEq + std::fmt::Debug + '_ {
        (
            &self.ontology,
            self.version,
            self.outcome,
            self.rounds,
            self.questions,
            self.yes,
            self.no,
            &self.pool_sizes,
            self.consistency_checks,
            self.consistency_hits,
            self.merge_lookups,
            self.merge_hits,
        )
    }
}

/// A plain cumulative log2 histogram snapshot (no atomics — aggregation
/// happens under the one per-session-end lock).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hist {
    /// Cumulative counts per finite bucket.
    pub buckets: Vec<u64>,
    /// Total observations (the `+Inf` cumulative count).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

/// Raw (non-cumulative) fixed-size histogram.
#[derive(Debug, Clone)]
struct RawHist {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    /// log2 of the first finite bucket's upper bound.
    first_log2: u32,
}

impl RawHist {
    fn new(buckets: usize, first_log2: u32) -> RawHist {
        RawHist {
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            first_log2,
        }
    }

    /// Same bucketing as `questpro_trace::hist`: smallest bucket whose
    /// upper bound `2^b` satisfies `v <= 2^b`; values above the last
    /// bound count only toward `+Inf`.
    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let floor_log2 = 63 - u64::from(v.max(1).leading_zeros());
        let ceil_log2 = floor_log2 + u64::from(!v.max(1).is_power_of_two());
        let le_idx = ceil_log2.saturating_sub(u64::from(self.first_log2));
        if let Some(slot) = self.counts.get_mut(le_idx as usize) {
            *slot += 1;
        }
    }

    fn absorb(&mut self, other: &RawHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    fn snapshot(&self) -> Hist {
        let mut cum = 0;
        Hist {
            buckets: self
                .counts
                .iter()
                .map(|&c| {
                    cum += c;
                    cum
                })
                .collect(),
            count: self.count,
            sum: self.sum,
        }
    }
}

/// One exemplar: a slow session joinable against `/debug/traces`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The session's trace ID (0 when untraced).
    pub trace_id: u64,
    /// Total session wall nanoseconds.
    pub wall_ns: u64,
    /// Question rounds the session took.
    pub rounds: u64,
}

#[derive(Debug, Clone)]
struct KeyStats {
    ontology: String,
    version: u64,
    outcome: Outcome,
    sessions: u64,
    questions: u64,
    yes: u64,
    no: u64,
    consistency_checks: u64,
    consistency_hits: u64,
    merge_lookups: u64,
    merge_hits: u64,
    rounds: RawHist,
    wall_ns: RawHist,
    round_wall_ns: RawHist,
    /// Slowest sessions, descending by `wall_ns`, at most [`EXEMPLARS`].
    exemplars: Vec<Exemplar>,
}

impl KeyStats {
    fn new(ontology: String, version: u64, outcome: Outcome) -> KeyStats {
        KeyStats {
            ontology,
            version,
            outcome,
            sessions: 0,
            questions: 0,
            yes: 0,
            no: 0,
            consistency_checks: 0,
            consistency_hits: 0,
            merge_lookups: 0,
            merge_hits: 0,
            rounds: RawHist::new(ROUND_BUCKETS, 0),
            wall_ns: RawHist::new(NS_BUCKETS, FIRST_BUCKET_LOG2),
            round_wall_ns: RawHist::new(NS_BUCKETS, FIRST_BUCKET_LOG2),
            exemplars: Vec::new(),
        }
    }

    fn fold(&mut self, rec: &SessionRecord) {
        self.sessions += 1;
        self.questions += rec.questions;
        self.yes += rec.yes;
        self.no += rec.no;
        self.consistency_checks += rec.consistency_checks;
        self.consistency_hits += rec.consistency_hits;
        self.merge_lookups += rec.merge_lookups;
        self.merge_hits += rec.merge_hits;
        self.rounds.record(rec.rounds);
        self.wall_ns.record(rec.wall_ns);
        for &ns in &rec.round_wall_ns {
            self.round_wall_ns.record(ns);
        }
        let ex = Exemplar {
            trace_id: rec.trace_id,
            wall_ns: rec.wall_ns,
            rounds: rec.rounds,
        };
        let at = self
            .exemplars
            .iter()
            .position(|e| e.wall_ns < ex.wall_ns)
            .unwrap_or(self.exemplars.len());
        if at < EXEMPLARS {
            self.exemplars.insert(at, ex);
            self.exemplars.truncate(EXEMPLARS);
        }
    }
}

/// Full dimensional view of one key, as served by `/debug/sessions`.
#[derive(Debug, Clone)]
pub struct KeySnapshot {
    /// Ontology name.
    pub ontology: String,
    /// Pinned ontology version.
    pub version: u64,
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Sessions folded into this key.
    pub sessions: u64,
    /// Questions asked across those sessions.
    pub questions: u64,
    /// Yes verdicts.
    pub yes: u64,
    /// No verdicts.
    pub no: u64,
    /// Consistency-cache lookups.
    pub consistency_checks: u64,
    /// Consistency-cache hits.
    pub consistency_hits: u64,
    /// Merge-cache lookups.
    pub merge_lookups: u64,
    /// Merge-cache hits.
    pub merge_hits: u64,
    /// Convergence-round histogram (upper bounds 2^0 … 2^8, +Inf).
    pub rounds: Hist,
    /// Session wall-time histogram (ns, trace layout).
    pub wall_ns: Hist,
    /// Per-round wall-time histogram (ns, trace layout).
    pub round_wall_ns: Hist,
    /// Slowest sessions under this key, descending by wall time.
    pub exemplars: Vec<Exemplar>,
}

/// Outcome marginal: every key with this outcome summed together. The
/// label set is fixed ([`Outcome::ALL`]), so `/metrics` exposition is
/// traffic-independent.
#[derive(Debug, Clone)]
pub struct OutcomeMarginal {
    /// The outcome this marginal sums over.
    pub outcome: Outcome,
    /// Sessions recorded with this outcome (and not dropped).
    pub sessions: u64,
    /// Questions asked.
    pub questions: u64,
    /// Yes verdicts.
    pub yes: u64,
    /// No verdicts.
    pub no: u64,
    /// Consistency-cache lookups.
    pub consistency_checks: u64,
    /// Consistency-cache hits.
    pub consistency_hits: u64,
    /// Merge-cache lookups.
    pub merge_lookups: u64,
    /// Merge-cache hits.
    pub merge_hits: u64,
    /// Convergence-round histogram.
    pub rounds: Hist,
    /// Session wall-time histogram (ns).
    pub wall_ns: Hist,
    /// Per-round wall-time histogram (ns).
    pub round_wall_ns: Hist,
}

/// Everything the aggregator knows, in one consistent view.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Records offered (accepted + dropped).
    pub records_total: u64,
    /// Records dropped by the key-cardinality cap.
    pub records_dropped: u64,
    /// Live dimensional keys, sorted by (ontology, version, outcome).
    pub keys: Vec<KeySnapshot>,
}

/// Bounded dimensional aggregation of [`SessionRecord`]s.
///
/// Standalone (no global state) so differential tests can aggregate
/// into private instances; the process-wide singleton behind
/// [`record`] / [`snapshot`] is one instance of this type.
#[derive(Debug)]
pub struct Aggregator {
    keys: Vec<KeyStats>,
    records_total: u64,
    records_dropped: u64,
    recent: Ring<SessionRecord>,
}

impl Default for Aggregator {
    fn default() -> Self {
        Aggregator::new()
    }
}

impl Aggregator {
    /// An empty aggregator with the standard bounds.
    pub fn new() -> Aggregator {
        Aggregator {
            keys: Vec::new(),
            records_total: 0,
            records_dropped: 0,
            recent: Ring::new(RECENT),
        }
    }

    /// Folds one finished session in. Records whose
    /// `(ontology, version, outcome)` key is new while [`MAX_KEYS`]
    /// keys are live are dropped (counted, never bucketed).
    pub fn record(&mut self, rec: SessionRecord) {
        self.records_total += 1;
        let found = self.keys.iter().position(|k| {
            k.ontology == rec.ontology && k.version == rec.version && k.outcome == rec.outcome
        });
        let key_idx = match found {
            Some(i) => i,
            None if self.keys.len() >= MAX_KEYS => {
                self.records_dropped += 1;
                return;
            }
            None => {
                self.keys.push(KeyStats::new(
                    rec.ontology.clone(),
                    rec.version,
                    rec.outcome,
                ));
                self.keys.len() - 1
            }
        };
        self.keys[key_idx].fold(&rec);
        self.recent.push(rec);
    }

    /// Records offered so far (accepted + dropped).
    pub fn records_total(&self) -> u64 {
        self.records_total
    }

    /// Records dropped by the cardinality cap.
    pub fn records_dropped(&self) -> u64 {
        self.records_dropped
    }

    /// Live key count.
    pub fn keys_live(&self) -> usize {
        self.keys.len()
    }

    /// Full dimensional snapshot, keys sorted for stable output.
    pub fn snapshot(&self) -> Snapshot {
        let mut keys: Vec<KeySnapshot> = self
            .keys
            .iter()
            .map(|k| KeySnapshot {
                ontology: k.ontology.clone(),
                version: k.version,
                outcome: k.outcome,
                sessions: k.sessions,
                questions: k.questions,
                yes: k.yes,
                no: k.no,
                consistency_checks: k.consistency_checks,
                consistency_hits: k.consistency_hits,
                merge_lookups: k.merge_lookups,
                merge_hits: k.merge_hits,
                rounds: k.rounds.snapshot(),
                wall_ns: k.wall_ns.snapshot(),
                round_wall_ns: k.round_wall_ns.snapshot(),
                exemplars: k.exemplars.clone(),
            })
            .collect();
        keys.sort_by(|a, b| {
            (&a.ontology, a.version, a.outcome).cmp(&(&b.ontology, b.version, b.outcome))
        });
        Snapshot {
            records_total: self.records_total,
            records_dropped: self.records_dropped,
            keys,
        }
    }

    /// The three outcome marginals, always in [`Outcome::ALL`] order
    /// and zero-filled, independent of traffic.
    pub fn marginals(&self) -> Vec<OutcomeMarginal> {
        Outcome::ALL
            .into_iter()
            .map(|outcome| {
                let mut m = OutcomeMarginal {
                    outcome,
                    sessions: 0,
                    questions: 0,
                    yes: 0,
                    no: 0,
                    consistency_checks: 0,
                    consistency_hits: 0,
                    merge_lookups: 0,
                    merge_hits: 0,
                    rounds: RawHist::new(ROUND_BUCKETS, 0).snapshot(),
                    wall_ns: RawHist::new(NS_BUCKETS, FIRST_BUCKET_LOG2).snapshot(),
                    round_wall_ns: RawHist::new(NS_BUCKETS, FIRST_BUCKET_LOG2).snapshot(),
                };
                let mut rounds = RawHist::new(ROUND_BUCKETS, 0);
                let mut wall = RawHist::new(NS_BUCKETS, FIRST_BUCKET_LOG2);
                let mut round_wall = RawHist::new(NS_BUCKETS, FIRST_BUCKET_LOG2);
                for k in self.keys.iter().filter(|k| k.outcome == outcome) {
                    m.sessions += k.sessions;
                    m.questions += k.questions;
                    m.yes += k.yes;
                    m.no += k.no;
                    m.consistency_checks += k.consistency_checks;
                    m.consistency_hits += k.consistency_hits;
                    m.merge_lookups += k.merge_lookups;
                    m.merge_hits += k.merge_hits;
                    rounds.absorb(&k.rounds);
                    wall.absorb(&k.wall_ns);
                    round_wall.absorb(&k.round_wall_ns);
                }
                m.rounds = rounds.snapshot();
                m.wall_ns = wall.snapshot();
                m.round_wall_ns = round_wall.snapshot();
                m
            })
            .collect()
    }

    /// The newest retained records, newest first, optionally filtered
    /// by outcome, at most `limit`.
    pub fn recent(&self, limit: usize, outcome: Option<Outcome>) -> Vec<SessionRecord> {
        self.recent
            .latest(self.recent.len())
            .into_iter()
            .filter(|r| outcome.is_none_or(|o| r.outcome == o))
            .take(limit)
            .cloned()
            .collect()
    }
}

// ---------------------------------------------------------------------
// Process-wide recorder
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Mutex<Aggregator> {
    static AGG: OnceLock<Mutex<Aggregator>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(Aggregator::new()))
}

fn lock() -> std::sync::MutexGuard<'static, Aggregator> {
    // Telemetry must never take a process down: a panic while holding
    // the lock leaves valid (if partially updated) counters behind.
    match global().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Turns session telemetry on or off (off by default; the server and
/// the CLI `session`/`serve` paths enable it).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether session telemetry is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one finished session into the process-wide aggregator.
/// One relaxed load and an immediate return when disabled.
pub fn record(rec: SessionRecord) {
    if !enabled() {
        return;
    }
    lock().record(rec);
}

/// Snapshot of the process-wide aggregator.
pub fn snapshot() -> Snapshot {
    lock().snapshot()
}

/// Outcome marginals of the process-wide aggregator (fixed label set).
pub fn marginals() -> Vec<OutcomeMarginal> {
    lock().marginals()
}

/// Recent records from the process-wide aggregator, newest first.
pub fn recent(limit: usize, outcome: Option<Outcome>) -> Vec<SessionRecord> {
    lock().recent(limit, outcome)
}

/// Counters of the process-wide aggregator:
/// `(records_total, records_dropped, keys_live)`.
pub fn counters() -> (u64, u64, usize) {
    let g = lock();
    (g.records_total(), g.records_dropped(), g.keys_live())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ontology: &str, version: u64, outcome: Outcome, rounds: u64) -> SessionRecord {
        SessionRecord {
            trace_id: rounds,
            ontology: ontology.to_string(),
            version,
            outcome,
            rounds,
            questions: rounds,
            yes: rounds / 2,
            no: rounds - rounds / 2,
            pool_sizes: (0..rounds).map(|i| rounds - i).collect(),
            round_wall_ns: vec![1000; rounds as usize],
            wall_ns: 1000 * rounds,
            consistency_checks: 10 * rounds,
            consistency_hits: 5 * rounds,
            merge_lookups: 4 * rounds,
            merge_hits: rounds,
        }
    }

    #[test]
    fn outcome_labels_round_trip() {
        for o in Outcome::ALL {
            assert_eq!(Outcome::parse(o.as_str()), Some(o));
        }
        assert_eq!(Outcome::parse("nope"), None);
    }

    #[test]
    fn records_fold_into_keys_and_marginals() {
        let mut agg = Aggregator::new();
        agg.record(rec("erdos", 1, Outcome::Converged, 3));
        agg.record(rec("erdos", 1, Outcome::Converged, 5));
        agg.record(rec("sp2b", 2, Outcome::Abandoned, 1));
        let snap = agg.snapshot();
        assert_eq!(snap.records_total, 3);
        assert_eq!(snap.records_dropped, 0);
        assert_eq!(snap.keys.len(), 2);
        let erdos = &snap.keys[0];
        assert_eq!(erdos.ontology, "erdos");
        assert_eq!(erdos.sessions, 2);
        assert_eq!(erdos.questions, 8);
        assert_eq!(erdos.rounds.count, 2);
        // rounds 3 -> le=4 (idx 2), rounds 5 -> le=8 (idx 3).
        assert_eq!(erdos.rounds.buckets[1], 0);
        assert_eq!(erdos.rounds.buckets[2], 1);
        assert_eq!(erdos.rounds.buckets[3], 2);
        let m = agg.marginals();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].outcome, Outcome::Converged);
        assert_eq!(m[0].sessions, 2);
        assert_eq!(m[1].sessions, 1);
        assert_eq!(m[2].sessions, 0, "evicted marginal renders zero-filled");
    }

    #[test]
    fn cardinality_cap_drops_exactly_and_accounts() {
        let mut agg = Aggregator::new();
        for v in 0..(MAX_KEYS as u64 + 10) {
            agg.record(rec("w", v, Outcome::Converged, 1));
        }
        // Existing keys still accept records after the cap is hit.
        agg.record(rec("w", 0, Outcome::Converged, 2));
        let snap = agg.snapshot();
        assert_eq!(snap.keys.len(), MAX_KEYS);
        assert_eq!(snap.records_dropped, 10);
        let bucketed: u64 = snap.keys.iter().map(|k| k.sessions).sum();
        assert_eq!(
            bucketed + snap.records_dropped,
            snap.records_total,
            "every record is either bucketed or counted as dropped"
        );
    }

    #[test]
    fn exemplars_keep_the_slowest_sessions() {
        let mut agg = Aggregator::new();
        for (id, wall) in [(1u64, 50u64), (2, 500), (3, 5), (4, 900), (5, 100), (6, 70)] {
            let mut r = rec("w", 1, Outcome::Converged, 1);
            r.trace_id = id;
            r.wall_ns = wall;
            agg.record(r);
        }
        let snap = agg.snapshot();
        let ex = &snap.keys[0].exemplars;
        assert_eq!(ex.len(), EXEMPLARS);
        let ids: Vec<u64> = ex.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![4, 2, 5, 6], "descending by wall time");
    }

    #[test]
    fn recent_filters_by_outcome_and_caps_at_limit() {
        let mut agg = Aggregator::new();
        for i in 0..10u64 {
            let outcome = if i % 2 == 0 {
                Outcome::Converged
            } else {
                Outcome::Abandoned
            };
            let mut r = rec("w", 1, outcome, 1);
            r.trace_id = i;
            agg.record(r);
        }
        let all = agg.recent(4, None);
        assert_eq!(all.len(), 4);
        assert_eq!(all[0].trace_id, 9, "newest first");
        let conv = agg.recent(100, Some(Outcome::Converged));
        assert_eq!(conv.len(), 5);
        assert!(conv.iter().all(|r| r.outcome == Outcome::Converged));
    }

    #[test]
    fn ns_histogram_matches_the_trace_layout() {
        let mut agg = Aggregator::new();
        let mut r = rec("w", 1, Outcome::Converged, 1);
        r.wall_ns = 1; // <= 2^10: first bucket
        agg.record(r.clone());
        r.wall_ns = 1 << 40; // above 2^33: +Inf only
        agg.record(r);
        let wall = &agg.snapshot().keys[0].wall_ns;
        assert_eq!(wall.buckets.len(), NS_BUCKETS);
        assert_eq!(wall.buckets[0], 1);
        assert_eq!(wall.buckets[NS_BUCKETS - 1], 1, "2^40 only in +Inf");
        assert_eq!(wall.count, 2);
    }

    #[test]
    fn disabled_global_recorder_is_inert() {
        set_enabled(false);
        let (before, _, _) = counters();
        record(rec("inert", 1, Outcome::Converged, 1));
        let (after, _, _) = counters();
        assert_eq!(before, after);
    }
}
