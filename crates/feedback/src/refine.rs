//! Disequality refinement (end of Section V).
//!
//! Once a query *pattern* has been chosen, the user may still want fewer
//! disequalities than `Q^all` carries. Following the paper: keep a
//! current query `Q_j` (initially all disequalities); repeatedly build
//! `Q_i` by dropping one not-yet-approved disequality and evaluate
//! `Q_i − Q_j`. A non-empty difference yields a provenance-backed
//! question — "yes, include these" drops the disequality permanently,
//! "no" approves it and it is never asked about again. Disequalities
//! whose removal makes no observable difference on this ontology are
//! kept (they are harmless here; the paper escalates to removing pairs,
//! triples, …, which we bound by the same observation: an unobservable
//! disequality cannot be refuted by any difference question).

use questpro_graph::rng::Rng;

use questpro_engine::difference_with_witness;
use questpro_graph::Ontology;
use questpro_query::{QueryNodeId, UnionQuery};

use crate::algorithm3::FeedbackConfig;
use crate::oracle::Oracle;

/// Refines the disequalities of `q` (typically a `Q^all`) by querying the
/// user; returns the refined query and the number of questions asked.
pub fn refine_diseqs<O: Oracle, R: Rng>(
    ont: &Ontology,
    q: &UnionQuery,
    oracle: &mut O,
    rng: &mut R,
    cfg: &FeedbackConfig,
) -> (UnionQuery, usize) {
    let _t = questpro_trace::span("feedback.refine");
    let mut current = q.clone();
    let mut questions = 0usize;
    // Approved (branch, pair) combinations we must not ask about again.
    let mut approved: Vec<(usize, (QueryNodeId, QueryNodeId))> = Vec::new();

    loop {
        let mut progressed = false;
        'scan: for b in 0..current.len() {
            let diseqs: Vec<_> = current.branches()[b].diseqs().to_vec();
            for &pair in &diseqs {
                if questions >= cfg.max_questions {
                    return (current, questions);
                }
                if approved.contains(&(b, pair)) {
                    continue;
                }
                let _q = questpro_trace::span("feedback.question");
                let candidate = drop_diseq(&current, b, pair);
                match difference_with_witness(ont, &candidate, &current, rng, cfg.prov_limit) {
                    Some((res, prov)) => {
                        questions += 1;
                        if oracle.accept(ont, res, &prov) {
                            // The user wants the extra results: drop it.
                            current = candidate;
                            progressed = true;
                            break 'scan;
                        }
                        approved.push((b, pair));
                    }
                    None => {
                        // Unobservable on this ontology: keep silently.
                        approved.push((b, pair));
                    }
                }
            }
        }
        if !progressed {
            return (current, questions);
        }
    }
}

/// `q` with one disequality removed from branch `b`.
pub(crate) fn drop_diseq(q: &UnionQuery, b: usize, pair: (QueryNodeId, QueryNodeId)) -> UnionQuery {
    let branches = q
        .branches()
        .iter()
        .enumerate()
        .map(|(idx, branch)| {
            if idx == b {
                let remaining = branch.diseqs().iter().copied().filter(|&d| d != pair);
                branch
                    .with_diseqs(remaining)
                    .expect("removing a disequality keeps the query valid")
            } else {
                branch.clone()
            }
        })
        .collect();
    UnionQuery::new(branches).expect("branch count unchanged")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TargetOracle;
    use questpro_graph::rng::StdRng;
    use questpro_query::SimpleQuery;

    fn world() -> Ontology {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paperS", "Solo"), // Solo's only co-author is Solo himself
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        for a in ["Carol", "Erdos", "Solo"] {
            b.typed_node(a, "Author").unwrap();
        }
        for p in ["paper3", "paperS"] {
            b.typed_node(p, "Paper").unwrap();
        }
        b.build()
    }

    /// `?p wb ?x . ?p wb ?other` with optional diseq x != other.
    fn coauthor(with_diseq: bool) -> UnionQuery {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let other = b.var("other");
        b.edge(p, "wb", x).edge(p, "wb", other).project(x);
        if with_diseq {
            b.diseq(x, other);
        }
        UnionQuery::single(b.build().unwrap())
    }

    #[test]
    fn wanted_diseq_is_kept() {
        // Target: strict co-authors (x != other). Removing the diseq
        // would add Solo (solo paper); the oracle rejects that, so the
        // diseq is approved and kept.
        let o = world();
        let mut oracle = TargetOracle::new(coauthor(true));
        let mut rng = StdRng::seed_from_u64(1);
        let (refined, questions) = refine_diseqs(
            &o,
            &coauthor(true),
            &mut oracle,
            &mut rng,
            &FeedbackConfig::default(),
        );
        assert_eq!(refined.diseq_count(), 1);
        assert_eq!(questions, 1);
    }

    #[test]
    fn unwanted_diseq_is_dropped() {
        // Target: all co-author pairs including solo papers. The diseq's
        // extra exclusion is unwanted → dropped after one question.
        let o = world();
        let mut oracle = TargetOracle::new(coauthor(false));
        let mut rng = StdRng::seed_from_u64(1);
        let (refined, questions) = refine_diseqs(
            &o,
            &coauthor(true),
            &mut oracle,
            &mut rng,
            &FeedbackConfig::default(),
        );
        assert_eq!(refined.diseq_count(), 0);
        assert_eq!(questions, 1);
    }

    #[test]
    fn diseq_free_query_asks_nothing() {
        let o = world();
        let mut oracle = TargetOracle::new(coauthor(false));
        let mut rng = StdRng::seed_from_u64(1);
        let (refined, questions) = refine_diseqs(
            &o,
            &coauthor(false),
            &mut oracle,
            &mut rng,
            &FeedbackConfig::default(),
        );
        assert_eq!(refined.diseq_count(), 0);
        assert_eq!(questions, 0);
    }
}
