//! Simulation of the paper's user study (Section VI-C, Figure 8).
//!
//! The paper had 9 SPARQL-proficient users formulate examples and
//! explanations for movie queries through the QuestPro UI; most
//! interactions succeeded, a few failed or had to be redone. The failure
//! causes the paper reports are modeled here as injectable error modes:
//!
//! * **incomplete explanation** — the user forgets part of the
//!   explanation (an edge is dropped from the sampled provenance; the
//!   paper's query-9 case);
//! * **over-specific examples** — the user picks examples whose
//!   explanations share identical parts, so the inferred query carries an
//!   extra constant (the Tarantino case);
//! * **reversed relation** — the user confuses the direction of an edge
//!   and selects a different relation than intended (the arrows case);
//! * **UI confusion** — the user starts over; the interaction is
//!   recorded as a *redo* and then proceeds correctly.
//!
//! A simulated interaction samples explanations from the hidden target
//! query, optionally corrupts them, runs the full inference + feedback
//! session with a correct [`TargetOracle`], and compares the final query
//! against the target. When an injected error leads to the wrong query,
//! the user notices and redoes the interaction once with clean
//! explanations — matching the paper's "redone interactions that were
//! successful after redo".

use questpro_graph::rng::{IteratorRandom, Rng};

use questpro_engine::{evaluate_union, sample_example_set, union_equivalent};
use questpro_graph::{ExampleSet, Explanation, Ontology, Subgraph};
use questpro_query::UnionQuery;

use crate::oracle::TargetOracle;
use crate::session::{run_session, SessionConfig};

/// Probabilities of each user error mode, per interaction.
#[derive(Debug, Clone, Copy)]
pub struct ErrorRates {
    /// Dropping an edge from one explanation.
    pub incomplete: f64,
    /// Formulating explanations with identical parts.
    pub over_specific: f64,
    /// Selecting a wrong/reversed relation in one explanation.
    pub reversed: f64,
    /// Starting over due to UI confusion (records a redo upfront).
    pub ui_confusion: f64,
    /// Probability that a user who made an error *notices* the wrong
    /// inferred query and redoes the interaction; otherwise the wrong
    /// query stands and the interaction is a failure (the paper's
    /// "London" and incomplete-explanation cases).
    pub notice: f64,
}

impl Default for ErrorRates {
    /// Rates calibrated to reproduce Figure 8's proportions: 36
    /// interactions with roughly 4 problematic ones.
    fn default() -> Self {
        Self {
            incomplete: 0.05,
            over_specific: 0.04,
            reversed: 0.03,
            ui_confusion: 0.03,
            notice: 0.5,
        }
    }
}

/// Configuration of a simulated study.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Number of simulated users (the paper had 9).
    pub users: usize,
    /// Interactions per user (the paper: 2 basic + 2 challenging).
    pub interactions_per_user: usize,
    /// Explanations a user formulates per interaction.
    pub explanations: usize,
    /// Error-mode probabilities.
    pub errors: ErrorRates,
    /// Session (inference + feedback) parameters.
    pub session: SessionConfig,
    /// Provenance sampling bound.
    pub prov_limit: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            users: 9,
            interactions_per_user: 4,
            explanations: 2,
            errors: ErrorRates::default(),
            session: SessionConfig {
                refine: true,
                ..SessionConfig::default()
            },
            prov_limit: 8,
        }
    }
}

/// Outcome of one interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyOutcome {
    /// The intended query was inferred on the first attempt.
    Success,
    /// A first attempt failed (user error) but a redo succeeded.
    RedoSuccess,
    /// The intended query was not inferred.
    Failure,
}

/// The error injected into an interaction, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedError {
    /// An edge was dropped from an explanation.
    Incomplete,
    /// Two explanations shared identical parts.
    OverSpecific,
    /// An edge was replaced by a wrong relation.
    Reversed,
    /// The user restarted before providing examples.
    UiConfusion,
}

/// One simulated interaction.
#[derive(Debug, Clone)]
pub struct InteractionRecord {
    /// Simulated user index.
    pub user: usize,
    /// Index of the target query in the study pool.
    pub query: usize,
    /// Final outcome.
    pub outcome: StudyOutcome,
    /// The error injected, if any.
    pub error: Option<InjectedError>,
}

/// Aggregated study results (the Figure 8 histogram).
#[derive(Debug, Clone, Default)]
pub struct StudyReport {
    /// Every simulated interaction.
    pub interactions: Vec<InteractionRecord>,
}

impl StudyReport {
    /// Number of first-attempt successes.
    pub fn successes(&self) -> usize {
        self.count(StudyOutcome::Success)
    }

    /// Number of redo-then-success interactions.
    pub fn redo_successes(&self) -> usize {
        self.count(StudyOutcome::RedoSuccess)
    }

    /// Number of failures.
    pub fn failures(&self) -> usize {
        self.count(StudyOutcome::Failure)
    }

    fn count(&self, o: StudyOutcome) -> usize {
        self.interactions.iter().filter(|r| r.outcome == o).count()
    }
}

/// Whether two queries "have the same semantics" for study purposes:
/// semantically equivalent, or returning identical result sets on the
/// study ontology (the observable criterion a user can verify).
pub fn same_semantics(ont: &Ontology, a: &UnionQuery, b: &UnionQuery) -> bool {
    union_equivalent(a, b) || evaluate_union(ont, a) == evaluate_union(ont, b)
}

/// Runs a simulated user study over a pool of target queries.
pub fn simulate_study<R: Rng>(
    ont: &Ontology,
    targets: &[UnionQuery],
    cfg: &StudyConfig,
    rng: &mut R,
) -> StudyReport {
    assert!(!targets.is_empty(), "study needs at least one target query");
    let mut report = StudyReport::default();
    for user in 0..cfg.users {
        for round in 0..cfg.interactions_per_user {
            let query = (user + round * 3) % targets.len();
            let target = &targets[query];
            let record = simulate_interaction(ont, target, user, query, cfg, rng);
            report.interactions.push(record);
        }
    }
    report
}

fn simulate_interaction<R: Rng>(
    ont: &Ontology,
    target: &UnionQuery,
    user: usize,
    query: usize,
    cfg: &StudyConfig,
    rng: &mut R,
) -> InteractionRecord {
    let error = draw_error(&cfg.errors, rng);
    // UI confusion: the user restarts immediately, then works correctly.
    if error == Some(InjectedError::UiConfusion) {
        let outcome = if attempt(ont, target, None, cfg, rng) {
            StudyOutcome::RedoSuccess
        } else {
            StudyOutcome::Failure
        };
        return InteractionRecord {
            user,
            query,
            outcome,
            error,
        };
    }
    if attempt(ont, target, error, cfg, rng) {
        return InteractionRecord {
            user,
            query,
            outcome: StudyOutcome::Success,
            error,
        };
    }
    // Wrong query obtained. An erring user notices only with probability
    // `notice` — unnoticed wrong queries stand as failures (the paper's
    // extra-union and incomplete-explanation cases). Error-free failures
    // stand as well.
    let noticed = error.is_some() && rng.random_bool(cfg.errors.notice.clamp(0.0, 1.0));
    let outcome = if noticed && attempt(ont, target, None, cfg, rng) {
        StudyOutcome::RedoSuccess
    } else {
        StudyOutcome::Failure
    };
    InteractionRecord {
        user,
        query,
        outcome,
        error,
    }
}

fn draw_error<R: Rng>(rates: &ErrorRates, rng: &mut R) -> Option<InjectedError> {
    let r: f64 = rng.random_f64();
    let mut acc = rates.incomplete;
    if r < acc {
        return Some(InjectedError::Incomplete);
    }
    acc += rates.over_specific;
    if r < acc {
        return Some(InjectedError::OverSpecific);
    }
    acc += rates.reversed;
    if r < acc {
        return Some(InjectedError::Reversed);
    }
    acc += rates.ui_confusion;
    if r < acc {
        return Some(InjectedError::UiConfusion);
    }
    None
}

/// One inference attempt; returns whether the final query matches the
/// target's semantics.
///
/// An error-free user behaves like the paper's study participants: when
/// the inferred query visibly returns the wrong results they provide a
/// couple more explanations before giving up. A user who made an
/// (unnoticed) formulation error is confident and stops after the first
/// try.
fn attempt<R: Rng>(
    ont: &Ontology,
    target: &UnionQuery,
    error: Option<InjectedError>,
    cfg: &StudyConfig,
    rng: &mut R,
) -> bool {
    let tries = if error.is_some() { 1 } else { 3 };
    for extra in 0..tries {
        let mut examples =
            sample_example_set(ont, target, cfg.explanations + extra, rng, cfg.prov_limit);
        if examples.is_empty() {
            return false;
        }
        if let Some(e) = error {
            examples = corrupt(ont, examples, e, rng);
        }
        let mut oracle = TargetOracle::new(target.clone());
        let result = run_session(ont, &examples, &mut oracle, rng, &cfg.session);
        if same_semantics(ont, &result.query, target) {
            return true;
        }
    }
    false
}

/// Applies an error mode to a sampled example-set.
fn corrupt<R: Rng>(
    ont: &Ontology,
    examples: ExampleSet,
    error: InjectedError,
    rng: &mut R,
) -> ExampleSet {
    let mut list: Vec<Explanation> = examples.into_iter().collect();
    match error {
        InjectedError::Incomplete => {
            // Drop a random non-essential edge from the first multi-edge
            // explanation.
            if let Some(ex) = list.iter_mut().find(|e| e.edge_count() > 1) {
                let drop_idx = rng.random_range(0..ex.edge_count());
                let kept = ex
                    .edges()
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != drop_idx)
                    .map(|(_, &e)| e);
                let sub = Subgraph::from_parts(ont, kept, [ex.distinguished()]);
                if let Ok(smaller) = Explanation::new(sub, ex.distinguished()) {
                    *ex = smaller;
                }
            }
        }
        InjectedError::OverSpecific => {
            // All explanations become copies of the first: identical
            // parts everywhere, so the inferred query keeps constants it
            // should not.
            if let Some(first) = list.first().cloned() {
                for ex in list.iter_mut().skip(1) {
                    *ex = first.clone();
                }
            }
        }
        InjectedError::Reversed => {
            // Replace one edge of the first explanation with a random
            // different edge incident to the same node (a wrong relation
            // selection in the neighborhood browser).
            if let Some(ex) = list.first_mut() {
                if let Some(&victim) = ex.edges().first() {
                    let d = ont.edge(victim);
                    let replacement = ont
                        .out_edges(d.src)
                        .iter()
                        .chain(ont.in_edges(d.src))
                        .copied()
                        .filter(|&e| e != victim)
                        .choose(rng);
                    if let Some(r) = replacement {
                        let edges = ex.edges().iter().map(|&e| if e == victim { r } else { e });
                        let sub = Subgraph::from_parts(ont, edges, [ex.distinguished()]);
                        if let Ok(changed) = Explanation::new(sub, ex.distinguished()) {
                            *ex = changed;
                        }
                    }
                }
            }
        }
        InjectedError::UiConfusion => unreachable!("handled before sampling"),
    }
    ExampleSet::from_explanations(list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::rng::StdRng;
    use questpro_query::SimpleQuery;

    fn world() -> (Ontology, Vec<UnionQuery>) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            ("paper5", "Frank"),
            ("paper5", "Gina"),
            ("paper6", "Hank"),
            ("paper6", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        for a in ["Carol", "Erdos", "Dave", "Frank", "Gina", "Hank"] {
            b.typed_node(a, "Author").unwrap();
        }
        for p in ["paper3", "paper4", "paper5", "paper6"] {
            b.typed_node(p, "Paper").unwrap();
        }
        let o = b.build();
        let mut qb = SimpleQuery::builder();
        let x = qb.var("x");
        let p = qb.var("p");
        let e = qb.constant("Erdos");
        qb.edge(p, "wb", x).edge(p, "wb", e).project(x);
        let coauthor_erdos = UnionQuery::single(qb.build().unwrap());
        (o, vec![coauthor_erdos])
    }

    #[test]
    fn error_free_study_succeeds() {
        let (o, targets) = world();
        let cfg = StudyConfig {
            users: 3,
            interactions_per_user: 2,
            errors: ErrorRates {
                incomplete: 0.0,
                over_specific: 0.0,
                reversed: 0.0,
                ui_confusion: 0.0,
                notice: 1.0,
            },
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(21);
        let report = simulate_study(&o, &targets, &cfg, &mut rng);
        assert_eq!(report.interactions.len(), 6);
        assert_eq!(report.successes(), 6);
        assert_eq!(report.failures(), 0);
    }

    #[test]
    fn ui_confusion_records_redo() {
        let (o, targets) = world();
        let cfg = StudyConfig {
            users: 1,
            interactions_per_user: 1,
            errors: ErrorRates {
                incomplete: 0.0,
                over_specific: 0.0,
                reversed: 0.0,
                ui_confusion: 1.0,
                notice: 1.0,
            },
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        let report = simulate_study(&o, &targets, &cfg, &mut rng);
        assert_eq!(report.redo_successes() + report.failures(), 1);
        assert_eq!(
            report.interactions[0].error,
            Some(InjectedError::UiConfusion)
        );
    }

    #[test]
    fn same_semantics_accepts_equal_result_sets() {
        let (o, targets) = world();
        let t = &targets[0];
        assert!(same_semantics(&o, t, t));
        let broad = {
            let mut b = SimpleQuery::builder();
            let x = b.var("x");
            let p = b.var("p");
            let y = b.var("y");
            b.edge(p, "wb", x).edge(p, "wb", y).project(x);
            UnionQuery::single(b.build().unwrap())
        };
        assert!(!same_semantics(&o, t, &broad));
    }

    #[test]
    fn corruption_modes_change_example_sets() {
        let (o, targets) = world();
        let mut rng = StdRng::seed_from_u64(9);
        let examples = sample_example_set(&o, &targets[0], 2, &mut rng, 8);
        assert_eq!(examples.len(), 2);
        let dropped = corrupt(&o, examples.clone(), InjectedError::Incomplete, &mut rng);
        let total = |s: &ExampleSet| s.iter().map(Explanation::edge_count).sum::<usize>();
        assert!(total(&dropped) < total(&examples));
        let cloned = corrupt(&o, examples.clone(), InjectedError::OverSpecific, &mut rng);
        assert_eq!(cloned.explanations()[0], cloned.explanations()[1]);
    }
}
