//! Interactive feedback for query inference (Section V of the paper).
//!
//! After the top-k inference of `questpro-core` produces candidate
//! queries, this crate drives the paper's feedback loop:
//!
//! * [`oracle`] — the *user* abstraction: something that answers "should
//!   this result, with this provenance, be in your query's output?".
//!   [`oracle::TargetOracle`] simulates a correct user holding a hidden
//!   target query (how the paper's automatic experiments validate the
//!   loop); [`oracle::NoisyOracle`] flips answers with a configured
//!   probability; [`oracle::ScriptedOracle`] replays fixed answers.
//! * [`algorithm3`] — Algorithm 3: repeatedly evaluate the difference
//!   `Q_i^all − Q_j^no` between a candidate with **all** disequalities
//!   and one with **none** (so an answer disqualifies every disequality
//!   form of the loser at once), show a sampled result *with its
//!   provenance*, and eliminate candidates until one remains.
//! * [`refine`] — the disequality refinement loop run on the surviving
//!   query pattern: drop disequalities the user does not actually want.
//! * [`session`] — the end-to-end pipeline: explanations → top-k →
//!   `Q^all` → feedback → refinement.
//! * [`study`] — a simulation of the paper's Section VI-C user study,
//!   with the error modes the paper reports (incomplete explanations,
//!   over-specific explanations, reversed edges, redos).

pub mod algorithm3;
pub mod oracle;
pub mod refine;
pub mod session;
pub mod study;

pub use algorithm3::{choose_query, FeedbackConfig, FeedbackOutcome, QuestionRecord};
pub use oracle::{NoisyOracle, Oracle, ScriptedOracle, TargetOracle};
pub use refine::refine_diseqs;
pub use session::{
    run_session, InteractiveSession, PendingQuestion, Phase, RoundLog, SessionConfig, SessionError,
    SessionResult,
};
pub use study::{simulate_study, StudyConfig, StudyOutcome, StudyReport};
