//! Algorithm 3: choosing one query via provenance-backed questions.
//!
//! Candidates are compared pairwise. For a pair `(Q_i, Q_j)` we evaluate
//! the difference `Q_i^all − Q_j^no` — `Q_i` with **all** its inferred
//! disequalities against `Q_j` with **none** — so that a user answer
//! disqualifies every disequality-form of the losing pattern at once
//! (Section V, "we want to ensure that users do not disqualify a query
//! because of extra disequalities"). A sampled difference result is
//! bound back into `Q_i^all` to obtain its provenance, and the user's
//! yes/no removes `Q_j` or `Q_i` respectively. Pairs whose differences
//! are empty both ways are *indistinguishable on this ontology* and are
//! merged by keeping the earlier-ranked candidate.

use std::collections::BTreeSet;

use questpro_graph::rng::{IteratorRandom, Rng};

use questpro_core::with_all_diseqs;
use questpro_engine::{evaluate_union, provenance_of_union};
use questpro_graph::{ExampleSet, NodeId, Ontology, Subgraph};
use questpro_query::UnionQuery;

use crate::oracle::Oracle;

/// Configuration of the feedback loop.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackConfig {
    /// How many distinct provenance graphs to enumerate when sampling a
    /// witness.
    pub prov_limit: usize,
    /// Hard cap on the number of questions asked.
    pub max_questions: usize,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        Self {
            prov_limit: 8,
            max_questions: 64,
        }
    }
}

/// One asked question and its answer.
#[derive(Debug, Clone)]
pub struct QuestionRecord {
    /// The sampled difference result shown to the user.
    pub result: NodeId,
    /// The provenance graph shown alongside it.
    pub provenance: Subgraph,
    /// Index (into the original candidate list) of the query whose
    /// difference produced the witness.
    pub kept_candidate: usize,
    /// Index of the candidate that was eliminated by the answer.
    pub eliminated_candidate: usize,
    /// The user's answer.
    pub answer: bool,
}

/// Outcome of the feedback loop.
#[derive(Debug, Clone)]
pub struct FeedbackOutcome {
    /// The surviving query, in its all-disequalities form.
    pub chosen: UnionQuery,
    /// Index of the survivor in the original candidate list.
    pub chosen_index: usize,
    /// Transcript of the questions asked.
    pub transcript: Vec<QuestionRecord>,
}

/// Runs Algorithm 3 over ranked candidates (best first).
///
/// `examples` is the example-set the candidates were inferred from; it
/// drives disequality inference for the `Q^all` forms.
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn choose_query<O: Oracle, R: Rng>(
    ont: &Ontology,
    candidates: &[UnionQuery],
    examples: &ExampleSet,
    oracle: &mut O,
    rng: &mut R,
    cfg: &FeedbackConfig,
) -> FeedbackOutcome {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let _t = questpro_trace::span("feedback.choose_query");
    // Pre-compute both forms for every candidate.
    let alls: Vec<UnionQuery> = candidates
        .iter()
        .map(|q| with_all_diseqs(ont, q, examples))
        .collect();
    let nones: Vec<UnionQuery> = candidates.iter().map(|q| q.without_diseqs()).collect();

    // Result sets are needed repeatedly across pairs; evaluate each
    // candidate form at most once (the paper's Section V concern about
    // not re-running full provenance-tracked evaluations, taken one
    // step further).
    let mut cache = ResultCache::new(candidates.len());

    // Live candidate indexes, best-ranked first.
    let mut live: Vec<usize> = (0..candidates.len()).collect();
    let mut transcript = Vec::new();

    while live.len() > 1 && transcript.len() < cfg.max_questions {
        let _q = questpro_trace::span("feedback.question");
        // Take the two best-ranked live candidates and try both
        // difference directions.
        let (i, j) = (live[0], live[1]);
        let witness = cache
            .witness(ont, &alls, &nones, i, j, rng, cfg.prov_limit)
            .map(|w| (i, j, w))
            .or_else(|| {
                cache
                    .witness(ont, &alls, &nones, j, i, rng, cfg.prov_limit)
                    .map(|w| (j, i, w))
            });
        match witness {
            Some((keep, other, (res, prov))) => {
                let answer = oracle.accept(ont, res, &prov);
                let eliminated = if answer { other } else { keep };
                transcript.push(QuestionRecord {
                    result: res,
                    provenance: prov,
                    kept_candidate: if answer { keep } else { other },
                    eliminated_candidate: eliminated,
                    answer,
                });
                live.retain(|&c| c != eliminated);
            }
            None => {
                // Indistinguishable on this ontology: keep the
                // better-ranked candidate.
                live.remove(1);
            }
        }
    }

    questpro_trace::add("questions", transcript.len() as u64);
    let chosen_index = live[0];
    FeedbackOutcome {
        chosen: alls[chosen_index].clone(),
        chosen_index,
        transcript,
    }
}

/// Lazily evaluated result sets of the `Q^all` and `Q^no` candidate
/// forms, so each is evaluated at most once across all questions.
struct ResultCache {
    alls: Vec<Option<BTreeSet<NodeId>>>,
    nones: Vec<Option<BTreeSet<NodeId>>>,
}

impl ResultCache {
    fn new(n: usize) -> Self {
        Self {
            alls: vec![None; n],
            nones: vec![None; n],
        }
    }

    /// Samples a witness of `alls[i] − nones[j]`, with its provenance
    /// w.r.t. `alls[i]`.
    #[allow(clippy::too_many_arguments)]
    fn witness<R: Rng>(
        &mut self,
        ont: &Ontology,
        alls: &[UnionQuery],
        nones: &[UnionQuery],
        i: usize,
        j: usize,
        rng: &mut R,
        prov_limit: usize,
    ) -> Option<(NodeId, Subgraph)> {
        if self.alls[i].is_none() {
            self.alls[i] = Some(evaluate_union(ont, &alls[i]));
        }
        if self.nones[j].is_none() {
            self.nones[j] = Some(evaluate_union(ont, &nones[j]));
        }
        let ra = self.alls[i].as_ref().expect("just filled");
        let rb = self.nones[j].as_ref().expect("just filled");
        let res = ra.difference(rb).copied().choose(rng)?;
        let img = provenance_of_union(ont, &alls[i], res, Some(prov_limit.max(1)))
            .into_iter()
            .choose(rng)
            .expect("a result of Q^all has provenance w.r.t. Q^all");
        Some((res, img))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{ScriptedOracle, TargetOracle};
    use questpro_graph::rng::StdRng;
    use questpro_graph::Explanation;
    use questpro_query::SimpleQuery;

    /// Ontology with Erdos co-authors and unrelated authors, plus types.
    fn world() -> (Ontology, ExampleSet) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            ("paper5", "Frank"),
            ("paper5", "Gina"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        for a in ["Carol", "Erdos", "Dave", "Frank", "Gina"] {
            b.typed_node(a, "Author").unwrap();
        }
        for p in ["paper3", "paper4", "paper5"] {
            b.typed_node(p, "Paper").unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        (o, ExampleSet::from_explanations(vec![e1, e2]))
    }

    fn coauthors_of_erdos() -> UnionQuery {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        UnionQuery::single(b.build().unwrap())
    }

    fn coauthors_of_anyone() -> UnionQuery {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let other = b.var("other");
        b.edge(p, "wb", x).edge(p, "wb", other).project(x);
        UnionQuery::single(b.build().unwrap())
    }

    #[test]
    fn oracle_steers_to_the_intended_query() {
        let (o, examples) = world();
        let candidates = vec![coauthors_of_anyone(), coauthors_of_erdos()];
        // The intended query: co-authors of Erdos specifically.
        let mut oracle = TargetOracle::new(coauthors_of_erdos());
        let mut rng = StdRng::seed_from_u64(5);
        let out = choose_query(
            &o,
            &candidates,
            &examples,
            &mut oracle,
            &mut rng,
            &FeedbackConfig::default(),
        );
        assert_eq!(out.chosen_index, 1);
        assert_eq!(out.transcript.len(), 1);
        // The question showed some result of "co-authors of anyone" that
        // is not a co-author of Erdos (Frank or Gina), and the oracle
        // said no.
        let rec = &out.transcript[0];
        assert!(!rec.answer);
        let name = o.value_str(rec.result);
        assert!(["Frank", "Gina"].contains(&name));
    }

    #[test]
    fn yes_answer_keeps_the_broader_query() {
        let (o, examples) = world();
        let candidates = vec![coauthors_of_anyone(), coauthors_of_erdos()];
        // Intended: all co-authors — the broader candidate.
        let mut oracle = TargetOracle::new(coauthors_of_anyone());
        let mut rng = StdRng::seed_from_u64(5);
        let out = choose_query(
            &o,
            &candidates,
            &examples,
            &mut oracle,
            &mut rng,
            &FeedbackConfig::default(),
        );
        assert_eq!(out.chosen_index, 0);
        assert!(out.transcript[0].answer);
    }

    #[test]
    fn indistinguishable_candidates_default_to_rank() {
        let (o, examples) = world();
        // Two copies of the same query: both differences are empty.
        let candidates = vec![coauthors_of_erdos(), coauthors_of_erdos()];
        let mut oracle = ScriptedOracle::new(vec![]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = choose_query(
            &o,
            &candidates,
            &examples,
            &mut oracle,
            &mut rng,
            &FeedbackConfig::default(),
        );
        assert_eq!(out.chosen_index, 0);
        assert!(out.transcript.is_empty());
    }

    #[test]
    fn single_candidate_needs_no_questions() {
        let (o, examples) = world();
        let candidates = vec![coauthors_of_erdos()];
        let mut oracle = ScriptedOracle::new(vec![]);
        let mut rng = StdRng::seed_from_u64(1);
        let out = choose_query(
            &o,
            &candidates,
            &examples,
            &mut oracle,
            &mut rng,
            &FeedbackConfig::default(),
        );
        assert_eq!(out.chosen_index, 0);
        assert!(out.transcript.is_empty());
        // The chosen form carries the inferred disequalities.
        assert!(out.chosen.diseq_count() > 0);
    }

    #[test]
    fn question_cap_is_respected() {
        let (o, examples) = world();
        let candidates = vec![
            coauthors_of_anyone(),
            coauthors_of_erdos(),
            UnionQuery::new(vec![
                coauthors_of_anyone().into_branches().remove(0),
                coauthors_of_erdos().into_branches().remove(0),
            ])
            .unwrap(),
        ];
        let mut oracle = TargetOracle::new(coauthors_of_erdos());
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = FeedbackConfig {
            max_questions: 1,
            ..Default::default()
        };
        let out = choose_query(&o, &candidates, &examples, &mut oracle, &mut rng, &cfg);
        assert!(out.transcript.len() <= 1);
    }
}
