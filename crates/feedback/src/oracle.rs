//! User oracles: who answers the feedback questions.
//!
//! The paper asks human users whether a sampled result — shown **with its
//! provenance graph** — belongs in their intended query's output. For
//! automatic experiments we substitute simulated users:
//!
//! * [`TargetOracle`] — a perfectly accurate user holding a hidden target
//!   query: it accepts a result iff the target produces it *and* the
//!   displayed provenance contains a valid derivation of it under the
//!   target (the "rationale" check of Example 5.3);
//! * [`NoisyOracle`] — wraps another oracle and flips its answer with a
//!   fixed probability (models inattentive users);
//! * [`ScriptedOracle`] — replays a fixed list of answers (for tests and
//!   for reproducing specific interaction traces).

use std::collections::BTreeSet;

use questpro_graph::rng::Rng;

use questpro_engine::{evaluate_union, Matcher};
use questpro_graph::{NodeId, Ontology, Subgraph};
use questpro_query::UnionQuery;

/// Something that can answer a feedback question.
pub trait Oracle {
    /// Should `res`, justified by `provenance`, be in the intended
    /// query's output?
    fn accept(&mut self, ont: &Ontology, res: NodeId, provenance: &Subgraph) -> bool;
}

/// A correct simulated user holding a hidden target query.
#[derive(Debug, Clone)]
pub struct TargetOracle {
    target: UnionQuery,
    results: Option<BTreeSet<NodeId>>,
    /// When true (default), the shown provenance must contain a valid
    /// target derivation of the result; when false, membership of the
    /// result alone decides.
    pub check_provenance: bool,
}

impl TargetOracle {
    /// Creates an oracle for `target`.
    pub fn new(target: UnionQuery) -> Self {
        Self {
            target,
            results: None,
            check_provenance: true,
        }
    }

    /// An oracle that only checks result membership, ignoring the shown
    /// provenance.
    pub fn results_only(target: UnionQuery) -> Self {
        Self {
            target,
            results: None,
            check_provenance: false,
        }
    }

    /// The hidden target query.
    pub fn target(&self) -> &UnionQuery {
        &self.target
    }

    fn results(&mut self, ont: &Ontology) -> &BTreeSet<NodeId> {
        if self.results.is_none() {
            self.results = Some(evaluate_union(ont, &self.target));
        }
        self.results.as_ref().expect("just computed")
    }
}

impl Oracle for TargetOracle {
    fn accept(&mut self, ont: &Ontology, res: NodeId, provenance: &Subgraph) -> bool {
        if !self.results(ont).contains(&res) {
            return false;
        }
        if !self.check_provenance {
            return true;
        }
        // The rationale must demonstrate membership: some target branch
        // matches inside the displayed subgraph and yields `res`.
        self.target.branches().iter().any(|branch| {
            Matcher::new(ont, branch)
                .bind(branch.projected(), res)
                .restrict(provenance)
                .exists()
        })
    }
}

/// Wraps an oracle, flipping its answers with probability `error_rate`.
pub struct NoisyOracle<O, R> {
    inner: O,
    rng: R,
    /// Probability in `[0, 1]` of flipping each answer.
    pub error_rate: f64,
    /// Number of answers that were flipped.
    pub flips: usize,
}

impl<O: Oracle, R: Rng> NoisyOracle<O, R> {
    /// Creates a noisy wrapper.
    pub fn new(inner: O, rng: R, error_rate: f64) -> Self {
        Self {
            inner,
            rng,
            error_rate,
            flips: 0,
        }
    }
}

impl<O: Oracle, R: Rng> Oracle for NoisyOracle<O, R> {
    fn accept(&mut self, ont: &Ontology, res: NodeId, provenance: &Subgraph) -> bool {
        let honest = self.inner.accept(ont, res, provenance);
        if self.rng.random_bool(self.error_rate.clamp(0.0, 1.0)) {
            self.flips += 1;
            !honest
        } else {
            honest
        }
    }
}

/// Replays a fixed sequence of answers; panics when exhausted.
#[derive(Debug, Clone)]
pub struct ScriptedOracle {
    answers: Vec<bool>,
    next: usize,
}

impl ScriptedOracle {
    /// Creates an oracle that will return `answers` in order.
    pub fn new(answers: Vec<bool>) -> Self {
        Self { answers, next: 0 }
    }

    /// How many answers were consumed.
    pub fn asked(&self) -> usize {
        self.next
    }
}

impl Oracle for ScriptedOracle {
    fn accept(&mut self, _ont: &Ontology, _res: NodeId, _prov: &Subgraph) -> bool {
        let a = *self
            .answers
            .get(self.next)
            .expect("scripted oracle ran out of answers");
        self.next += 1;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::rng::StdRng;
    use questpro_query::SimpleQuery;

    fn world() -> Ontology {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Frank"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        b.build()
    }

    fn coauthors_of_erdos() -> UnionQuery {
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        UnionQuery::single(b.build().unwrap())
    }

    #[test]
    fn target_oracle_accepts_members_with_valid_provenance() {
        let o = world();
        let mut oracle = TargetOracle::new(coauthors_of_erdos());
        let carol = o.node_by_value("Carol").unwrap();
        // Provenance: paper3's two edges — a valid derivation.
        let sub = Subgraph::from_edges(&o, o.edge_ids().take(2));
        assert!(oracle.accept(&o, carol, &sub));
    }

    #[test]
    fn target_oracle_rejects_non_members() {
        let o = world();
        let mut oracle = TargetOracle::new(coauthors_of_erdos());
        let frank = o.node_by_value("Frank").unwrap();
        let sub = Subgraph::from_edges(&o, o.edge_ids());
        assert!(!oracle.accept(&o, frank, &sub));
    }

    #[test]
    fn target_oracle_rejects_wrong_rationale() {
        let o = world();
        let mut oracle = TargetOracle::new(coauthors_of_erdos());
        let carol = o.node_by_value("Carol").unwrap();
        // Provenance showing only paper4's edges: no derivation of Carol.
        let paper4_edges: Vec<_> = o
            .edge_ids()
            .filter(|&e| o.value_str(o.edge(e).src) == "paper4")
            .collect();
        let sub = Subgraph::from_edges(&o, paper4_edges);
        assert!(!oracle.accept(&o, carol, &sub));
        // A results-only oracle accepts regardless of the rationale.
        let mut lax = TargetOracle::results_only(coauthors_of_erdos());
        assert!(lax.accept(&o, carol, &sub));
    }

    #[test]
    fn noisy_oracle_flips_at_rate_one() {
        let o = world();
        let inner = TargetOracle::new(coauthors_of_erdos());
        let mut noisy = NoisyOracle::new(inner, StdRng::seed_from_u64(1), 1.0);
        let carol = o.node_by_value("Carol").unwrap();
        let sub = Subgraph::from_edges(&o, o.edge_ids().take(2));
        assert!(!noisy.accept(&o, carol, &sub)); // flipped
        assert_eq!(noisy.flips, 1);
    }

    #[test]
    fn scripted_oracle_replays() {
        let o = world();
        let carol = o.node_by_value("Carol").unwrap();
        let sub = Subgraph::single_node(carol);
        let mut s = ScriptedOracle::new(vec![true, false]);
        assert!(s.accept(&o, carol, &sub));
        assert!(!s.accept(&o, carol, &sub));
        assert_eq!(s.asked(), 2);
    }
}
