//! End-to-end inference sessions: explanations in, one query out.
//!
//! A session chains the full QuestPro pipeline of Figure 5:
//!
//! 1. top-k inference over the example-set (`questpro-core`);
//! 2. augmentation of every candidate with all admissible disequalities;
//! 3. Algorithm 3's provenance-backed elimination down to one query;
//! 4. optionally, disequality refinement of the survivor.

use std::collections::BTreeSet;
use std::fmt;

use questpro_graph::rng::{IteratorRandom, Rng, StdRng};

use questpro_core::{infer_top_k, infer_top_k_robust, with_all_diseqs, InferenceStats, TopKConfig};
use questpro_engine::{evaluate_union, provenance_of_union};
use questpro_graph::{exformat, ExampleSet, NodeId, Ontology, Subgraph};
use questpro_query::{sparql, QueryNodeId, UnionQuery};
use questpro_wire::Json;

use crate::algorithm3::{choose_query, FeedbackConfig, QuestionRecord};
use crate::oracle::Oracle;
use crate::refine::{drop_diseq, refine_diseqs};

/// Configuration of a full session.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionConfig {
    /// Top-k inference parameters.
    pub topk: TopKConfig,
    /// Feedback-loop parameters.
    pub feedback: FeedbackConfig,
    /// Whether to run disequality refinement after candidate selection.
    pub refine: bool,
    /// Whether to diagnose and set aside suspect explanations (wrong
    /// provenance, Section VIII future work) before inference.
    pub robust: bool,
}

/// Result of a full session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The final query (with the user-approved disequalities).
    pub query: UnionQuery,
    /// The candidates that were produced by top-k inference.
    pub candidates: Vec<UnionQuery>,
    /// Inference instrumentation.
    pub stats: InferenceStats,
    /// Questions asked while choosing between candidates.
    pub selection_transcript: Vec<QuestionRecord>,
    /// Questions asked during disequality refinement.
    pub refinement_questions: usize,
    /// Indexes of explanations set aside as suspect (empty unless
    /// [`SessionConfig::robust`] is on and something was filtered).
    pub suspect_examples: Vec<usize>,
}

/// Runs the full pipeline.
///
/// # Panics
/// Panics if `examples` is empty.
pub fn run_session<O: Oracle, R: Rng>(
    ont: &Ontology,
    examples: &ExampleSet,
    oracle: &mut O,
    rng: &mut R,
    cfg: &SessionConfig,
) -> SessionResult {
    let (candidates, suspect_examples, stats) = if cfg.robust {
        infer_top_k_robust(ont, examples, &cfg.topk)
    } else {
        let (c, s) = infer_top_k(ont, examples, &cfg.topk);
        (c, Vec::new(), s)
    };
    // Disequality inference and feedback run against the explanations
    // that were actually used.
    let kept: questpro_graph::ExampleSet = examples
        .iter()
        .enumerate()
        .filter(|(i, _)| !suspect_examples.contains(i))
        .map(|(_, e)| e.clone())
        .collect();
    let outcome = choose_query(ont, &candidates, &kept, oracle, rng, &cfg.feedback);
    let (query, refinement_questions) = if cfg.refine {
        refine_diseqs(ont, &outcome.chosen, oracle, rng, &cfg.feedback)
    } else {
        (outcome.chosen, 0)
    };
    SessionResult {
        query,
        candidates,
        stats,
        selection_transcript: outcome.transcript,
        refinement_questions,
        suspect_examples,
    }
}

// ---------------------------------------------------------------------
// Incremental sessions
// ---------------------------------------------------------------------

/// Errors of the incremental session API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The example-set was empty (inference needs at least one).
    EmptyExamples,
    /// Inference produced no candidate (robust mode set every
    /// explanation aside).
    NoCandidates,
    /// `answer` was called with no question pending.
    NothingPending,
    /// A snapshot could not be decoded against this ontology.
    BadSnapshot(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::EmptyExamples => write!(f, "the example-set is empty"),
            SessionError::NoCandidates => write!(f, "inference produced no candidate query"),
            SessionError::NothingPending => write!(f, "no question is pending"),
            SessionError::BadSnapshot(m) => write!(f, "bad session snapshot: {m}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Where an [`InteractiveSession`] stands in the Figure 5 pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Algorithm 3: eliminating candidates pairwise.
    Selecting,
    /// Disequality refinement of the surviving query.
    Refining,
    /// Finished; [`InteractiveSession::final_query`] is available.
    Done,
}

/// A question awaiting the user's yes/no answer.
#[derive(Debug, Clone)]
pub enum PendingQuestion {
    /// An Algorithm 3 elimination question: "should `result`, justified
    /// by `provenance`, be in the output?" — *yes* eliminates `other`,
    /// *no* eliminates `keep`.
    Select {
        /// The sampled difference result shown to the user.
        result: NodeId,
        /// Its provenance w.r.t. the `keep` candidate's `Q^all` form.
        provenance: Subgraph,
        /// Candidate whose difference produced the witness.
        keep: usize,
        /// The candidate eliminated on *yes*.
        other: usize,
    },
    /// A refinement question: "should the extra results admitted by
    /// dropping this disequality be included?" — *yes* drops the
    /// disequality, *no* approves (keeps) it.
    Refine {
        /// The sampled extra result.
        result: NodeId,
        /// Its provenance w.r.t. the diseq-free candidate.
        provenance: Subgraph,
        /// Branch index of the disequality under question.
        branch: usize,
        /// The disequality pair inside that branch.
        pair: (QueryNodeId, QueryNodeId),
    },
}

impl PendingQuestion {
    /// The result the user is asked about.
    pub fn result(&self) -> NodeId {
        match self {
            PendingQuestion::Select { result, .. } | PendingQuestion::Refine { result, .. } => {
                *result
            }
        }
    }

    /// The provenance graph shown alongside the result.
    pub fn provenance(&self) -> &Subgraph {
        match self {
            PendingQuestion::Select { provenance, .. }
            | PendingQuestion::Refine { provenance, .. } => provenance,
        }
    }
}

/// One answered question, as telemetry sees it.
///
/// Everything here except `wall_ns` is deterministic for a fixed seed
/// and answer sequence; wall clocks are telemetry only and never enter
/// a determinism oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundLog {
    /// True for a refinement question, false for a selection one.
    pub refine: bool,
    /// The user's verdict.
    pub answer: bool,
    /// Live candidate-pool size after the answer was applied.
    pub pool: usize,
    /// Wall nanoseconds spent applying the answer (including advancing
    /// to the next question).
    pub wall_ns: u64,
}

/// The paper's feedback loop as a resumable state machine.
///
/// [`run_session`] drives the whole pipeline against an [`Oracle`] in
/// one call — the right shape for a CLI process that owns its user. A
/// server cannot block a worker thread on a human: `questpro-server`
/// holds one `InteractiveSession` per remote user and feeds answers in
/// as they arrive over HTTP. The machine replays **exactly** the
/// random-draw sequence of `choose_query` + `refine_diseqs`, so a
/// session driven step-by-step produces byte-identical output to the
/// one-shot path under the same seed and answers (asserted by the
/// `interactive_matches_one_shot` test).
///
/// Sessions survive process restarts: [`InteractiveSession::snapshot`]
/// serializes the full state (including the RNG position) to wire JSON
/// and [`InteractiveSession::restore`] resumes it against the same
/// ontology.
#[derive(Debug, Clone)]
pub struct InteractiveSession {
    cfg: SessionConfig,
    seed: u64,
    /// The explanations actually used (post robust filtering).
    examples: ExampleSet,
    suspect: Vec<usize>,
    candidates: Vec<UnionQuery>,
    alls: Vec<UnionQuery>,
    nones: Vec<UnionQuery>,
    all_results: Vec<Option<BTreeSet<NodeId>>>,
    none_results: Vec<Option<BTreeSet<NodeId>>>,
    live: Vec<usize>,
    transcript: Vec<QuestionRecord>,
    stats: InferenceStats,
    rng: StdRng,
    phase: Phase,
    pending: Option<PendingQuestion>,
    chosen_index: Option<usize>,
    /// Refinement working query (`Some` while refining and when done
    /// after a refining phase).
    current: Option<UnionQuery>,
    approved: Vec<(usize, (QueryNodeId, QueryNodeId))>,
    refine_questions: usize,
    final_query: Option<UnionQuery>,
    /// Telemetry: one entry per answered question.
    rounds_log: Vec<RoundLog>,
    /// Telemetry: cumulative wall nanoseconds across `start` and every
    /// `answer` (survives snapshot/restore; restore itself is unpaid).
    wall_ns: u64,
}

impl InteractiveSession {
    /// Runs top-k inference and advances to the first question (or all
    /// the way to `Done` when one candidate wins outright).
    ///
    /// # Errors
    /// [`SessionError::EmptyExamples`] when `examples` is empty,
    /// [`SessionError::NoCandidates`] when inference returns nothing.
    pub fn start(
        ont: &Ontology,
        examples: &ExampleSet,
        cfg: &SessionConfig,
        seed: u64,
    ) -> Result<Self, SessionError> {
        let _t = questpro_trace::span("feedback.session.start");
        let t0 = std::time::Instant::now();
        if examples.is_empty() {
            return Err(SessionError::EmptyExamples);
        }
        let (candidates, suspect, stats) = if cfg.robust {
            infer_top_k_robust(ont, examples, &cfg.topk)
        } else {
            let (c, s) = infer_top_k(ont, examples, &cfg.topk);
            (c, Vec::new(), s)
        };
        if candidates.is_empty() {
            return Err(SessionError::NoCandidates);
        }
        let kept: ExampleSet = examples
            .iter()
            .enumerate()
            .filter(|(i, _)| !suspect.contains(i))
            .map(|(_, e)| e.clone())
            .collect();
        let n = candidates.len();
        let alls: Vec<UnionQuery> = candidates
            .iter()
            .map(|q| with_all_diseqs(ont, q, &kept))
            .collect();
        let nones: Vec<UnionQuery> = candidates.iter().map(|q| q.without_diseqs()).collect();
        let mut s = Self {
            cfg: *cfg,
            seed,
            examples: kept,
            suspect,
            candidates,
            alls,
            nones,
            all_results: vec![None; n],
            none_results: vec![None; n],
            live: (0..n).collect(),
            transcript: Vec::new(),
            stats,
            rng: StdRng::seed_from_u64(seed),
            phase: Phase::Selecting,
            pending: None,
            chosen_index: None,
            current: None,
            approved: Vec::new(),
            refine_questions: 0,
            final_query: None,
            rounds_log: Vec::new(),
            wall_ns: 0,
        };
        s.advance(ont);
        s.wall_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if s.is_done() {
            s.log_session_summary();
        }
        if questpro_log::enabled(questpro_log::Level::Info) {
            questpro_log::emit(
                questpro_log::Level::Info,
                "feedback.session",
                "interactive session started",
                vec![
                    ("candidates", s.candidates.len().into()),
                    ("examples", s.examples.len().into()),
                    ("suspect_examples", s.suspect.len().into()),
                    ("seed", seed.into()),
                ],
            );
        }
        Ok(s)
    }

    /// Answers the pending question and advances to the next one (or to
    /// `Done`).
    ///
    /// # Errors
    /// [`SessionError::NothingPending`] when no question is pending.
    pub fn answer(&mut self, ont: &Ontology, answer: bool) -> Result<(), SessionError> {
        let _t = questpro_trace::span("feedback.session.answer");
        let t0 = std::time::Instant::now();
        let Some(pending) = self.pending.take() else {
            return Err(SessionError::NothingPending);
        };
        let kind = match pending {
            PendingQuestion::Select { .. } => "select",
            PendingQuestion::Refine { .. } => "refine",
        };
        match pending {
            PendingQuestion::Select {
                result,
                provenance,
                keep,
                other,
            } => {
                let eliminated = if answer { other } else { keep };
                self.transcript.push(QuestionRecord {
                    result,
                    provenance,
                    kept_candidate: if answer { keep } else { other },
                    eliminated_candidate: eliminated,
                    answer,
                });
                self.live.retain(|&c| c != eliminated);
            }
            PendingQuestion::Refine { branch, pair, .. } => {
                let current = self.current.as_ref().expect("refining implies current");
                if answer {
                    self.current = Some(drop_diseq(current, branch, pair));
                } else {
                    self.approved.push((branch, pair));
                }
            }
        }
        self.advance(ont);
        let round_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.wall_ns = self.wall_ns.saturating_add(round_ns);
        self.rounds_log.push(RoundLog {
            refine: kind == "refine",
            answer,
            pool: self.live.len(),
            wall_ns: round_ns,
        });
        if self.is_done() {
            self.log_session_summary();
        }
        if questpro_log::enabled(questpro_log::Level::Info) {
            questpro_log::emit(
                questpro_log::Level::Info,
                "feedback.session",
                "feedback answer applied",
                vec![
                    ("question", kind.into()),
                    ("answer", answer.into()),
                    ("live_candidates", self.live.len().into()),
                    ("done", matches!(self.phase, Phase::Done).into()),
                ],
            );
        }
        Ok(())
    }

    /// Drives the state machine forward until a question blocks or the
    /// pipeline finishes; mirrors `choose_query` / `refine_diseqs` draw
    /// for draw.
    fn advance(&mut self, ont: &Ontology) {
        self.pending = None;
        loop {
            match self.phase {
                Phase::Selecting => {
                    if self.live.len() > 1
                        && self.transcript.len() < self.cfg.feedback.max_questions
                    {
                        let (i, j) = (self.live[0], self.live[1]);
                        let witness = self
                            .witness(ont, i, j)
                            .map(|w| (i, j, w))
                            .or_else(|| self.witness(ont, j, i).map(|w| (j, i, w)));
                        match witness {
                            Some((keep, other, (result, provenance))) => {
                                self.pending = Some(PendingQuestion::Select {
                                    result,
                                    provenance,
                                    keep,
                                    other,
                                });
                                return;
                            }
                            None => {
                                // Indistinguishable on this ontology.
                                self.live.remove(1);
                            }
                        }
                    } else {
                        let chosen = self.live[0];
                        self.chosen_index = Some(chosen);
                        let q = self.alls[chosen].clone();
                        if self.cfg.refine {
                            self.current = Some(q);
                            self.phase = Phase::Refining;
                        } else {
                            self.final_query = Some(q);
                            self.phase = Phase::Done;
                            return;
                        }
                    }
                }
                Phase::Refining => {
                    let current = self.current.clone().expect("refining implies current");
                    if self.refine_questions >= self.cfg.feedback.max_questions {
                        self.final_query = Some(current);
                        self.phase = Phase::Done;
                        return;
                    }
                    let mut asked = false;
                    'scan: for b in 0..current.len() {
                        let diseqs: Vec<_> = current.branches()[b].diseqs().to_vec();
                        for &pair in &diseqs {
                            if self.approved.contains(&(b, pair)) {
                                continue;
                            }
                            let candidate = drop_diseq(&current, b, pair);
                            match questpro_engine::difference_with_witness(
                                ont,
                                &candidate,
                                &current,
                                &mut self.rng,
                                self.cfg.feedback.prov_limit,
                            ) {
                                Some((result, provenance)) => {
                                    self.refine_questions += 1;
                                    self.pending = Some(PendingQuestion::Refine {
                                        result,
                                        provenance,
                                        branch: b,
                                        pair,
                                    });
                                    asked = true;
                                    break 'scan;
                                }
                                None => {
                                    // Unobservable on this ontology.
                                    self.approved.push((b, pair));
                                }
                            }
                        }
                    }
                    if asked {
                        return;
                    }
                    self.final_query = Some(current);
                    self.phase = Phase::Done;
                    return;
                }
                Phase::Done => return,
            }
        }
    }

    /// Samples a witness of `alls[i] − nones[j]` with its provenance,
    /// caching the result sets like `choose_query` does.
    fn witness(&mut self, ont: &Ontology, i: usize, j: usize) -> Option<(NodeId, Subgraph)> {
        if self.all_results[i].is_none() {
            self.all_results[i] = Some(evaluate_union(ont, &self.alls[i]));
        }
        if self.none_results[j].is_none() {
            self.none_results[j] = Some(evaluate_union(ont, &self.nones[j]));
        }
        let ra = self.all_results[i].as_ref().expect("just filled");
        let rb = self.none_results[j].as_ref().expect("just filled");
        let res = ra.difference(rb).copied().choose(&mut self.rng)?;
        let img = provenance_of_union(
            ont,
            &self.alls[i],
            res,
            Some(self.cfg.feedback.prov_limit.max(1)),
        )
        .into_iter()
        .choose(&mut self.rng)
        .expect("a result of Q^all has provenance w.r.t. Q^all");
        Some((res, img))
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Whether the pipeline has finished.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The question awaiting an answer, if any.
    pub fn pending(&self) -> Option<&PendingQuestion> {
        self.pending.as_ref()
    }

    /// The candidates produced by top-k inference, in rank order.
    pub fn candidates(&self) -> &[UnionQuery] {
        &self.candidates
    }

    /// Indexes of candidates still alive in the elimination.
    pub fn live(&self) -> &[usize] {
        &self.live
    }

    /// The questions asked and answered so far (selection phase).
    pub fn transcript(&self) -> &[QuestionRecord] {
        &self.transcript
    }

    /// Number of refinement questions asked so far.
    pub fn refine_questions(&self) -> usize {
        self.refine_questions
    }

    /// Inference instrumentation of the top-k run.
    pub fn stats(&self) -> &InferenceStats {
        &self.stats
    }

    /// Explanations set aside as suspect (robust mode).
    pub fn suspect_examples(&self) -> &[usize] {
        &self.suspect
    }

    /// Telemetry round log: one entry per answered question.
    pub fn rounds_log(&self) -> &[RoundLog] {
        &self.rounds_log
    }

    /// Cumulative wall nanoseconds spent in `start` and `answer`.
    pub fn wall_ns(&self) -> u64 {
        self.wall_ns
    }

    /// The info-level session summary, emitted exactly once: on the
    /// transition to [`Phase::Done`].
    fn log_session_summary(&self) {
        if !questpro_log::enabled(questpro_log::Level::Info) {
            return;
        }
        let yes = self.rounds_log.iter().filter(|r| r.answer).count();
        questpro_log::emit(
            questpro_log::Level::Info,
            "feedback.session",
            "session converged",
            vec![
                ("rounds", self.rounds_log.len().into()),
                (
                    "questions",
                    (self.transcript.len() + self.refine_questions).into(),
                ),
                ("yes", yes.into()),
                ("no", (self.rounds_log.len() - yes).into()),
                ("candidates", self.candidates.len().into()),
                ("wall_us", (self.wall_ns / 1_000).into()),
            ],
        );
    }

    /// Packages this session as a [`questpro_telemetry::SessionRecord`]
    /// for the aggregator. The session does not know its own pin or
    /// trace — the caller (server, CLI, bench) supplies the ontology
    /// name, pinned version, terminal outcome, and trace ID.
    pub fn telemetry_record(
        &self,
        ontology: &str,
        version: u64,
        outcome: questpro_telemetry::Outcome,
        trace_id: u64,
    ) -> questpro_telemetry::SessionRecord {
        let yes = self.rounds_log.iter().filter(|r| r.answer).count() as u64;
        questpro_telemetry::SessionRecord {
            trace_id,
            ontology: ontology.to_string(),
            version,
            outcome,
            rounds: self.rounds_log.len() as u64,
            questions: (self.transcript.len() + self.refine_questions) as u64,
            yes,
            no: self.rounds_log.len() as u64 - yes,
            pool_sizes: self.rounds_log.iter().map(|r| r.pool as u64).collect(),
            round_wall_ns: self.rounds_log.iter().map(|r| r.wall_ns).collect(),
            wall_ns: self.wall_ns,
            consistency_checks: self.stats.consistency_checks as u64,
            consistency_hits: self.stats.consistency_cache_hits as u64,
            merge_lookups: self.stats.merge_cache_lookups() as u64,
            merge_hits: self.stats.merge_cache_hits as u64,
        }
    }

    /// The final query, once [`InteractiveSession::is_done`].
    pub fn final_query(&self) -> Option<&UnionQuery> {
        self.final_query.as_ref()
    }

    /// Packages the finished session as a [`SessionResult`]; `None`
    /// until done.
    pub fn into_result(self) -> Option<SessionResult> {
        Some(SessionResult {
            query: self.final_query?,
            candidates: self.candidates,
            stats: self.stats,
            selection_transcript: self.transcript,
            refinement_questions: self.refine_questions,
            suspect_examples: self.suspect,
        })
    }

    // -- persistence --------------------------------------------------

    /// Serializes the full session state — configuration, RNG position,
    /// candidates, elimination progress, pending question — to wire
    /// JSON. [`InteractiveSession::restore`] resumes it exactly.
    pub fn snapshot(&self, ont: &Ontology) -> Json {
        let queries = |qs: &[UnionQuery]| {
            Json::Arr(
                qs.iter()
                    .map(|q| Json::str(sparql::format_union(q)))
                    .collect(),
            )
        };
        let pending = match &self.pending {
            None => Json::Null,
            Some(PendingQuestion::Select {
                result,
                provenance,
                keep,
                other,
            }) => Json::obj([
                ("kind", Json::str("select")),
                ("result", Json::str(ont.value_str(*result))),
                ("provenance", subgraph_to_json(ont, provenance)),
                ("keep", Json::from(*keep)),
                ("other", Json::from(*other)),
            ]),
            Some(PendingQuestion::Refine {
                result,
                provenance,
                branch,
                pair,
            }) => Json::obj([
                ("kind", Json::str("refine")),
                ("result", Json::str(ont.value_str(*result))),
                ("provenance", subgraph_to_json(ont, provenance)),
                ("branch", Json::from(*branch)),
                (
                    "pair",
                    diseq_pair_to_json(
                        self.current.as_ref().expect("refining implies current"),
                        *branch,
                        *pair,
                    ),
                ),
            ]),
        };
        Json::obj([
            ("version", Json::from(1u64)),
            (
                "config",
                Json::obj([
                    ("k", Json::from(self.cfg.topk.k)),
                    ("w1", Json::Num(self.cfg.topk.weights.w1)),
                    ("w2", Json::Num(self.cfg.topk.weights.w2)),
                    ("g1", Json::Num(self.cfg.topk.greedy.weights.w1)),
                    ("g2", Json::Num(self.cfg.topk.greedy.weights.w2)),
                    ("g3", Json::Num(self.cfg.topk.greedy.weights.w3)),
                    ("num_iter", Json::from(self.cfg.topk.greedy.num_iter)),
                    (
                        "allow_optional",
                        Json::Bool(self.cfg.topk.greedy.allow_optional),
                    ),
                    ("threads", Json::from(self.cfg.topk.threads)),
                    ("refine", Json::Bool(self.cfg.refine)),
                    ("robust", Json::Bool(self.cfg.robust)),
                    ("prov_limit", Json::from(self.cfg.feedback.prov_limit)),
                    ("max_questions", Json::from(self.cfg.feedback.max_questions)),
                ]),
            ),
            ("seed", Json::str(self.seed.to_string())),
            (
                "rng",
                Json::Arr(
                    self.rng
                        .state()
                        .iter()
                        .map(|w| Json::str(w.to_string()))
                        .collect(),
                ),
            ),
            (
                "examples",
                Json::str(exformat::serialize_examples(ont, &self.examples)),
            ),
            (
                "suspect",
                Json::Arr(self.suspect.iter().map(|&i| Json::from(i)).collect()),
            ),
            ("candidates", queries(&self.candidates)),
            (
                "live",
                Json::Arr(self.live.iter().map(|&i| Json::from(i)).collect()),
            ),
            (
                "transcript",
                Json::Arr(
                    self.transcript
                        .iter()
                        .map(|rec| {
                            Json::obj([
                                ("result", Json::str(ont.value_str(rec.result))),
                                ("provenance", subgraph_to_json(ont, &rec.provenance)),
                                ("kept", Json::from(rec.kept_candidate)),
                                ("eliminated", Json::from(rec.eliminated_candidate)),
                                ("answer", Json::Bool(rec.answer)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "phase",
                Json::str(match self.phase {
                    Phase::Selecting => "selecting",
                    Phase::Refining => "refining",
                    Phase::Done => "done",
                }),
            ),
            ("pending", pending),
            (
                "chosen_index",
                self.chosen_index.map_or(Json::Null, Json::from),
            ),
            (
                "current",
                self.current
                    .as_ref()
                    .map_or(Json::Null, |q| Json::str(sparql::format_union(q))),
            ),
            (
                "approved",
                Json::Arr(
                    self.approved
                        .iter()
                        .map(|&(b, pair)| {
                            Json::Arr(vec![
                                Json::from(b),
                                diseq_pair_to_json(
                                    self.current.as_ref().expect("approved implies current"),
                                    b,
                                    pair,
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("refine_questions", Json::from(self.refine_questions)),
            // Telemetry round log: additive under snapshot version 1
            // (restore ignores unknown keys, so old readers skip it and
            // old snapshots restore with an empty log).
            (
                "rounds_log",
                Json::Arr(
                    self.rounds_log
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("refine", Json::Bool(r.refine)),
                                ("answer", Json::Bool(r.answer)),
                                ("pool", Json::from(r.pool)),
                                ("wall_ns", Json::str(r.wall_ns.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("wall_ns", Json::str(self.wall_ns.to_string())),
            (
                "final",
                self.final_query
                    .as_ref()
                    .map_or(Json::Null, |q| Json::str(sparql::format_union(q))),
            ),
            (
                "stats",
                Json::obj([
                    ("algorithm1_calls", Json::from(self.stats.algorithm1_calls)),
                    ("merges_applied", Json::from(self.stats.merges_applied)),
                    ("states_examined", Json::from(self.stats.states_examined)),
                    ("rounds", Json::from(self.stats.rounds)),
                    ("merge_cache_hits", Json::from(self.stats.merge_cache_hits)),
                    (
                        "consistency_checks",
                        Json::from(self.stats.consistency_checks),
                    ),
                    (
                        "consistency_cache_hits",
                        Json::from(self.stats.consistency_cache_hits),
                    ),
                ]),
            ),
        ])
    }

    /// Rebuilds a session from a [`InteractiveSession::snapshot`] taken
    /// against the same ontology.
    ///
    /// # Errors
    /// [`SessionError::BadSnapshot`] on any missing field, malformed
    /// query text, or value unknown to `ont`.
    pub fn restore(ont: &Ontology, snap: &Json) -> Result<Self, SessionError> {
        let bad = |m: &str| SessionError::BadSnapshot(m.to_string());
        let version = snap
            .get("version")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing version"))?;
        if version != 1 {
            return Err(SessionError::BadSnapshot(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let cfg_j = snap.get("config").ok_or_else(|| bad("missing config"))?;
        let field = |key: &str| {
            cfg_j
                .get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| SessionError::BadSnapshot(format!("missing config.{key}")))
        };
        let fieldf = |key: &str| {
            cfg_j
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| SessionError::BadSnapshot(format!("missing config.{key}")))
        };
        let fieldb = |key: &str| {
            cfg_j
                .get(key)
                .and_then(Json::as_bool)
                .ok_or_else(|| SessionError::BadSnapshot(format!("missing config.{key}")))
        };
        let cfg = SessionConfig {
            topk: TopKConfig {
                k: field("k")?,
                weights: questpro_query::GeneralizationWeights::new(fieldf("w1")?, fieldf("w2")?),
                greedy: questpro_core::GreedyConfig {
                    weights: questpro_core::GainWeights::new(
                        fieldf("g1")?,
                        fieldf("g2")?,
                        fieldf("g3")?,
                    ),
                    num_iter: field("num_iter")?,
                    allow_optional: fieldb("allow_optional")?,
                },
                threads: field("threads")?,
            },
            feedback: FeedbackConfig {
                prov_limit: field("prov_limit")?,
                max_questions: field("max_questions")?,
            },
            refine: fieldb("refine")?,
            robust: fieldb("robust")?,
        };
        let seed: u64 = snap
            .get("seed")
            .and_then(Json::as_str)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("missing seed"))?;
        let rng_words = snap
            .get("rng")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing rng"))?;
        if rng_words.len() != 4 {
            return Err(bad("rng state must have 4 words"));
        }
        let mut state = [0u64; 4];
        for (i, w) in rng_words.iter().enumerate() {
            state[i] = w
                .as_str()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| bad("malformed rng word"))?;
        }
        let examples_text = snap
            .get("examples")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing examples"))?;
        let examples = exformat::parse_examples(ont, examples_text)
            .map_err(|e| SessionError::BadSnapshot(format!("examples: {e}")))?;
        let parse_query = |j: &Json| -> Result<UnionQuery, SessionError> {
            let text = j
                .as_str()
                .ok_or_else(|| bad("query field must be a string"))?;
            sparql::parse_union(text).map_err(|e| SessionError::BadSnapshot(format!("query: {e}")))
        };
        let candidates: Vec<UnionQuery> = snap
            .get("candidates")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing candidates"))?
            .iter()
            .map(parse_query)
            .collect::<Result<_, _>>()?;
        if candidates.is_empty() {
            return Err(bad("snapshot has no candidates"));
        }
        let usize_arr = |key: &str| -> Result<Vec<usize>, SessionError> {
            snap.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| SessionError::BadSnapshot(format!("missing {key}")))?
                .iter()
                .map(|j| {
                    j.as_usize()
                        .ok_or_else(|| SessionError::BadSnapshot(format!("malformed {key}")))
                })
                .collect()
        };
        let live = usize_arr("live")?;
        if live.is_empty() || live.iter().any(|&i| i >= candidates.len()) {
            return Err(bad("live indexes out of range"));
        }
        let suspect = usize_arr("suspect")?;
        let node_of = |j: Option<&Json>| -> Result<NodeId, SessionError> {
            let v = j
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing result value"))?;
            ont.node_by_value(v)
                .ok_or_else(|| SessionError::BadSnapshot(format!("unknown value {v:?}")))
        };
        let transcript = snap
            .get("transcript")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing transcript"))?
            .iter()
            .map(|rec| {
                Ok(QuestionRecord {
                    result: node_of(rec.get("result"))?,
                    provenance: subgraph_from_json(
                        ont,
                        rec.get("provenance")
                            .ok_or_else(|| bad("missing provenance"))?,
                    )?,
                    kept_candidate: rec
                        .get("kept")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| bad("missing kept"))?,
                    eliminated_candidate: rec
                        .get("eliminated")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| bad("missing eliminated"))?,
                    answer: rec
                        .get("answer")
                        .and_then(Json::as_bool)
                        .ok_or_else(|| bad("missing answer"))?,
                })
            })
            .collect::<Result<Vec<_>, SessionError>>()?;
        let phase = match snap.get("phase").and_then(Json::as_str) {
            Some("selecting") => Phase::Selecting,
            Some("refining") => Phase::Refining,
            Some("done") => Phase::Done,
            _ => return Err(bad("missing or unknown phase")),
        };
        let current = match snap.get("current") {
            None | Some(Json::Null) => None,
            Some(j) => Some(parse_query(j)?),
        };
        if phase == Phase::Refining && current.is_none() {
            return Err(bad("refining phase requires a current query"));
        }
        let approved = snap
            .get("approved")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing approved"))?
            .iter()
            .map(|j| {
                let items = j.as_arr().ok_or_else(|| bad("malformed approved entry"))?;
                let (b_j, pair_j) = match items {
                    [b, p] => (b, p),
                    _ => return Err(bad("malformed approved entry")),
                };
                let b = b_j
                    .as_usize()
                    .ok_or_else(|| bad("malformed approved entry"))?;
                let q = current
                    .as_ref()
                    .ok_or_else(|| bad("approved without current"))?;
                Ok((b, diseq_pair_from_json(q, b, pair_j)?))
            })
            .collect::<Result<Vec<_>, SessionError>>()?;
        let pending = match snap.get("pending") {
            None | Some(Json::Null) => None,
            Some(p) => {
                let result = node_of(p.get("result"))?;
                let provenance = subgraph_from_json(
                    ont,
                    p.get("provenance")
                        .ok_or_else(|| bad("missing provenance"))?,
                )?;
                match p.get("kind").and_then(Json::as_str) {
                    Some("select") => Some(PendingQuestion::Select {
                        result,
                        provenance,
                        keep: p
                            .get("keep")
                            .and_then(Json::as_usize)
                            .ok_or_else(|| bad("missing keep"))?,
                        other: p
                            .get("other")
                            .and_then(Json::as_usize)
                            .ok_or_else(|| bad("missing other"))?,
                    }),
                    Some("refine") => {
                        let branch = p
                            .get("branch")
                            .and_then(Json::as_usize)
                            .ok_or_else(|| bad("missing branch"))?;
                        let q = current
                            .as_ref()
                            .ok_or_else(|| bad("refine pending without current"))?;
                        let pair = diseq_pair_from_json(
                            q,
                            branch,
                            p.get("pair").ok_or_else(|| bad("missing pair"))?,
                        )?;
                        Some(PendingQuestion::Refine {
                            result,
                            provenance,
                            branch,
                            pair,
                        })
                    }
                    _ => return Err(bad("unknown pending kind")),
                }
            }
        };
        let final_query = match snap.get("final") {
            None | Some(Json::Null) => None,
            Some(j) => Some(parse_query(j)?),
        };
        if phase == Phase::Done && final_query.is_none() {
            return Err(bad("done phase requires a final query"));
        }
        let stats_j = snap.get("stats").ok_or_else(|| bad("missing stats"))?;
        let stat = |key: &str| stats_j.get(key).and_then(Json::as_usize).unwrap_or(0);
        let stats = InferenceStats {
            algorithm1_calls: stat("algorithm1_calls"),
            merges_applied: stat("merges_applied"),
            states_examined: stat("states_examined"),
            rounds: stat("rounds"),
            merge_cache_hits: stat("merge_cache_hits"),
            consistency_checks: stat("consistency_checks"),
            consistency_cache_hits: stat("consistency_cache_hits"),
            ..Default::default()
        };
        let n = candidates.len();
        let alls: Vec<UnionQuery> = candidates
            .iter()
            .map(|q| with_all_diseqs(ont, q, &examples))
            .collect();
        let nones: Vec<UnionQuery> = candidates.iter().map(|q| q.without_diseqs()).collect();
        Ok(Self {
            cfg,
            seed,
            examples,
            suspect,
            candidates,
            alls,
            nones,
            all_results: vec![None; n],
            none_results: vec![None; n],
            live,
            transcript,
            stats,
            rng: StdRng::from_state(state),
            phase,
            pending,
            chosen_index: snap.get("chosen_index").and_then(Json::as_usize),
            current,
            approved,
            refine_questions: snap
                .get("refine_questions")
                .and_then(Json::as_usize)
                .unwrap_or(0),
            final_query,
            // Telemetry-only fields: lenient (absent in pre-PR-10
            // snapshots; a malformed entry degrades to zeros rather
            // than rejecting an otherwise valid session).
            rounds_log: snap
                .get("rounds_log")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .map(|r| RoundLog {
                            refine: r.get("refine").and_then(Json::as_bool).unwrap_or(false),
                            answer: r.get("answer").and_then(Json::as_bool).unwrap_or(false),
                            pool: r.get("pool").and_then(Json::as_usize).unwrap_or(0),
                            wall_ns: r
                                .get("wall_ns")
                                .and_then(Json::as_str)
                                .and_then(|s| s.parse().ok())
                                .unwrap_or(0),
                        })
                        .collect()
                })
                .unwrap_or_default(),
            wall_ns: snap
                .get("wall_ns")
                .and_then(Json::as_str)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
        })
    }
}

/// Serializes a subgraph as `{edges: [[src,pred,dst]...], nodes: [v...]}`
/// (nodes lists only the isolated ones; endpoints are implied).
fn subgraph_to_json(ont: &Ontology, sub: &Subgraph) -> Json {
    let edges: Vec<Json> = sub
        .edges()
        .iter()
        .map(|&e| {
            let d = ont.edge(e);
            Json::Arr(vec![
                Json::str(ont.value_str(d.src)),
                Json::str(ont.pred_str(d.pred)),
                Json::str(ont.value_str(d.dst)),
            ])
        })
        .collect();
    let endpoint: BTreeSet<NodeId> = sub
        .edges()
        .iter()
        .flat_map(|&e| {
            let d = ont.edge(e);
            [d.src, d.dst]
        })
        .collect();
    let isolated: Vec<Json> = sub
        .nodes()
        .iter()
        .filter(|n| !endpoint.contains(n))
        .map(|&n| Json::str(ont.value_str(n)))
        .collect();
    Json::obj([("edges", Json::Arr(edges)), ("nodes", Json::Arr(isolated))])
}

/// Inverse of [`subgraph_to_json`].
fn subgraph_from_json(ont: &Ontology, j: &Json) -> Result<Subgraph, SessionError> {
    let bad = |m: String| SessionError::BadSnapshot(m);
    let mut edges = Vec::new();
    for e in j.get("edges").and_then(Json::as_arr).unwrap_or(&[]) {
        let items = e
            .as_arr()
            .ok_or_else(|| bad("edge must be a triple".into()))?;
        let [s, p, d] = items else {
            return Err(bad("edge must be a triple".into()));
        };
        let (s, p, d) = (
            s.as_str().ok_or_else(|| bad("edge field".into()))?,
            p.as_str().ok_or_else(|| bad("edge field".into()))?,
            d.as_str().ok_or_else(|| bad("edge field".into()))?,
        );
        let src = ont
            .node_by_value(s)
            .ok_or_else(|| bad(format!("unknown value {s:?}")))?;
        let dst = ont
            .node_by_value(d)
            .ok_or_else(|| bad(format!("unknown value {d:?}")))?;
        let pred = ont
            .pred_by_name(p)
            .ok_or_else(|| bad(format!("unknown predicate {p:?}")))?;
        edges.push(
            ont.find_edge(src, pred, dst)
                .ok_or_else(|| bad(format!("no edge {s} {p} {d}")))?,
        );
    }
    let mut nodes = Vec::new();
    for n in j.get("nodes").and_then(Json::as_arr).unwrap_or(&[]) {
        let v = n.as_str().ok_or_else(|| bad("node field".into()))?;
        nodes.push(
            ont.node_by_value(v)
                .ok_or_else(|| bad(format!("unknown value {v:?}")))?,
        );
    }
    Ok(Subgraph::from_parts(ont, edges, nodes))
}

/// Serializes a disequality pair of `q`'s branch `b` as tagged labels —
/// `["var", name]` or `["const", value]` per endpoint — stable across
/// SPARQL round-trips, unlike raw node indexes.
fn diseq_pair_to_json(q: &UnionQuery, b: usize, pair: (QueryNodeId, QueryNodeId)) -> Json {
    let branch = &q.branches()[b];
    let endpoint = |n: QueryNodeId| match branch.label(n) {
        questpro_query::NodeLabel::Var(v) => {
            Json::Arr(vec![Json::str("var"), Json::str(v.as_ref())])
        }
        questpro_query::NodeLabel::Const(c) => {
            Json::Arr(vec![Json::str("const"), Json::str(c.as_ref())])
        }
    };
    Json::Arr(vec![endpoint(pair.0), endpoint(pair.1)])
}

/// Inverse of [`diseq_pair_to_json`] against branch `b` of `q`.
fn diseq_pair_from_json(
    q: &UnionQuery,
    b: usize,
    j: &Json,
) -> Result<(QueryNodeId, QueryNodeId), SessionError> {
    let bad = |m: String| SessionError::BadSnapshot(m);
    let items = j
        .as_arr()
        .ok_or_else(|| bad("diseq pair must be an array".into()))?;
    let [a, c] = items else {
        return Err(bad("diseq pair must have two entries".into()));
    };
    let branch = q
        .branches()
        .get(b)
        .ok_or_else(|| bad(format!("branch {b} out of range")))?;
    let find = |j: &Json| -> Result<QueryNodeId, SessionError> {
        let parts = j
            .as_arr()
            .ok_or_else(|| bad("diseq endpoint must be [kind, label]".into()))?;
        let [kind, label] = parts else {
            return Err(bad("diseq endpoint must be [kind, label]".into()));
        };
        let label = label
            .as_str()
            .ok_or_else(|| bad("diseq endpoint label".into()))?;
        match kind.as_str() {
            Some("var") => branch
                .node_of_var(label)
                .ok_or_else(|| bad(format!("no variable ?{label} in branch {b}"))),
            Some("const") => branch
                .node_ids()
                .find(|&n| branch.label(n).as_const() == Some(label))
                .ok_or_else(|| bad(format!("no constant :{label} in branch {b}"))),
            _ => Err(bad("unknown diseq endpoint kind".into())),
        }
    };
    Ok((find(a)?, find(c)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TargetOracle;
    use questpro_engine::{consistent_with_examples, evaluate_union};
    use questpro_graph::rng::StdRng;
    use questpro_graph::Explanation;
    use questpro_query::{GeneralizationWeights, SimpleQuery};

    /// A small co-authorship world where "co-author of Erdos" is
    /// learnable from two explanations.
    fn world() -> (Ontology, ExampleSet, UnionQuery) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            ("paper5", "Frank"),
            ("paper5", "Gina"),
            ("paper6", "Hank"),
            ("paper6", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        for a in ["Carol", "Erdos", "Dave", "Frank", "Gina", "Hank"] {
            b.typed_node(a, "Author").unwrap();
        }
        for p in ["paper3", "paper4", "paper5", "paper6"] {
            b.typed_node(p, "Paper").unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        let examples = ExampleSet::from_explanations(vec![e1, e2]);
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        let target = UnionQuery::single(b.build().unwrap());
        (o, examples, target)
    }

    #[test]
    fn session_reconstructs_the_target_semantics() {
        let (o, examples, target) = world();
        let mut oracle = TargetOracle::new(target.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = SessionConfig {
            topk: TopKConfig {
                k: 3,
                weights: GeneralizationWeights::example_4_4(),
                ..Default::default()
            },
            refine: true,
            ..Default::default()
        };
        let result = run_session(&o, &examples, &mut oracle, &mut rng, &cfg);
        assert!(consistent_with_examples(&o, &result.query, &examples));
        // The final query returns exactly the target's results.
        assert_eq!(
            evaluate_union(&o, &result.query),
            evaluate_union(&o, &target)
        );
        assert!(result.stats.algorithm1_calls > 0);
        assert!(!result.candidates.is_empty());
    }

    #[test]
    fn robust_session_survives_a_wrong_explanation() {
        let (o, examples, target) = world();
        // A wrong explanation: Frank justified by an unrelated paper —
        // right predicate shape is impossible here, so use a bare-node
        // explanation (edge-free: foreign to the co-author shape).
        let wrong = Explanation::from_edges(&o, [], "Frank").unwrap();
        let mut poisoned: Vec<Explanation> = examples.iter().cloned().collect();
        poisoned.push(wrong);
        let poisoned = ExampleSet::from_explanations(poisoned);

        let mut oracle = TargetOracle::new(target.clone());
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = SessionConfig {
            refine: true,
            robust: true,
            ..Default::default()
        };
        let result = run_session(&o, &poisoned, &mut oracle, &mut rng, &cfg);
        assert_eq!(result.suspect_examples, vec![2]);
        assert_eq!(
            evaluate_union(&o, &result.query),
            evaluate_union(&o, &target),
            "robust session still reaches the target: {}",
            result.query
        );
        // Without robustness the poisoned set forces an extra union
        // branch for the bare node.
        let mut oracle = TargetOracle::new(target.clone());
        let mut rng = StdRng::seed_from_u64(13);
        let cfg_plain = SessionConfig {
            refine: true,
            robust: false,
            ..Default::default()
        };
        let plain = run_session(&o, &poisoned, &mut oracle, &mut rng, &cfg_plain);
        assert!(plain.suspect_examples.is_empty());
        assert_ne!(
            evaluate_union(&o, &plain.query),
            evaluate_union(&o, &target),
            "the poisoned branch changes the semantics without robust mode"
        );
    }

    #[test]
    fn session_without_refinement_keeps_all_diseqs() {
        let (o, examples, target) = world();
        let mut oracle = TargetOracle::new(target);
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = SessionConfig {
            refine: false,
            ..Default::default()
        };
        let result = run_session(&o, &examples, &mut oracle, &mut rng, &cfg);
        assert_eq!(result.refinement_questions, 0);
    }

    fn demo_cfg() -> SessionConfig {
        SessionConfig {
            topk: TopKConfig {
                k: 3,
                weights: GeneralizationWeights::example_4_4(),
                ..Default::default()
            },
            refine: true,
            ..Default::default()
        }
    }

    /// Drives an interactive session to completion with an oracle.
    fn drive(sess: &mut InteractiveSession, ont: &Ontology, oracle: &mut TargetOracle) {
        while let Some(p) = sess.pending() {
            let (res, prov) = (p.result(), p.provenance().clone());
            let ans = oracle.accept(ont, res, &prov);
            sess.answer(ont, ans).unwrap();
        }
        assert!(sess.is_done());
    }

    #[test]
    fn interactive_matches_one_shot() {
        let (o, examples, target) = world();
        let cfg = demo_cfg();
        let mut oracle = TargetOracle::new(target.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let one_shot = run_session(&o, &examples, &mut oracle, &mut rng, &cfg);

        let mut sess = InteractiveSession::start(&o, &examples, &cfg, 11).unwrap();
        let mut oracle = TargetOracle::new(target);
        drive(&mut sess, &o, &mut oracle);

        assert_eq!(
            sparql::format_union(sess.final_query().unwrap()),
            sparql::format_union(&one_shot.query),
            "step-by-step and one-shot sessions must agree byte-for-byte"
        );
        assert_eq!(sess.transcript().len(), one_shot.selection_transcript.len());
        for (a, b) in sess.transcript().iter().zip(&one_shot.selection_transcript) {
            assert_eq!(a.result, b.result);
            assert_eq!(a.answer, b.answer);
            assert_eq!(a.eliminated_candidate, b.eliminated_candidate);
        }
        assert_eq!(sess.refine_questions(), one_shot.refinement_questions);
        assert_eq!(sess.stats(), &one_shot.stats);
        let result = sess.into_result().unwrap();
        assert_eq!(
            sparql::format_union(&result.query),
            sparql::format_union(&one_shot.query)
        );
    }

    #[test]
    fn snapshot_round_trips_at_every_step() {
        let (o, examples, target) = world();
        let cfg = demo_cfg();
        let mut oracle = TargetOracle::new(target.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let one_shot = run_session(&o, &examples, &mut oracle, &mut rng, &cfg);

        // Serialize + restore through wire text before *every* answer;
        // the restored session must still end up exactly where the
        // one-shot pipeline does.
        let mut sess = InteractiveSession::start(&o, &examples, &cfg, 11).unwrap();
        let mut oracle = TargetOracle::new(target);
        let mut questions = 0usize;
        while let Some(p) = sess.pending() {
            let (res, prov) = (p.result(), p.provenance().clone());
            let text = sess.snapshot(&o).to_text();
            let parsed = questpro_wire::parse(&text).unwrap();
            sess = InteractiveSession::restore(&o, &parsed).unwrap();
            let p2 = sess.pending().expect("restore keeps the pending question");
            assert_eq!(p2.result(), res, "pending question survives the round-trip");
            assert_eq!(p2.provenance(), &prov);
            let ans = oracle.accept(&o, res, &prov);
            sess.answer(&o, ans).unwrap();
            questions += 1;
        }
        assert!(sess.is_done());
        assert!(questions > 0, "the demo world asks at least one question");
        assert_eq!(
            sparql::format_union(sess.final_query().unwrap()),
            sparql::format_union(&one_shot.query)
        );
        assert_eq!(sess.refine_questions(), one_shot.refinement_questions);

        // A finished session round-trips too.
        let text = sess.snapshot(&o).to_text();
        let back = InteractiveSession::restore(&o, &questpro_wire::parse(&text).unwrap()).unwrap();
        assert!(back.is_done());
        assert_eq!(
            sparql::format_union(back.final_query().unwrap()),
            sparql::format_union(&one_shot.query)
        );
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let (o, examples, _) = world();
        assert!(matches!(
            InteractiveSession::restore(&o, &Json::Null),
            Err(SessionError::BadSnapshot(_))
        ));
        let sess = InteractiveSession::start(&o, &examples, &demo_cfg(), 11).unwrap();
        let snap = sess.snapshot(&o);
        // Flip the version: must be rejected, not misinterpreted.
        let mut doctored = snap.clone();
        if let Json::Obj(pairs) = &mut doctored {
            for (k, v) in pairs.iter_mut() {
                if k == "version" {
                    *v = Json::from(2u64);
                }
            }
        }
        assert!(matches!(
            InteractiveSession::restore(&o, &doctored),
            Err(SessionError::BadSnapshot(_))
        ));
    }

    #[test]
    fn answer_without_pending_is_an_error() {
        let (o, examples, target) = world();
        let mut sess = InteractiveSession::start(&o, &examples, &demo_cfg(), 11).unwrap();
        let mut oracle = TargetOracle::new(target);
        drive(&mut sess, &o, &mut oracle);
        assert_eq!(sess.answer(&o, true), Err(SessionError::NothingPending));
    }

    #[test]
    fn empty_examples_are_rejected() {
        let (o, _, _) = world();
        let empty = ExampleSet::from_explanations(vec![]);
        assert_eq!(
            InteractiveSession::start(&o, &empty, &demo_cfg(), 11).err(),
            Some(SessionError::EmptyExamples)
        );
    }
}
