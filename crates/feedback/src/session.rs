//! End-to-end inference sessions: explanations in, one query out.
//!
//! A session chains the full QuestPro pipeline of Figure 5:
//!
//! 1. top-k inference over the example-set (`questpro-core`);
//! 2. augmentation of every candidate with all admissible disequalities;
//! 3. Algorithm 3's provenance-backed elimination down to one query;
//! 4. optionally, disequality refinement of the survivor.

use questpro_graph::rng::Rng;

use questpro_core::{infer_top_k, infer_top_k_robust, InferenceStats, TopKConfig};
use questpro_graph::{ExampleSet, Ontology};
use questpro_query::UnionQuery;

use crate::algorithm3::{choose_query, FeedbackConfig, QuestionRecord};
use crate::oracle::Oracle;
use crate::refine::refine_diseqs;

/// Configuration of a full session.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionConfig {
    /// Top-k inference parameters.
    pub topk: TopKConfig,
    /// Feedback-loop parameters.
    pub feedback: FeedbackConfig,
    /// Whether to run disequality refinement after candidate selection.
    pub refine: bool,
    /// Whether to diagnose and set aside suspect explanations (wrong
    /// provenance, Section VIII future work) before inference.
    pub robust: bool,
}

/// Result of a full session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The final query (with the user-approved disequalities).
    pub query: UnionQuery,
    /// The candidates that were produced by top-k inference.
    pub candidates: Vec<UnionQuery>,
    /// Inference instrumentation.
    pub stats: InferenceStats,
    /// Questions asked while choosing between candidates.
    pub selection_transcript: Vec<QuestionRecord>,
    /// Questions asked during disequality refinement.
    pub refinement_questions: usize,
    /// Indexes of explanations set aside as suspect (empty unless
    /// [`SessionConfig::robust`] is on and something was filtered).
    pub suspect_examples: Vec<usize>,
}

/// Runs the full pipeline.
///
/// # Panics
/// Panics if `examples` is empty.
pub fn run_session<O: Oracle, R: Rng>(
    ont: &Ontology,
    examples: &ExampleSet,
    oracle: &mut O,
    rng: &mut R,
    cfg: &SessionConfig,
) -> SessionResult {
    let (candidates, suspect_examples, stats) = if cfg.robust {
        infer_top_k_robust(ont, examples, &cfg.topk)
    } else {
        let (c, s) = infer_top_k(ont, examples, &cfg.topk);
        (c, Vec::new(), s)
    };
    // Disequality inference and feedback run against the explanations
    // that were actually used.
    let kept: questpro_graph::ExampleSet = examples
        .iter()
        .enumerate()
        .filter(|(i, _)| !suspect_examples.contains(i))
        .map(|(_, e)| e.clone())
        .collect();
    let outcome = choose_query(ont, &candidates, &kept, oracle, rng, &cfg.feedback);
    let (query, refinement_questions) = if cfg.refine {
        refine_diseqs(ont, &outcome.chosen, oracle, rng, &cfg.feedback)
    } else {
        (outcome.chosen, 0)
    };
    SessionResult {
        query,
        candidates,
        stats,
        selection_transcript: outcome.transcript,
        refinement_questions,
        suspect_examples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TargetOracle;
    use questpro_engine::{consistent_with_examples, evaluate_union};
    use questpro_graph::rng::StdRng;
    use questpro_graph::Explanation;
    use questpro_query::{GeneralizationWeights, SimpleQuery};

    /// A small co-authorship world where "co-author of Erdos" is
    /// learnable from two explanations.
    fn world() -> (Ontology, ExampleSet, UnionQuery) {
        let mut b = Ontology::builder();
        for (p, a) in [
            ("paper3", "Carol"),
            ("paper3", "Erdos"),
            ("paper4", "Dave"),
            ("paper4", "Erdos"),
            ("paper5", "Frank"),
            ("paper5", "Gina"),
            ("paper6", "Hank"),
            ("paper6", "Erdos"),
        ] {
            b.edge(p, "wb", a).unwrap();
        }
        for a in ["Carol", "Erdos", "Dave", "Frank", "Gina", "Hank"] {
            b.typed_node(a, "Author").unwrap();
        }
        for p in ["paper3", "paper4", "paper5", "paper6"] {
            b.typed_node(p, "Paper").unwrap();
        }
        let o = b.build();
        let e1 = Explanation::from_triples(
            &o,
            &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
            "Carol",
        )
        .unwrap();
        let e2 = Explanation::from_triples(
            &o,
            &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
            "Dave",
        )
        .unwrap();
        let examples = ExampleSet::from_explanations(vec![e1, e2]);
        let mut b = SimpleQuery::builder();
        let x = b.var("x");
        let p = b.var("p");
        let e = b.constant("Erdos");
        b.edge(p, "wb", x).edge(p, "wb", e).project(x);
        let target = UnionQuery::single(b.build().unwrap());
        (o, examples, target)
    }

    #[test]
    fn session_reconstructs_the_target_semantics() {
        let (o, examples, target) = world();
        let mut oracle = TargetOracle::new(target.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = SessionConfig {
            topk: TopKConfig {
                k: 3,
                weights: GeneralizationWeights::example_4_4(),
                ..Default::default()
            },
            refine: true,
            ..Default::default()
        };
        let result = run_session(&o, &examples, &mut oracle, &mut rng, &cfg);
        assert!(consistent_with_examples(&o, &result.query, &examples));
        // The final query returns exactly the target's results.
        assert_eq!(
            evaluate_union(&o, &result.query),
            evaluate_union(&o, &target)
        );
        assert!(result.stats.algorithm1_calls > 0);
        assert!(!result.candidates.is_empty());
    }

    #[test]
    fn robust_session_survives_a_wrong_explanation() {
        let (o, examples, target) = world();
        // A wrong explanation: Frank justified by an unrelated paper —
        // right predicate shape is impossible here, so use a bare-node
        // explanation (edge-free: foreign to the co-author shape).
        let wrong = Explanation::from_edges(&o, [], "Frank").unwrap();
        let mut poisoned: Vec<Explanation> = examples.iter().cloned().collect();
        poisoned.push(wrong);
        let poisoned = ExampleSet::from_explanations(poisoned);

        let mut oracle = TargetOracle::new(target.clone());
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = SessionConfig {
            refine: true,
            robust: true,
            ..Default::default()
        };
        let result = run_session(&o, &poisoned, &mut oracle, &mut rng, &cfg);
        assert_eq!(result.suspect_examples, vec![2]);
        assert_eq!(
            evaluate_union(&o, &result.query),
            evaluate_union(&o, &target),
            "robust session still reaches the target: {}",
            result.query
        );
        // Without robustness the poisoned set forces an extra union
        // branch for the bare node.
        let mut oracle = TargetOracle::new(target.clone());
        let mut rng = StdRng::seed_from_u64(13);
        let cfg_plain = SessionConfig {
            refine: true,
            robust: false,
            ..Default::default()
        };
        let plain = run_session(&o, &poisoned, &mut oracle, &mut rng, &cfg_plain);
        assert!(plain.suspect_examples.is_empty());
        assert_ne!(
            evaluate_union(&o, &plain.query),
            evaluate_union(&o, &target),
            "the poisoned branch changes the semantics without robust mode"
        );
    }

    #[test]
    fn session_without_refinement_keeps_all_diseqs() {
        let (o, examples, target) = world();
        let mut oracle = TargetOracle::new(target);
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = SessionConfig {
            refine: false,
            ..Default::default()
        };
        let result = run_session(&o, &examples, &mut oracle, &mut rng, &cfg);
        assert_eq!(result.refinement_questions, 0);
    }
}
