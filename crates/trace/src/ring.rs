//! Bounded ring buffer with oldest-first eviction and exact drop
//! accounting.
//!
//! The global trace registry keeps only the most recent traces; when a
//! new trace arrives at capacity, the *oldest* one is evicted and a
//! drop counter is bumped, so `pushed == retained + dropped` holds at
//! all times. The type is generic and public so the property suite can
//! exercise the overflow semantics directly.

use std::collections::VecDeque;

/// A fixed-capacity FIFO that evicts its oldest element on overflow.
#[derive(Debug)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    cap: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring holding at most `cap` elements (min 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Ring {
            buf: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
        }
    }

    /// Appends `item`, evicting and returning the oldest element if the
    /// ring is full.
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.buf.len() == self.cap {
            self.dropped += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(item);
        evicted
    }

    /// Number of elements currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no elements.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total number of elements evicted on overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained elements oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Returns up to `limit` of the most recent elements, newest first.
    pub fn latest(&self, limit: usize) -> Vec<&T> {
        self.buf.iter().rev().take(limit).collect()
    }

    /// Removes and returns every retained element, oldest-first. The
    /// drop counter is untouched, so `pushed == drained + retained +
    /// dropped` stays exact across interleaved pushes and drains — the
    /// contract the log subsystem's concurrency battery asserts.
    pub fn drain(&mut self) -> Vec<T> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_last_cap_items_in_order() {
        let mut r = Ring::new(3);
        for i in 0..10 {
            let evicted = r.push(i);
            if i < 3 {
                assert_eq!(evicted, None);
            } else {
                assert_eq!(evicted, Some(i - 3), "oldest-first eviction");
            }
        }
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(r.latest(2), vec![&9, &8]);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn drain_empties_but_keeps_drop_accounting() {
        let mut r = Ring::new(2);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.drain(), vec![3, 4], "oldest-first drain");
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 3, "drains are not drops");
        assert_eq!(r.push(9), None, "capacity is reusable after a drain");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = Ring::new(0);
        assert_eq!(r.capacity(), 1);
        assert!(r.is_empty());
        assert_eq!(r.push('a'), None);
        assert_eq!(r.push('b'), Some('a'));
        assert_eq!(r.dropped(), 1);
    }
}
