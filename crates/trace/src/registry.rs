//! Global registry of recently finished traces.
//!
//! Spans are collected with zero synchronization on the trace-owning
//! thread; the only cross-thread touch is here, once per *finished
//! trace*: a single mutex acquisition to push the record into a bounded
//! [`Ring`], plus relaxed-atomic histogram updates.
//! That is the crate's "lock-free-ish" contract — the per-span hot path
//! never contends.

use std::sync::{Mutex, OnceLock};

use crate::hist;
use crate::ring::Ring;
use crate::TraceRecord;

/// Default number of traces retained by the global ring.
pub const DEFAULT_CAPACITY: usize = 256;

static RING: OnceLock<Mutex<Ring<TraceRecord>>> = OnceLock::new();

fn ring() -> &'static Mutex<Ring<TraceRecord>> {
    RING.get_or_init(|| Mutex::new(Ring::new(DEFAULT_CAPACITY)))
}

fn lock() -> std::sync::MutexGuard<'static, Ring<TraceRecord>> {
    // Trace data is advisory; a panic mid-push can't corrupt the ring
    // beyond a missing element, so poisoning is ignored.
    ring().lock().unwrap_or_else(|e| e.into_inner())
}

/// Replaces the ring with an empty one of capacity `cap` (min 1).
/// Retained traces and the drop counter are reset; used at server
/// start-up to apply the configured retention.
pub fn set_capacity(cap: usize) {
    *lock() = Ring::new(cap);
}

/// Publishes a finished trace: folds every span into the stage
/// histograms (plus the whole-trace duration under `"request"`) and
/// retains the record in the ring.
pub fn publish(rec: &TraceRecord) {
    for s in &rec.spans {
        hist::record(s.name, s.total_ns);
    }
    hist::record("request", rec.total_ns);
    lock().push(rec.clone());
}

/// Returns up to `limit` of the most recent traces, newest first.
pub fn recent(limit: usize) -> Vec<TraceRecord> {
    lock().latest(limit).into_iter().cloned().collect()
}

/// Total traces evicted from the ring since the last
/// [`set_capacity`] (or process start).
pub fn dropped_total() -> u64 {
    lock().dropped()
}

/// Number of traces currently retained.
pub fn retained() -> usize {
    lock().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> TraceRecord {
        TraceRecord {
            id,
            label: format!("t{id}"),
            total_ns: id,
            spans: Vec::new(),
        }
    }

    #[test]
    fn publish_retains_newest_first_and_counts_drops() {
        let _g = crate::test_gate();
        set_capacity(2);
        publish(&rec(1));
        publish(&rec(2));
        publish(&rec(3));
        let got = recent(10);
        assert_eq!(got.iter().map(|r| r.id).collect::<Vec<_>>(), vec![3, 2]);
        assert_eq!(dropped_total(), 1);
        assert_eq!(retained(), 2);
        set_capacity(DEFAULT_CAPACITY); // restore for other tests
        assert_eq!(dropped_total(), 0);
    }
}
