//! Hierarchical tracing and profiling for QuestPro-RS, on `std` alone.
//!
//! The paper's experiments (Section VI) attribute inference time to
//! individual stages — provenance evaluation, candidate generalization,
//! feedback rounds. This crate makes that attribution a first-class
//! runtime facility instead of a pile of ad-hoc `Instant::now()` calls:
//!
//! * **Spans.** [`span`] opens a named, timed region on the current
//!   thread and returns an RAII [`SpanGuard`]; regions nest into a tree.
//!   [`add`] attaches named counters to the innermost open span.
//! * **Traces.** [`begin`] starts a trace (one per HTTP request, CLI
//!   run, or bench iteration) that owns every span recorded on the
//!   calling thread until [`ActiveTrace::finish`]. Finished traces are
//!   published to a global bounded ring (see [`registry`]) and folded
//!   into per-stage log2 latency histograms (see [`hist`]).
//! * **Cheap when off.** A single relaxed [`AtomicBool`] gates every
//!   entry point. Disabled, [`span`] is a load plus a branch — the
//!   bench harness asserts the end-to-end overhead stays under 5%.
//!
//! ## Determinism contract
//!
//! Spans are recorded only on the thread that owns the active trace.
//! Worker threads spawned by the engine's data-parallel helpers carry
//! no collector, so their `span` calls are inert. Because the engine's
//! parallelism contract already guarantees identical outputs and stats
//! at every thread count, the *structure* of a trace (span names,
//! nesting, order, counters) is identical for any `threads` setting;
//! only the recorded durations vary. The differential suite in
//! `tests/determinism.rs` holds this line.

pub mod hist;
pub mod registry;
pub mod ring;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// The fixed list of stage names exported to Prometheus histograms.
///
/// Every name here always appears in `/metrics` (zero-filled when never
/// hit), so the exposition format is independent of which code paths a
/// process has exercised — the golden-file test depends on that.
/// Span names outside this list still show up in traces, just not in
/// the histograms.
pub const STAGES: &[&str] = &[
    "request",
    "infer.topk",
    "infer.round",
    "infer.merge_candidates",
    "infer.merge_dispatch",
    "infer.consistency",
    "engine.evaluate_union",
    "engine.provenance_union",
    "engine.sample_examples",
    "engine.minimize",
    "engine.difference",
    "feedback.choose_query",
    "feedback.question",
    "feedback.refine",
    "feedback.session.start",
    "feedback.session.answer",
];

/// Global instrumentation switch. Everything is compiled in; nothing is
/// recorded until some entry point (server start, `questpro trace`,
/// bench harness) flips this on.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotonic trace-ID source; 0 is never issued.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Turns span/trace recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Allocates a fresh trace ID without opening a trace.
///
/// Early-reject server paths (malformed request lines, over-capacity
/// 503s) never run a handler, so no [`begin`]/[`ActiveTrace`] exists —
/// yet their responses still need a correlatable `X-Questpro-Trace-Id`.
/// IDs minted here come from the same monotonic source as traced
/// requests, so they never collide with a registry entry; 0 is never
/// issued.
pub fn mint_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

/// One finished span inside a [`TraceRecord`], in pre-order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name (stage names live in [`STAGES`]).
    pub name: &'static str,
    /// Index of the parent span in the pre-order vector, if any.
    pub parent: Option<usize>,
    /// Nesting depth; top-level spans are at depth 0.
    pub depth: usize,
    /// Start offset from the trace's start, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration including children, in nanoseconds.
    pub total_ns: u64,
    /// Named counters attached via [`add`], in first-touch order.
    pub counters: Vec<(&'static str, u64)>,
}

/// A finished trace: an identified, labeled forest of spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Process-unique trace ID (echoed in HTTP responses).
    pub id: u64,
    /// Human-readable label, e.g. `"POST /infer"`.
    pub label: String,
    /// Wall-clock duration of the whole trace, in nanoseconds.
    pub total_ns: u64,
    /// All spans in pre-order (parents before children).
    pub spans: Vec<SpanRecord>,
}

/// One element of [`TraceRecord::structure`]: `(depth, name, counters)`.
pub type StructureEntry = (usize, &'static str, Vec<(&'static str, u64)>);

impl TraceRecord {
    /// The timing-free shape of the trace: `(depth, name, counters)` in
    /// pre-order. Two traces of the same computation must compare equal
    /// here at every thread count.
    pub fn structure(&self) -> Vec<StructureEntry> {
        self.spans
            .iter()
            .map(|s| (s.depth, s.name, s.counters.clone()))
            .collect()
    }

    /// Nanoseconds spent in span `i` excluding its direct children.
    pub fn self_ns(&self, i: usize) -> u64 {
        let children: u64 = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(i))
            .map(|s| s.total_ns)
            .sum();
        self.spans[i].total_ns.saturating_sub(children)
    }

    /// Aggregates `(name, calls, total self-time ns)` over all spans,
    /// sorted by descending self-time. This is the per-stage breakdown
    /// written to `BENCH_3.json`.
    pub fn stage_totals(&self) -> Vec<(&'static str, u64, u64)> {
        let mut agg: Vec<(&'static str, u64, u64)> = Vec::new();
        for i in 0..self.spans.len() {
            let name = self.spans[i].name;
            let self_ns = self.self_ns(i);
            match agg.iter_mut().find(|(n, _, _)| *n == name) {
                Some((_, calls, ns)) => {
                    *calls += 1;
                    *ns += self_ns;
                }
                None => agg.push((name, 1, self_ns)),
            }
        }
        agg.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        agg
    }

    /// Serializes the trace as Chrome trace-event JSON (the
    /// `chrome://tracing` / Perfetto "JSON Array with metadata" format):
    /// one complete (`"ph":"X"`) event per span with microsecond
    /// timestamps, plus one for the trace itself, so the span forest
    /// renders as a flamegraph. Counters become event `args`.
    pub fn to_chrome_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let us = |ns: u64| ns as f64 / 1e3;
        let mut events = Vec::with_capacity(self.spans.len() + 1);
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"trace\",\"ph\":\"X\",\"ts\":0,\"dur\":{},\
             \"pid\":1,\"tid\":1,\"args\":{{\"trace_id\":{}}}}}",
            esc(&self.label),
            us(self.total_ns),
            self.id
        ));
        for s in &self.spans {
            let mut args = String::new();
            for (k, v) in &s.counters {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("\"{}\":{}", esc(k), v));
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":1,\"args\":{{{args}}}}}",
                esc(s.name),
                us(s.start_ns),
                us(s.total_ns),
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
            events.join(",")
        )
    }

    /// Renders the trace as a flame-style indented tree with total and
    /// self times per span, suitable for terminal output.
    pub fn render_tree(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = format!(
            "trace #{} {} — total {:.3} ms, {} span(s)\n",
            self.id,
            self.label,
            ms(self.total_ns),
            self.spans.len()
        );
        for (i, s) in self.spans.iter().enumerate() {
            let indent = "  ".repeat(s.depth + 1);
            out.push_str(&format!(
                "{indent}{name:<w$} total {total:>10.3} ms  self {selfms:>10.3} ms",
                name = s.name,
                w = 28usize.saturating_sub(2 * s.depth),
                total = ms(s.total_ns),
                selfms = ms(self.self_ns(i)),
            ));
            for (k, v) in &s.counters {
                out.push_str(&format!("  {k}={v}"));
            }
            out.push('\n');
        }
        out
    }
}

/// A span still being recorded (collector-internal).
struct OpenNode {
    name: &'static str,
    parent: Option<usize>,
    depth: usize,
    started: Instant,
    start_ns: u64,
    total_ns: u64,
    counters: Vec<(&'static str, u64)>,
    closed: bool,
}

/// Per-thread span collector; present only while a trace is active on
/// this thread.
struct Collector {
    id: u64,
    label: String,
    started: Instant,
    nodes: Vec<OpenNode>,
    stack: Vec<usize>,
}

impl Collector {
    fn open(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().copied();
        let depth = parent.map(|p| self.nodes[p].depth + 1).unwrap_or(0);
        let now = Instant::now();
        let idx = self.nodes.len();
        self.nodes.push(OpenNode {
            name,
            parent,
            depth,
            started: now,
            start_ns: now.duration_since(self.started).as_nanos() as u64,
            total_ns: 0,
            counters: Vec::new(),
            closed: false,
        });
        self.stack.push(idx);
        idx
    }

    /// Closes node `idx` and — defensively — any still-open descendants
    /// above it on the stack, so out-of-order guard drops can never
    /// unbalance the tree.
    fn close(&mut self, idx: usize) {
        if self.nodes.get(idx).map(|n| n.closed).unwrap_or(true) {
            return;
        }
        if let Some(pos) = self.stack.iter().rposition(|&i| i == idx) {
            while self.stack.len() > pos {
                let i = self.stack.pop().expect("stack non-empty by loop bound");
                let node = &mut self.nodes[i];
                node.total_ns = node.started.elapsed().as_nanos() as u64;
                node.closed = true;
            }
        }
    }

    fn add(&mut self, name: &'static str, n: u64) {
        if let Some(&top) = self.stack.last() {
            let counters = &mut self.nodes[top].counters;
            match counters.iter_mut().find(|(k, _)| *k == name) {
                Some((_, v)) => *v += n,
                None => counters.push((name, n)),
            }
        }
    }

    fn into_record(mut self) -> TraceRecord {
        // Close anything the caller left open (e.g. after a panic that
        // was caught above the instrumented frames).
        while let Some(&top) = self.stack.last() {
            self.close(top);
        }
        TraceRecord {
            id: self.id,
            label: self.label,
            total_ns: self.started.elapsed().as_nanos() as u64,
            spans: self
                .nodes
                .into_iter()
                .map(|n| SpanRecord {
                    name: n.name,
                    parent: n.parent,
                    depth: n.depth,
                    start_ns: n.start_ns,
                    total_ns: n.total_ns,
                    counters: n.counters,
                })
                .collect(),
        }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// RAII guard returned by [`span`]; closes the span when dropped.
///
/// Guards may be dropped out of LIFO order (e.g. when stored in a
/// collection): closing a span also closes any spans opened under it
/// that are still open, so the resulting tree is always balanced.
#[must_use = "a span is timed until its guard is dropped"]
pub struct SpanGuard {
    /// Index of the opened node, or `None` if recording was off or no
    /// trace was active on this thread.
    idx: Option<usize>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(idx) = self.idx {
            COLLECTOR.with(|c| {
                if let Some(col) = c.borrow_mut().as_mut() {
                    col.close(idx);
                }
            });
        }
    }
}

/// Opens a named span on the current thread.
///
/// Near-free when recording is disabled or when no trace is active on
/// this thread (worker threads): the guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { idx: None };
    }
    let idx = COLLECTOR.with(|c| c.borrow_mut().as_mut().map(|col| col.open(name)));
    SpanGuard { idx }
}

/// Adds `n` to counter `name` on the innermost open span, if any.
#[inline]
pub fn add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.add(name, n);
        }
    });
}

/// ID of the trace currently being recorded on this thread, if any.
///
/// Safe to call from any context, including a panic hook: it uses
/// non-panicking borrows and returns `None` if the collector is busy.
pub fn current_trace_id() -> Option<u64> {
    COLLECTOR
        .try_with(|c| {
            c.try_borrow()
                .ok()
                .and_then(|col| col.as_ref().map(|c| c.id))
        })
        .ok()
        .flatten()
}

/// Name of the innermost open span on this thread's active trace.
///
/// Panic-hook safe, like [`current_trace_id`].
pub fn current_span_name() -> Option<&'static str> {
    COLLECTOR
        .try_with(|c| {
            c.try_borrow().ok().and_then(|col| {
                col.as_ref()
                    .and_then(|c| c.stack.last().map(|&i| c.nodes[i].name))
            })
        })
        .ok()
        .flatten()
}

/// Names of every open span on this thread's active trace, outermost
/// first. Used by the flight recorder to report where a panic struck.
///
/// Panic-hook safe, like [`current_trace_id`].
pub fn current_open_spans() -> Vec<&'static str> {
    COLLECTOR
        .try_with(|c| {
            c.try_borrow()
                .ok()
                .and_then(|col| {
                    col.as_ref()
                        .map(|c| c.stack.iter().map(|&i| c.nodes[i].name).collect())
                })
                .unwrap_or_default()
        })
        .unwrap_or_default()
}

/// Handle to the trace currently being recorded on this thread.
///
/// Dropping the handle without calling [`finish`](Self::finish) still
/// publishes the trace (so panicking request handlers leave evidence),
/// but discards the record.
pub struct ActiveTrace {
    id: u64,
    done: bool,
}

impl ActiveTrace {
    /// The trace's process-unique ID.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ends the trace: detaches the collector, publishes the record to
    /// the global [`registry`] (folding stage histograms), and returns
    /// it.
    pub fn finish(mut self) -> TraceRecord {
        self.done = true;
        take_record(self.id).expect("active trace owns the thread collector")
    }
}

impl Drop for ActiveTrace {
    fn drop(&mut self) {
        if !self.done {
            let _ = take_record(self.id);
        }
    }
}

fn take_record(id: u64) -> Option<TraceRecord> {
    let col = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_ref() {
            Some(col) if col.id == id => slot.take(),
            _ => None,
        }
    });
    col.map(|c| {
        let rec = c.into_record();
        registry::publish(&rec);
        rec
    })
}

/// Starts a trace on the current thread.
///
/// Returns `None` when recording is disabled or when this thread is
/// already recording a trace (traces do not nest; open a [`span`]
/// instead).
pub fn begin(label: impl Into<String>) -> Option<ActiveTrace> {
    if !enabled() {
        return None;
    }
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        if slot.is_some() {
            return None;
        }
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Collector {
            id,
            label: label.into(),
            started: Instant::now(),
            nodes: Vec::new(),
            stack: Vec::new(),
        });
        Some(ActiveTrace { id, done: false })
    })
}

/// Serializes tests that touch the global enable flag or registry.
#[cfg(test)]
pub(crate) fn test_gate() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global enable flag.
    fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
        let _g = crate::test_gate();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn spans_are_inert_without_a_trace() {
        with_tracing(|| {
            let g = span("infer.topk");
            assert!(g.idx.is_none());
            add("orphan", 1); // must not panic
        });
    }

    #[test]
    fn disabled_begin_returns_none() {
        let _g = crate::test_gate();
        set_enabled(false);
        assert!(begin("off").is_none());
        let g = span("request");
        assert!(g.idx.is_none());
    }

    #[test]
    fn nesting_and_counters_round_trip() {
        let rec = with_tracing(|| {
            let t = begin("unit").expect("enabled");
            {
                let _a = span("infer.topk");
                add("rounds", 2);
                {
                    let _b = span("infer.round");
                    add("states", 3);
                    add("states", 4);
                }
                let _c = span("infer.round");
            }
            let _d = span("engine.minimize");
            drop(_d);
            t.finish()
        });
        assert_eq!(
            rec.structure(),
            vec![
                (0, "infer.topk", vec![("rounds", 2)]),
                (1, "infer.round", vec![("states", 7)]),
                (1, "infer.round", vec![]),
                (0, "engine.minimize", vec![]),
            ]
        );
        assert_eq!(rec.spans[1].parent, Some(0));
        assert_eq!(rec.spans[3].parent, None);
        assert!(rec.total_ns >= rec.spans[0].total_ns);
    }

    #[test]
    fn out_of_order_drop_closes_descendants() {
        let rec = with_tracing(|| {
            let t = begin("unit").expect("enabled");
            let outer = span("infer.topk");
            let inner = span("infer.round");
            drop(outer); // closes inner too
            drop(inner); // no-op, already closed
            let _next = span("engine.minimize");
            t.finish()
        });
        assert_eq!(
            rec.structure()
                .iter()
                .map(|(d, n, _)| (*d, *n))
                .collect::<Vec<_>>(),
            vec![
                (0, "infer.topk"),
                (1, "infer.round"),
                (0, "engine.minimize")
            ]
        );
    }

    #[test]
    fn traces_do_not_nest_on_one_thread() {
        with_tracing(|| {
            let t = begin("outer").expect("enabled");
            assert!(begin("inner").is_none());
            t.finish();
        });
    }

    #[test]
    fn self_time_excludes_children() {
        let rec = with_tracing(|| {
            let t = begin("unit").expect("enabled");
            {
                let _a = span("infer.topk");
                let _b = span("infer.round");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            t.finish()
        });
        assert!(rec.spans[0].total_ns >= rec.spans[1].total_ns);
        assert_eq!(
            rec.self_ns(0),
            rec.spans[0].total_ns - rec.spans[1].total_ns
        );
    }

    #[test]
    fn stage_totals_aggregate_by_name() {
        let rec = with_tracing(|| {
            let t = begin("unit").expect("enabled");
            for _ in 0..3 {
                let _r = span("infer.round");
            }
            t.finish()
        });
        let totals = rec.stage_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].0, "infer.round");
        assert_eq!(totals[0].1, 3);
    }

    #[test]
    fn correlation_accessors_track_the_active_trace() {
        with_tracing(|| {
            assert_eq!(current_trace_id(), None);
            assert_eq!(current_span_name(), None);
            assert!(current_open_spans().is_empty());
            let t = begin("unit").expect("enabled");
            assert_eq!(current_trace_id(), Some(t.id()));
            {
                let _a = span("infer.topk");
                let _b = span("infer.round");
                assert_eq!(current_span_name(), Some("infer.round"));
                assert_eq!(current_open_spans(), vec!["infer.topk", "infer.round"]);
            }
            assert_eq!(current_span_name(), None);
            t.finish();
            assert_eq!(current_trace_id(), None);
        });
    }

    #[test]
    fn chrome_export_has_one_event_per_span_plus_trace() {
        let rec = with_tracing(|| {
            let t = begin("POST /eval \"q\"").expect("enabled");
            {
                let _a = span("infer.topk");
                add("rounds", 3);
                let _b = span("infer.round");
            }
            t.finish()
        });
        let json = rec.to_chrome_json();
        assert_eq!(json.matches("\"ph\":\"X\"").count(), rec.spans.len() + 1);
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"name\":\"infer.topk\""));
        assert!(json.contains("\"rounds\":3"));
        assert!(json.contains("\\\"q\\\""), "label quotes are escaped");
        assert!(json.contains(&format!("\"trace_id\":{}", rec.id)));
    }

    #[test]
    fn chrome_export_parses_as_wire_json() {
        let rec = with_tracing(|| {
            let t = begin("trace \\ \"label\"\nwith control chars").expect("enabled");
            {
                let _a = span("engine.evaluate_union");
                add("matches", 42);
            }
            t.finish()
        });
        let json = questpro_wire::parse(&rec.to_chrome_json()).expect("valid JSON");
        let events = json
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("traceEvents array");
        assert_eq!(events.len(), rec.spans.len() + 1);
        assert_eq!(
            events[0].get("name").and_then(|v| v.as_str()),
            Some("trace \\ \"label\"\nwith control chars")
        );
        assert_eq!(
            events[1].get("name").and_then(|v| v.as_str()),
            Some("engine.evaluate_union")
        );
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("matches"))
                .and_then(|v| v.as_u64()),
            Some(42)
        );
    }

    #[test]
    fn render_tree_mentions_every_span() {
        let rec = with_tracing(|| {
            let t = begin("render").expect("enabled");
            let _a = span("infer.topk");
            let _b = span("infer.consistency");
            drop((_a, _b));
            t.finish()
        });
        let text = rec.render_tree();
        assert!(text.contains("infer.topk"));
        assert!(text.contains("infer.consistency"));
        assert!(text.contains("self"));
    }
}
