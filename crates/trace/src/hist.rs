//! Labeled log2-bucket latency histograms behind relaxed atomics.
//!
//! [`HistogramSet`] is the reusable core: a fixed, compile-time list of
//! label values (stages, HTTP routes, …), one histogram per label,
//! updated lock-free and scraped by the server's `GET /metrics`. The
//! per-stage set that `questpro-trace` feeds when a finished trace is
//! published is one instance (the free functions below); the server's
//! per-route set is another. Bucket upper bounds are powers of two from
//! 2^10 ns (1 µs) to 2^33 ns (~8.6 s); durations below the first bound
//! land in the first bucket, everything above the last lands in `+Inf`.
//! The bucket layout and every label list are fixed at compile time, so
//! the Prometheus exposition format never varies with traffic — the
//! golden-file test freezes it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::STAGES;

/// log2 of the first finite bucket's upper bound (2^10 ns = 1 µs).
pub const FIRST_BUCKET_LOG2: u32 = 10;
/// log2 of the last finite bucket's upper bound (2^33 ns ≈ 8.6 s).
pub const LAST_BUCKET_LOG2: u32 = 33;
/// Number of finite buckets per label.
pub const BUCKETS: usize = (LAST_BUCKET_LOG2 - FIRST_BUCKET_LOG2 + 1) as usize;

struct LabelHist {
    counts: Vec<AtomicU64>, // BUCKETS entries; +Inf is derived from total
    total: AtomicU64,
    sum_ns: AtomicU64,
}

/// A fixed family of log2 latency histograms, one per label value.
///
/// The label list is `&'static` so the exposition format (which labels
/// render, in which order) is decided at compile time; recording under
/// a label outside the list is ignored.
pub struct HistogramSet {
    labels: &'static [&'static str],
    hists: Vec<LabelHist>,
}

impl HistogramSet {
    /// Creates a zeroed set with one histogram per label.
    pub fn new(labels: &'static [&'static str]) -> HistogramSet {
        HistogramSet {
            labels,
            hists: labels
                .iter()
                .map(|_| LabelHist {
                    counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                    total: AtomicU64::new(0),
                    sum_ns: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// The label list this set renders, in order.
    pub fn labels(&self) -> &'static [&'static str] {
        self.labels
    }

    /// Records one observation of `ns` nanoseconds under `label`.
    /// Labels outside the fixed list are ignored.
    pub fn record(&self, label: &str, ns: u64) {
        let Some(idx) = self.labels.iter().position(|s| *s == label) else {
            return;
        };
        let h = &self.hists[idx];
        h.total.fetch_add(1, Ordering::Relaxed);
        h.sum_ns.fetch_add(ns, Ordering::Relaxed);
        // Smallest bucket whose upper bound 2^b satisfies ns <= 2^b,
        // i.e. ceil(log2(ns)); everything at or below the first bound
        // shares bucket 0, everything above the last bound counts only
        // toward `total` (the +Inf bucket).
        let floor_log2 = 63 - ns.max(1).leading_zeros() as u64;
        let ceil_log2 = floor_log2 + u64::from(!ns.max(1).is_power_of_two());
        let le_idx = ceil_log2.saturating_sub(FIRST_BUCKET_LOG2 as u64);
        if le_idx >= BUCKETS as u64 {
            return; // +Inf only
        }
        h.counts[le_idx as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots every histogram, in label order, always including
    /// labels that were never observed (zero-filled).
    pub fn snapshot(&self) -> Vec<HistSnapshot> {
        self.hists
            .iter()
            .zip(self.labels.iter())
            .map(|(h, label)| {
                let raw: Vec<u64> = h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
                let mut cum = 0;
                let buckets = raw
                    .iter()
                    .map(|&c| {
                        cum += c;
                        cum
                    })
                    .collect();
                HistSnapshot {
                    stage: label,
                    buckets,
                    count: h.total.load(Ordering::Relaxed),
                    sum_ns: h.sum_ns.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}

fn stage_set() -> &'static HistogramSet {
    static HISTS: OnceLock<HistogramSet> = OnceLock::new();
    HISTS.get_or_init(|| HistogramSet::new(STAGES))
}

/// One label's histogram, read atomically bucket-by-bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Label value (for the built-in set, an entry of [`STAGES`]).
    pub stage: &'static str,
    /// Cumulative counts per finite bucket: `buckets[i]` is the number
    /// of observations with duration ≤ 2^(FIRST_BUCKET_LOG2 + i) ns.
    pub buckets: Vec<u64>,
    /// Total observations (the `+Inf` cumulative count).
    pub count: u64,
    /// Sum of all observed durations, in nanoseconds.
    pub sum_ns: u64,
}

/// Records one observation of `ns` nanoseconds for stage `name` in the
/// built-in per-stage set. Names outside [`STAGES`] are ignored.
pub fn record(name: &str, ns: u64) {
    stage_set().record(name, ns);
}

/// Snapshots every stage histogram, in [`STAGES`] order, always
/// including stages that were never observed (zero-filled).
pub fn snapshot() -> Vec<HistSnapshot> {
    stage_set().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage_snap(name: &str) -> HistSnapshot {
        snapshot()
            .into_iter()
            .find(|s| s.stage == name)
            .expect("stage exists")
    }

    #[test]
    fn snapshot_covers_all_stages_zero_filled() {
        let snap = snapshot();
        assert_eq!(snap.len(), STAGES.len());
        for s in &snap {
            assert_eq!(s.buckets.len(), BUCKETS);
        }
    }

    #[test]
    fn unknown_stage_is_ignored() {
        record("not.a.stage", 123);
        // No panic, nothing to assert beyond the call returning.
    }

    #[test]
    fn custom_sets_are_independent_of_the_stage_set() {
        static LABELS: &[&str] = &["a", "b"];
        let set = HistogramSet::new(LABELS);
        set.record("a", 1);
        set.record("a", 1 << 40);
        set.record("nope", 1);
        let snap = set.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].count, 2);
        assert_eq!(snap[0].buckets[0], 1, "1ns in the first bucket");
        assert_eq!(snap[0].buckets[BUCKETS - 1], 1, "2^40 only in +Inf");
        assert_eq!(snap[1].count, 0, "unobserved labels render zero-filled");
        assert_eq!(set.labels(), LABELS);
    }

    #[test]
    fn observations_land_in_log2_buckets() {
        // Use a dedicated stage that no other test in this binary records.
        let name = "feedback.session.answer";
        let before = stage_snap(name);
        record(name, 1); // ≤ 1µs → bucket 0
        record(name, (1 << FIRST_BUCKET_LOG2) + 1); // just over 1µs → bucket 1
        record(name, 1 << 20); // exactly 2^20 → bucket for le=2^20
        record(name, 1 << 40); // above the last finite bound → +Inf only
        let after = stage_snap(name);
        assert_eq!(after.count - before.count, 4);
        assert_eq!(
            after.sum_ns - before.sum_ns,
            1 + (1u64 << 10) + 1 + (1 << 20) + (1 << 40)
        );
        let delta: Vec<u64> = after
            .buckets
            .iter()
            .zip(before.buckets.iter())
            .map(|(a, b)| a - b)
            .collect();
        assert_eq!(delta[0], 1, "1ns lands in the first bucket");
        assert_eq!(delta[1], 2, "cumulative through le=2^11");
        let idx_2_20 = (20 - FIRST_BUCKET_LOG2) as usize;
        assert_eq!(delta[idx_2_20], 3, "2^20 is ≤ its own bound");
        assert_eq!(delta[idx_2_20 - 1], 2, "2^20 is above the previous bound");
        assert_eq!(delta[BUCKETS - 1], 3, "u64::MAX only in +Inf");
    }
}
