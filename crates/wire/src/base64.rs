//! Standard base64 (RFC 4648 §4, with `=` padding), hand-rolled.
//!
//! Binary snapshots travel through the JSON wire format as base64
//! strings (`POST /ontologies` with a `snapshot_b64` field), and JSON
//! cannot carry raw bytes. The decoder is strict — no whitespace, no
//! missing padding, no trailing garbage — because it sits on an
//! untrusted input surface: anything malformed is a named error, never
//! a best-effort guess.

use std::fmt;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// A malformed base64 input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Base64Error {
    /// The input length is not a multiple of 4.
    BadLength {
        /// The offending length.
        len: usize,
    },
    /// A byte outside the alphabet (or misplaced padding).
    BadChar {
        /// The offending byte, lossily rendered.
        ch: char,
        /// Byte offset of the offending character.
        at: usize,
    },
    /// Padding bits that must be zero are not (a non-canonical final
    /// quantum, e.g. `QQ==` vs `QR==`).
    BadPadding,
}

impl fmt::Display for Base64Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Base64Error::BadLength { len } => {
                write!(f, "bad base64 length {len}: not a multiple of 4")
            }
            Base64Error::BadChar { ch, at } => {
                write!(f, "bad base64 character {ch:?} at offset {at}")
            }
            Base64Error::BadPadding => write!(f, "bad base64 padding: trailing bits are not zero"),
        }
    }
}

impl std::error::Error for Base64Error {}

/// Encodes bytes as standard padded base64.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    let mut chunks = bytes.chunks_exact(3);
    for c in &mut chunks {
        let n = (u32::from(c[0]) << 16) | (u32::from(c[1]) << 8) | u32::from(c[2]);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(ALPHABET[(n >> 6) as usize & 63] as char);
        out.push(ALPHABET[n as usize & 63] as char);
    }
    match *chunks.remainder() {
        [a] => {
            let n = u32::from(a) << 16;
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push_str("==");
        }
        [a, b] => {
            let n = (u32::from(a) << 16) | (u32::from(b) << 8);
            out.push(ALPHABET[(n >> 18) as usize & 63] as char);
            out.push(ALPHABET[(n >> 12) as usize & 63] as char);
            out.push(ALPHABET[(n >> 6) as usize & 63] as char);
            out.push('=');
        }
        _ => {}
    }
    out
}

/// The 6-bit value of one alphabet byte, or `None` outside it.
fn sextet(b: u8) -> Option<u32> {
    match b {
        b'A'..=b'Z' => Some(u32::from(b - b'A')),
        b'a'..=b'z' => Some(u32::from(b - b'a') + 26),
        b'0'..=b'9' => Some(u32::from(b - b'0') + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes strict standard base64 (padded, canonical, no whitespace).
///
/// # Errors
/// Any deviation from the strict grammar yields a [`Base64Error`].
pub fn decode(s: &str) -> Result<Vec<u8>, Base64Error> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(Base64Error::BadLength { len: bytes.len() });
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (chunk_index, chunk) in bytes.chunks_exact(4).enumerate() {
        let at = |i: usize| chunk_index * 4 + i;
        let bad = |i: usize| Base64Error::BadChar {
            ch: char::from(chunk[i]),
            at: at(i),
        };
        // Padding may only appear in the final chunk, as `xx==` or `xxx=`.
        let is_last = (chunk_index + 1) * 4 == bytes.len();
        let pad = chunk.iter().rev().take_while(|&&b| b == b'=').count();
        if pad > 0 && !is_last {
            return Err(bad(4 - pad));
        }
        match pad {
            0 => {
                let mut n = 0u32;
                for (i, &b) in chunk.iter().enumerate() {
                    n = (n << 6) | sextet(b).ok_or_else(|| bad(i))?;
                }
                out.extend_from_slice(&[(n >> 16) as u8, (n >> 8) as u8, n as u8]);
            }
            1 => {
                let mut n = 0u32;
                for (i, &b) in chunk.iter().take(3).enumerate() {
                    n = (n << 6) | sextet(b).ok_or_else(|| bad(i))?;
                }
                if n & 0b11 != 0 {
                    return Err(Base64Error::BadPadding);
                }
                out.extend_from_slice(&[(n >> 10) as u8, (n >> 2) as u8]);
            }
            2 => {
                let mut n = 0u32;
                for (i, &b) in chunk.iter().take(2).enumerate() {
                    n = (n << 6) | sextet(b).ok_or_else(|| bad(i))?;
                }
                if n & 0b1111 != 0 {
                    return Err(Base64Error::BadPadding);
                }
                out.push((n >> 4) as u8);
            }
            // `x===` and `====` have no valid decoding.
            _ => return Err(bad(1)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        for (plain, b64) in [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain.as_bytes()), b64);
            assert_eq!(decode(b64).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn round_trips_every_length_of_binary_data() {
        let mut state = 0x243F_6A88_85A3_08D3u64;
        for len in 0..200usize {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 56) as u8
                })
                .collect();
            assert_eq!(decode(&encode(&bytes)).unwrap(), bytes, "len {len}");
        }
    }

    #[test]
    fn rejects_bad_length_characters_and_padding() {
        assert_eq!(decode("Zg="), Err(Base64Error::BadLength { len: 3 }));
        assert!(matches!(
            decode("Zm9v Zg=="),
            Err(Base64Error::BadLength { .. })
        ));
        assert_eq!(decode("Zm!v"), Err(Base64Error::BadChar { ch: '!', at: 2 }));
        // Padding in a non-final chunk.
        assert!(matches!(
            decode("Zg==Zm9v"),
            Err(Base64Error::BadChar { ch: '=', .. })
        ));
        // Non-canonical trailing bits: QR== decodes 'A' plus junk bits.
        assert_eq!(decode("QR=="), Err(Base64Error::BadPadding));
        assert_eq!(decode("QUJ="), Err(Base64Error::BadPadding));
        // Over-padded quanta.
        assert!(decode("Z===").is_err());
        assert!(decode("====").is_err());
        // Errors render with offsets.
        let msg = decode("Zm!v").unwrap_err().to_string();
        assert!(msg.contains("offset 2"), "{msg}");
    }
}
