//! The QuestPro-RS wire format: JSON, hand-rolled.
//!
//! The workspace is offline and zero-dependency by design, so the HTTP
//! service in `questpro-server` cannot reach for `serde_json`. This
//! crate is the replacement: a small JSON value model ([`Json`]), a
//! serializer that emits canonical compact text (object keys in
//! insertion order, `f64` numbers via Rust's shortest round-trip
//! formatting), and a recursive-descent parser that is **limit-guarded**
//! — callers set a maximum input size and nesting depth ([`Limits`]) so
//! a hostile request body can neither exhaust memory nor blow the stack.
//!
//! Parsing accepts exactly the JSON grammar (RFC 8259) minus two
//! deliberate omissions: `\u` escapes outside the Basic Multilingual
//! Plane are combined from surrogate pairs, and numbers are parsed as
//! `f64` (the only numeric type the service speaks). Every parse error
//! carries a byte offset for diagnostics.
//!
//! The crate is deliberately dependency-free both ways: nothing in the
//! workspace below it, nothing external above it. `questpro-feedback`
//! uses it to snapshot interactive sessions; `questpro-server` uses it
//! for every request and response body.

use std::fmt;

pub mod base64;
pub mod update;

/// A parsed JSON value.
///
/// Objects preserve insertion order (serialization is deterministic),
/// and duplicate keys are rejected at parse time.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (convenience constructor).
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative
    /// integral number that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload as a `usize` (see [`Json::as_u64`]); `None`
    /// when the value does not fit the platform's `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        write_value(&mut s, self);
        s
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_num(out, *n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; emit null like every lenient
        // serializer does rather than producing unparseable text.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Resource limits enforced during parsing.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum input length in bytes.
    pub max_bytes: usize,
    /// Maximum nesting depth of arrays/objects.
    pub max_depth: usize,
}

impl Default for Limits {
    /// 1 MiB of text, 64 levels of nesting — generous for every body
    /// the service exchanges, tight enough to bound hostile input.
    fn default() -> Self {
        Self {
            max_bytes: 1 << 20,
            max_depth: 64,
        }
    }
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document under [`Limits::default`].
///
/// # Errors
/// Returns a [`ParseError`] on malformed input, trailing garbage, or a
/// violated limit.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    parse_with(text, Limits::default())
}

/// Parses a complete JSON document under explicit limits.
///
/// # Errors
/// Returns a [`ParseError`] on malformed input, trailing garbage, or a
/// violated limit.
pub fn parse_with(text: &str, limits: Limits) -> Result<Json, ParseError> {
    if text.len() > limits.max_bytes {
        return Err(ParseError {
            offset: limits.max_bytes,
            message: format!(
                "input of {} bytes exceeds the {}-byte limit",
                text.len(),
                limits.max_bytes
            ),
        });
    }
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        limits,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    limits: Limits,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > self.limits.max_depth {
            return Err(self.err(format!(
                "nesting deeper than the {}-level limit",
                self.limits.max_depth
            )));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one complete UTF-8 scalar (input is &str,
                    // so boundaries are trustworthy; a typed error keeps
                    // this input-reachable path panic-free regardless).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 inside string"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("number contains non-ASCII bytes"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unrepresentable number {text:?}")))?;
        // `f64::from_str` saturates out-of-range literals to ±inf, but
        // JSON has no infinity: the value could never be re-serialized
        // (the writer would emit `null`), silently breaking round-trips.
        // Reject at the source instead.
        if !n.is_finite() {
            return Err(self.err(format!("number {text:?} is out of range for an f64")));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_graph::rng::{Rng, StdRng};

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\""] {
            let v = parse(text).unwrap();
            assert_eq!(v.to_text(), text);
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn serializes_deterministically() {
        let v = Json::obj([
            ("z", Json::from(1u64)),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_text(), r#"{"z":1,"a":[true,null]}"#);
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\nquote\" backslash\\ tab\t unicode \u{1F600} nul-ish \u{01}";
        let v = Json::Str(s.to_string());
        let text = v.to_text();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_combine() {
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn broken_surrogate_escapes_are_errors_not_garbage() {
        // Every way a surrogate escape can go wrong must be a clean
        // ParseError \u2014 no panic, no U+FFFD replacement smuggled into the
        // value (which would silently break round-trips).
        for text in [
            r#""\ud83dA""#,      // high surrogate followed by a raw char
            r#""\uD800\n""#,     // high surrogate followed by another escape
            r#""\ud83d\ud83d""#, // high followed by high
            r#""\ude00\ud83d""#, // pair in the wrong order
            r#""\ud83d\u0041""#, // high followed by a non-surrogate \u
            r#""\ud83d\uzz00""#, // high followed by bad hex
            r#""\ud83d"#,        // high surrogate at end of input
            r#""\udfff""#,       // lone low surrogate, upper edge
        ] {
            let r = parse(text);
            assert!(r.is_err(), "{text} must fail, got {r:?}");
        }
    }

    #[test]
    fn out_of_range_numbers_are_rejected() {
        // f64::from_str saturates to infinity; the parser must not let
        // an unserializable value through.
        for text in ["1e999", "-1e999", "1e309", "123456789e400"] {
            let err = parse(text).unwrap_err();
            assert!(err.message.contains("out of range"), "{text}: {err}");
        }
        // The largest finite f64 still parses.
        assert!(parse("1.7976931348623157e308").unwrap().as_f64().unwrap() < f64::INFINITY);
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse_with(
            &deep,
            Limits {
                max_depth: 100,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(err.message.contains("nesting"));
        // Within the limit it parses fine.
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse_with(
            &ok,
            Limits {
                max_depth: 100,
                ..Default::default()
            }
        )
        .is_ok());
    }

    #[test]
    fn size_limit_is_enforced() {
        let big = format!("\"{}\"", "x".repeat(100));
        let err = parse_with(
            &big,
            Limits {
                max_bytes: 50,
                max_depth: 8,
            },
        )
        .unwrap_err();
        assert!(err.message.contains("byte limit"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,\"a\":2}",
            "\"\\x\"",
            "nan",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    /// Generates a random JSON tree from the workspace RNG.
    fn random_json<R: Rng>(rng: &mut R, depth: usize) -> Json {
        match if depth == 0 {
            rng.random_range(0..4usize)
        } else {
            rng.random_range(0..6usize)
        } {
            0 => Json::Null,
            1 => Json::Bool(rng.random_bool(0.5)),
            2 => {
                // Mix integers and dyadic fractions (exact in f64, so
                // text round-trips are equality-stable).
                let n = rng.random_range(-1000i64..1000) as f64;
                let frac = rng.random_range(0..4u32) as f64 / 4.0;
                Json::Num(n + frac)
            }
            3 => {
                let len = rng.random_range(0..12usize);
                let s: String = (0..len)
                    .map(|_| {
                        // Printable ASCII + a few escapes + non-ASCII.
                        let c = rng.random_range(0..40u32);
                        match c {
                            0 => '"',
                            1 => '\\',
                            2 => '\n',
                            3 => '\t',
                            4 => '\u{e9}',
                            5 => '\u{1F600}',
                            c => char::from_u32('a' as u32 + (c % 26)).expect("ascii"),
                        }
                    })
                    .collect();
                Json::Str(s)
            }
            4 => {
                let len = rng.random_range(0..5usize);
                Json::Arr((0..len).map(|_| random_json(rng, depth - 1)).collect())
            }
            _ => {
                let len = rng.random_range(0..5usize);
                Json::Obj(
                    (0..len)
                        .map(|i| (format!("k{i}"), random_json(rng, depth - 1)))
                        .collect(),
                )
            }
        }
    }

    #[test]
    fn fuzz_round_trip_random_trees() {
        let mut rng = StdRng::seed_from_u64(0x71f3);
        for _ in 0..500 {
            let v = random_json(&mut rng, 4);
            let text = v.to_text();
            let back = parse(&text).unwrap_or_else(|e| panic!("reparse failed on {text}: {e}"));
            assert_eq!(back, v, "round-trip mismatch for {text}");
        }
    }

    #[test]
    fn fuzz_random_bytes_never_panic() {
        let mut rng = StdRng::seed_from_u64(0xbadf00d);
        let alphabet: Vec<char> = "{}[]\",:0123456789.eE+-truefalsn\\/ \n\tabcz\u{e9}"
            .chars()
            .collect();
        for _ in 0..2000 {
            let len = rng.random_range(0..64usize);
            let text: String = (0..len)
                .map(|_| alphabet[rng.random_range(0..alphabet.len())])
                .collect();
            // Must terminate and never panic; the result may be either.
            let _ = parse(&text);
        }
    }

    #[test]
    fn fuzz_mutated_valid_documents_never_panic() {
        let mut rng = StdRng::seed_from_u64(0x5eed);
        for _ in 0..500 {
            let v = random_json(&mut rng, 3);
            let mut text: Vec<char> = v.to_text().chars().collect();
            if text.is_empty() {
                continue;
            }
            // Flip one character to something hostile.
            let i = rng.random_range(0..text.len());
            let repl = ['{', '"', '\\', '\u{0}', ']', ','];
            text[i] = repl[rng.random_range(0..repl.len())];
            let mutated: String = text.into_iter().collect();
            let _ = parse(&mutated);
        }
    }

    #[test]
    fn number_edge_cases() {
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(parse("-0").unwrap().as_f64(), Some(-0.0));
        assert_eq!(parse("2.5e-1").unwrap().as_f64(), Some(0.25));
        assert_eq!(Json::Num(f64::NAN).to_text(), "null");
        // Non-integral and negative numbers refuse as_u64.
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
