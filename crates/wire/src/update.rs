//! Wire form of a batched ontology update.
//!
//! `POST /ontologies/:name/update` carries a JSON object with two
//! optional triple lists:
//!
//! ```json
//! {
//!   "insert": [["paper9", "writtenBy", "Eve"], ...],
//!   "delete": [["paper1", "cites", "paper2"], ...]
//! }
//! ```
//!
//! [`parse_update`] converts that into a
//! [`questpro_graph::TripleDelta`] under **strict** validation: every
//! triple must be a 3-element array of non-empty strings, at least one
//! of the two lists must be present and non-empty, and anything else —
//! wrong types, wrong arity, empty labels, an entirely empty batch —
//! is a descriptive `Err` the server maps to a 4xx. Untrusted bodies
//! can never panic here; the Json value model is already depth- and
//! size-limited by the parser.

use questpro_graph::TripleDelta;

use crate::Json;

/// Reads one `[s, p, o]` wire triple.
fn triple_of(v: &Json, list: &str, i: usize) -> Result<[String; 3], String> {
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("{list}[{i}] must be an array"))?;
    if arr.len() != 3 {
        return Err(format!(
            "{list}[{i}] must have exactly 3 elements, got {}",
            arr.len()
        ));
    }
    let mut out = [String::new(), String::new(), String::new()];
    for (j, slot) in out.iter_mut().enumerate() {
        let s = arr[j]
            .as_str()
            .ok_or_else(|| format!("{list}[{i}][{j}] must be a string"))?;
        if s.is_empty() {
            return Err(format!("{list}[{i}][{j}] must be a non-empty label"));
        }
        *slot = s.to_string();
    }
    Ok(out)
}

/// Reads an optional triple list field (`"insert"` / `"delete"`).
fn list_of(body: &Json, list: &str) -> Result<Vec<[String; 3]>, String> {
    match body.get(list) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(v) => {
            let arr = v
                .as_arr()
                .ok_or_else(|| format!("{list} must be an array of [s, p, o] triples"))?;
            arr.iter()
                .enumerate()
                .map(|(i, t)| triple_of(t, list, i))
                .collect()
        }
    }
}

/// Parses a strict update batch from a request body.
///
/// # Errors
/// A displayable message naming the first offending field; the caller
/// maps it to a 422.
pub fn parse_update(body: &Json) -> Result<TripleDelta, String> {
    if body.as_obj().is_none() {
        return Err("update body must be a JSON object".to_string());
    }
    let delta = TripleDelta {
        inserts: list_of(body, "insert")?,
        deletes: list_of(body, "delete")?,
    };
    if delta.is_empty() {
        return Err("update batch is empty: provide \"insert\" and/or \"delete\"".to_string());
    }
    Ok(delta)
}

/// Renders a delta back to its wire form (used by `questpro update`
/// round-trip tests and client tooling).
pub fn render_update(delta: &TripleDelta) -> Json {
    let list = |ts: &[[String; 3]]| {
        Json::Arr(
            ts.iter()
                .map(|t| Json::Arr(t.iter().map(Json::str).collect()))
                .collect(),
        )
    };
    Json::obj([
        ("insert", list(&delta.inserts)),
        ("delete", list(&delta.deletes)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_text(text: &str) -> Result<TripleDelta, String> {
        parse_update(&crate::parse(text).expect("test JSON parses"))
    }

    #[test]
    fn well_formed_batches_round_trip() {
        let d = parse_text(
            r#"{"insert": [["a", "p", "b"], ["b", "q", "c"]], "delete": [["c", "p", "d"]]}"#,
        )
        .unwrap();
        assert_eq!(d.inserts.len(), 2);
        assert_eq!(d.deletes.len(), 1);
        assert_eq!(d.inserts[1], ["b".to_string(), "q".into(), "c".into()]);
        let rendered = render_update(&d);
        let back = parse_update(&rendered).unwrap();
        assert_eq!(back.inserts, d.inserts);
        assert_eq!(back.deletes, d.deletes);
    }

    #[test]
    fn one_sided_batches_are_fine() {
        assert_eq!(
            parse_text(r#"{"insert": [["a", "p", "b"]]}"#)
                .unwrap()
                .deletes
                .len(),
            0
        );
        assert_eq!(
            parse_text(r#"{"delete": [["a", "p", "b"]], "insert": null}"#)
                .unwrap()
                .inserts
                .len(),
            0
        );
    }

    #[test]
    fn malformed_batches_name_the_offending_field() {
        for (body, needle) in [
            (r#"[]"#, "must be a JSON object"),
            (r#"{}"#, "batch is empty"),
            (r#"{"insert": [], "delete": []}"#, "batch is empty"),
            (r#"{"insert": "abc"}"#, "insert must be an array"),
            (r#"{"insert": [["a", "p"]]}"#, "exactly 3"),
            (r#"{"insert": [["a", "p", "b", "c"]]}"#, "exactly 3"),
            (
                r#"{"insert": [["a", 7, "b"]]}"#,
                "insert[0][1] must be a string",
            ),
            (r#"{"delete": [["a", "", "b"]]}"#, "non-empty label"),
            (r#"{"delete": [{"s": "a"}]}"#, "delete[0] must be an array"),
        ] {
            let err = parse_text(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }
}
