//! Property tests for the canonical subgraph algebra, driven by the
//! workspace's internal seeded RNG (no external property-test crate).

use questpro_graph::rng::{Rng, StdRng};
use questpro_graph::{EdgeId, Ontology, Subgraph};

const CASES: usize = 128;

/// Random edge list over ≤8 nodes and 2 predicates, deduplicated.
fn arb_edges<R: Rng>(rng: &mut R) -> Vec<(u8, u8, u8)> {
    let target = rng.random_range(1..20usize);
    let mut set = std::collections::BTreeSet::new();
    for _ in 0..target * 2 {
        set.insert((
            rng.random_range(0..8u32) as u8,
            rng.random_range(0..2u32) as u8,
            rng.random_range(0..8u32) as u8,
        ));
        if set.len() >= target {
            break;
        }
    }
    set.into_iter().collect()
}

fn build(edges: &[(u8, u8, u8)]) -> Ontology {
    let mut b = Ontology::builder();
    for &(s, p, d) in edges {
        let pred = if p == 0 { "p" } else { "q" };
        b.edge(&format!("n{s}"), pred, &format!("n{d}"))
            .expect("unique");
    }
    b.build()
}

fn pick(ont: &Ontology, mask: u32) -> Subgraph {
    let chosen = ont
        .edge_ids()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 20)) != 0)
        .map(|(_, e)| e);
    Subgraph::from_edges(ont, chosen)
}

/// Union is commutative, associative, idempotent, with ∅ neutral.
#[test]
fn union_is_a_semilattice() {
    let mut rng = StdRng::seed_from_u64(0x5e1);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let o = build(&edges);
        let (m1, m2, m3) = (
            rng.next_u64() as u32,
            rng.next_u64() as u32,
            rng.next_u64() as u32,
        );
        let (a, b, c) = (pick(&o, m1), pick(&o, m2), pick(&o, m3));
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        assert_eq!(a.union(&a), a.clone());
        let empty = Subgraph::from_edges(&o, std::iter::empty::<EdgeId>());
        assert_eq!(a.union(&empty), a);
    }
}

/// Node sets always cover edge endpoints; membership agrees with
/// construction.
#[test]
fn endpoints_are_always_members() {
    let mut rng = StdRng::seed_from_u64(0x5e2);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let o = build(&edges);
        let sg = pick(&o, rng.next_u64() as u32);
        for &e in sg.edges() {
            let d = o.edge(e);
            assert!(sg.contains_node(d.src));
            assert!(sg.contains_node(d.dst));
        }
        for e in o.edge_ids() {
            assert_eq!(sg.contains_edge(e), sg.edges().contains(&e));
        }
    }
}

/// `incident_edges` partitions exactly the edges touching the node.
#[test]
fn incident_edges_are_exact() {
    let mut rng = StdRng::seed_from_u64(0x5e3);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let o = build(&edges);
        let sg = pick(&o, rng.next_u64() as u32);
        for n in o.node_ids() {
            let incident: Vec<_> = sg.incident_edges(&o, n).collect();
            for &e in sg.edges() {
                let d = o.edge(e);
                let touches = d.src == n || d.dst == n;
                assert_eq!(incident.contains(&e), touches);
            }
        }
    }
}

/// Describing a subgraph never panics and mentions every edge.
#[test]
fn describe_mentions_every_edge() {
    let mut rng = StdRng::seed_from_u64(0x5e4);
    for _ in 0..CASES {
        let edges = arb_edges(&mut rng);
        let o = build(&edges);
        let sg = pick(&o, rng.next_u64() as u32);
        let text = sg.describe(&o);
        assert_eq!(text.lines().count(), sg.edge_count());
    }
}
