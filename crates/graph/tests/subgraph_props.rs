//! Property tests for the canonical subgraph algebra.

use proptest::prelude::*;
use questpro_graph::{EdgeId, Ontology, Subgraph};

fn arb_edges() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::btree_set((0u8..8, 0u8..2, 0u8..8), 1..20)
        .prop_map(|s| s.into_iter().collect())
}

fn build(edges: &[(u8, u8, u8)]) -> Ontology {
    let mut b = Ontology::builder();
    for &(s, p, d) in edges {
        let pred = if p == 0 { "p" } else { "q" };
        b.edge(&format!("n{s}"), pred, &format!("n{d}"))
            .expect("unique");
    }
    b.build()
}

fn pick(ont: &Ontology, mask: u32) -> Subgraph {
    let chosen = ont
        .edge_ids()
        .enumerate()
        .filter(|(i, _)| mask & (1 << (i % 20)) != 0)
        .map(|(_, e)| e);
    Subgraph::from_edges(ont, chosen)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Union is commutative, associative, idempotent, with ∅ neutral.
    #[test]
    fn union_is_a_semilattice(edges in arb_edges(), m1 in any::<u32>(), m2 in any::<u32>(), m3 in any::<u32>()) {
        let o = build(&edges);
        let (a, b, c) = (pick(&o, m1), pick(&o, m2), pick(&o, m3));
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
        let empty = Subgraph::from_edges(&o, std::iter::empty::<EdgeId>());
        prop_assert_eq!(a.union(&empty), a);
    }

    /// Node sets always cover edge endpoints; membership agrees with
    /// construction.
    #[test]
    fn endpoints_are_always_members(edges in arb_edges(), m in any::<u32>()) {
        let o = build(&edges);
        let sg = pick(&o, m);
        for &e in sg.edges() {
            let d = o.edge(e);
            prop_assert!(sg.contains_node(d.src));
            prop_assert!(sg.contains_node(d.dst));
        }
        for e in o.edge_ids() {
            prop_assert_eq!(sg.contains_edge(e), sg.edges().contains(&e));
        }
    }

    /// `incident_edges` partitions exactly the edges touching the node.
    #[test]
    fn incident_edges_are_exact(edges in arb_edges(), m in any::<u32>()) {
        let o = build(&edges);
        let sg = pick(&o, m);
        for n in o.node_ids() {
            let incident: Vec<_> = sg.incident_edges(&o, n).collect();
            for &e in sg.edges() {
                let d = o.edge(e);
                let touches = d.src == n || d.dst == n;
                prop_assert_eq!(incident.contains(&e), touches);
            }
        }
    }

    /// Serialization of the ontology commutes with subgraph description:
    /// describing a subgraph never panics and mentions every edge.
    #[test]
    fn describe_mentions_every_edge(edges in arb_edges(), m in any::<u32>()) {
        let o = build(&edges);
        let sg = pick(&o, m);
        let text = sg.describe(&o);
        prop_assert_eq!(text.lines().count(), sg.edge_count());
    }
}
