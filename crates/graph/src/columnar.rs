//! Columnar adjacency indexes and per-predicate statistics.
//!
//! The row-oriented indexes on [`Ontology`](crate::Ontology) (per-node
//! `Vec<EdgeId>` adjacency) answer "all edges at `n`" well but make the
//! matcher's hottest question — "edges at `n` labeled `p`" — a filter
//! scan. This module stores the same adjacency **sorted by predicate**
//! in flat u32 columns, so that question becomes a binary search over a
//! contiguous span, and keeps per-predicate cardinality / distinct-count
//! statistics that feed the engine's cost estimator.
//!
//! Layout (CSR-style):
//!
//! ```text
//! out_sorted: [e0 e3 e7 | e1 e2 | ...]   edge ids, grouped by src node,
//! out_preds:  [p0 p0 p1 | p0 p2 | ...]   sorted by (pred, edge id)
//! out_off:    [0, 3, 5, ...]             node i owns out_sorted[off[i]..off[i+1]]
//! ```
//!
//! Within one node's span the edge ids for a given predicate appear in
//! **ascending edge-id order** — exactly the order a filter scan of the
//! insertion-ordered adjacency list would produce. Swapping the scan for
//! the span is therefore a pure speedup: enumeration order, and hence
//! every downstream sample and provenance set, is unchanged.

use crate::ids::{EdgeId, NodeId, PredId};
use crate::ontology::{EdgeCsr, EdgeData};

/// Per-predicate statistics for cost estimation.
///
/// For predicate `p`: `cardinality` is the number of `p`-edges,
/// `distinct_subjects` / `distinct_objects` the number of distinct
/// source / target nodes among them. A Volcano-style estimator derives
/// expected scan sizes from these (see `questpro-engine::cost`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredStats {
    /// Total number of edges labeled with this predicate.
    pub cardinality: u32,
    /// Distinct source nodes among those edges.
    pub distinct_subjects: u32,
    /// Distinct target nodes among those edges.
    pub distinct_objects: u32,
}

impl PredStats {
    /// Average out-fanout `cardinality / distinct_subjects` (0 if unused).
    pub fn avg_out_fanout(&self) -> f64 {
        if self.distinct_subjects == 0 {
            0.0
        } else {
            f64::from(self.cardinality) / f64::from(self.distinct_subjects)
        }
    }

    /// Average in-fanout `cardinality / distinct_objects` (0 if unused).
    pub fn avg_in_fanout(&self) -> f64 {
        if self.distinct_objects == 0 {
            0.0
        } else {
            f64::from(self.cardinality) / f64::from(self.distinct_objects)
        }
    }
}

/// Sorted columnar adjacency (SPO / OPS orientations) plus statistics.
///
/// Built once in [`OntologyBuilder::build`](crate::OntologyBuilder::build)
/// and owned by the [`Ontology`](crate::Ontology); the POS orientation is
/// the ontology's existing `by_pred` edge list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnarIndexes {
    // SPO orientation: out-adjacency grouped by source node, each span
    // sorted by (pred, edge id). `out_preds` mirrors `out_sorted` so the
    // predicate binary search touches one flat u32 column.
    out_sorted: Vec<EdgeId>,
    out_preds: Vec<PredId>,
    out_off: Vec<u32>,
    // OPS orientation: in-adjacency grouped by target node, same sort.
    in_sorted: Vec<EdgeId>,
    in_preds: Vec<PredId>,
    in_off: Vec<u32>,
    stats: Vec<PredStats>,
}

impl ColumnarIndexes {
    /// Builds the columnar indexes from the edge table.
    ///
    /// `by_pred` groups the edge table by predicate with ids ascending
    /// within each group (as the ontology's CSR indexer produces).
    /// Iterating predicates in id order and appending each bucket yields
    /// every node span already sorted by (pred, edge id) — a two-pass
    /// counting sort, no comparison sort needed.
    pub(crate) fn build(node_count: usize, edges: &[EdgeData], by_pred: &EdgeCsr) -> Self {
        let m = edges.len();
        let pred_count = by_pred.off.len() - 1;
        let mut out_off = vec![0u32; node_count + 1];
        let mut in_off = vec![0u32; node_count + 1];
        for d in edges {
            out_off[d.src.index() + 1] += 1;
            in_off[d.dst.index() + 1] += 1;
        }
        for i in 0..node_count {
            out_off[i + 1] += out_off[i];
            in_off[i + 1] += in_off[i];
        }
        let mut out_sorted = vec![EdgeId::new(0); m];
        let mut out_preds = vec![PredId::new(0); m];
        let mut in_sorted = vec![EdgeId::new(0); m];
        let mut in_preds = vec![PredId::new(0); m];
        // Write cursors, consumed as spans fill left to right.
        let mut out_cur: Vec<u32> = out_off[..node_count].to_vec();
        let mut in_cur: Vec<u32> = in_off[..node_count].to_vec();
        let mut stats = vec![PredStats::default(); pred_count];
        // Stamp arrays for distinct counts: stamp[n] == p+1 iff node n was
        // already seen for predicate p. O(E) overall, no hashing.
        let mut src_stamp = vec![0u32; node_count];
        let mut dst_stamp = vec![0u32; node_count];
        for (pi, st) in stats.iter_mut().enumerate() {
            let bucket = by_pred.span(pi);
            let p = PredId::from_usize(pi);
            st.cardinality = bucket.len() as u32;
            for &e in bucket {
                let d = edges[e.index()];
                let oc = &mut out_cur[d.src.index()];
                out_sorted[*oc as usize] = e;
                out_preds[*oc as usize] = p;
                *oc += 1;
                let ic = &mut in_cur[d.dst.index()];
                in_sorted[*ic as usize] = e;
                in_preds[*ic as usize] = p;
                *ic += 1;
                let stamp = pi as u32 + 1;
                if src_stamp[d.src.index()] != stamp {
                    src_stamp[d.src.index()] = stamp;
                    st.distinct_subjects += 1;
                }
                if dst_stamp[d.dst.index()] != stamp {
                    dst_stamp[d.dst.index()] = stamp;
                    st.distinct_objects += 1;
                }
            }
        }
        Self {
            out_sorted,
            out_preds,
            out_off,
            in_sorted,
            in_preds,
            in_off,
            stats,
        }
    }

    /// Assembles columnar indexes from pre-sorted parts without a
    /// counting-sort pass.
    ///
    /// The persistent store (`questpro-store`) keeps its triple table in
    /// SPO order and its OSP permutation on disk; both map 1:1 onto these
    /// columns, so a snapshot load can hand the arrays over instead of
    /// re-deriving them edge by edge. The contract (checked in debug
    /// builds, trusted in release — snapshot decoding validates the
    /// on-disk form before calling this):
    ///
    /// * `out_off` / `in_off` are monotone CSR offsets of length
    ///   `node_count + 1` ending at `edge_count`;
    /// * each node span of `out_*` / `in_*` is sorted by (pred, edge id),
    ///   matching what the counting-sort builder produces;
    /// * `stats[p]` holds the per-predicate aggregates for predicate `p`.
    pub fn from_sorted_parts(
        out_sorted: Vec<EdgeId>,
        out_preds: Vec<PredId>,
        out_off: Vec<u32>,
        in_sorted: Vec<EdgeId>,
        in_preds: Vec<PredId>,
        in_off: Vec<u32>,
        stats: Vec<PredStats>,
    ) -> Self {
        debug_assert_eq!(out_sorted.len(), out_preds.len());
        debug_assert_eq!(in_sorted.len(), in_preds.len());
        debug_assert_eq!(out_sorted.len(), in_sorted.len());
        debug_assert_eq!(out_off.len(), in_off.len());
        debug_assert_eq!(out_off.last().copied(), Some(out_sorted.len() as u32));
        debug_assert_eq!(in_off.last().copied(), Some(in_sorted.len() as u32));
        debug_assert!(out_off.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(in_off.windows(2).all(|w| w[0] <= w[1]));
        Self {
            out_sorted,
            out_preds,
            out_off,
            in_sorted,
            in_preds,
            in_off,
            stats,
        }
    }

    /// Incrementally maintains the columnar block across a triple delta
    /// instead of rebuilding it from scratch.
    ///
    /// Inputs describe the already-applied delta: `new_edges` is the new
    /// edge table (survivors first, in old relative order, then inserted
    /// edges), `deleted[e]` marks old edge ids that were dropped,
    /// `remap[e]` carries each survivor's new id (monotone, so spans
    /// sorted by `(pred, old id)` stay sorted by `(pred, new id)`), and
    /// ids `>= first_insert` are the inserted edges. Each node span is
    /// produced by a two-pointer merge of its remapped survivors with its
    /// sorted inserts; per-predicate statistics are adjusted from the
    /// affected `(node, pred)` pairs only — `cardinality` by signed
    /// counts, the distinct counts by comparing old-span/new-span
    /// emptiness. The result is bit-identical to a from-scratch
    /// [`ColumnarIndexes`] build over `new_edges` (pinned by the delta
    /// differential tests).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn apply_delta(
        &self,
        old_edges: &[EdgeData],
        new_edges: &[EdgeData],
        deleted: &[bool],
        remap: &[u32],
        old_node_count: usize,
        new_node_count: usize,
        new_pred_count: usize,
        first_insert: u32,
    ) -> Self {
        let m_new = new_edges.len();
        // Per-node survivor-loss and insert-gain counts for both
        // orientations.
        let mut out_off = vec![0u32; new_node_count + 1];
        let mut in_off = vec![0u32; new_node_count + 1];
        for n in 0..old_node_count {
            out_off[n + 1] = self.out_off[n + 1] - self.out_off[n];
            in_off[n + 1] = self.in_off[n + 1] - self.in_off[n];
        }
        for (e, d) in old_edges.iter().enumerate() {
            if deleted[e] {
                out_off[d.src.index() + 1] -= 1;
                in_off[d.dst.index() + 1] -= 1;
            }
        }
        // Inserted edges, sorted per node by (pred, id) for the merge.
        let mut ins_out: Vec<(u32, PredId, EdgeId)> = Vec::new();
        let mut ins_in: Vec<(u32, PredId, EdgeId)> = Vec::new();
        for (i, &d) in new_edges.iter().enumerate().skip(first_insert as usize) {
            let e = EdgeId::from_usize(i);
            ins_out.push((d.src.raw(), d.pred, e));
            ins_in.push((d.dst.raw(), d.pred, e));
            out_off[d.src.index() + 1] += 1;
            in_off[d.dst.index() + 1] += 1;
        }
        ins_out.sort_unstable_by_key(|&(n, p, e)| (n, p.raw(), e.raw()));
        ins_in.sort_unstable_by_key(|&(n, p, e)| (n, p.raw(), e.raw()));
        for i in 0..new_node_count {
            out_off[i + 1] += out_off[i];
            in_off[i + 1] += in_off[i];
        }
        let merge = |old_off: &[u32],
                     old_sorted: &[EdgeId],
                     old_preds: &[PredId],
                     new_off: &[u32],
                     inserts: &[(u32, PredId, EdgeId)]|
         -> (Vec<EdgeId>, Vec<PredId>) {
            let mut sorted = vec![EdgeId::new(0); m_new];
            let mut preds = vec![PredId::new(0); m_new];
            let mut k = 0usize; // cursor into the per-node sorted inserts
            for n in 0..new_node_count {
                let mut w = new_off[n] as usize;
                let (mut a, a_hi) = if n < old_node_count {
                    (old_off[n] as usize, old_off[n + 1] as usize)
                } else {
                    (0, 0)
                };
                let k_hi = {
                    let mut j = k;
                    while j < inserts.len() && inserts[j].0 == n as u32 {
                        j += 1;
                    }
                    j
                };
                // Two-pointer merge by (pred, new edge id). Survivor ids
                // remap below first_insert, insert ids at or above it, so
                // the id comparison needs no special casing.
                while a < a_hi || k < k_hi {
                    let surv = loop {
                        if a >= a_hi {
                            break None;
                        }
                        let e_old = old_sorted[a];
                        if deleted[e_old.index()] {
                            a += 1;
                            continue;
                        }
                        break Some((old_preds[a], EdgeId::new(remap[e_old.index()])));
                    };
                    let take_insert = match (surv, k < k_hi) {
                        (None, true) => true,
                        (None, false) => break,
                        (Some(_), false) => false,
                        (Some((sp, se)), true) => {
                            let (_, ip, ie) = inserts[k];
                            (ip.raw(), ie.raw()) < (sp.raw(), se.raw())
                        }
                    };
                    if take_insert {
                        let (_, p, e) = inserts[k];
                        sorted[w] = e;
                        preds[w] = p;
                        k += 1;
                    } else {
                        let (p, e) = surv.expect("survivor present");
                        sorted[w] = e;
                        preds[w] = p;
                        a += 1;
                    }
                    w += 1;
                }
            }
            (sorted, preds)
        };
        let (out_sorted, out_preds) = merge(
            &self.out_off,
            &self.out_sorted,
            &self.out_preds,
            &out_off,
            &ins_out,
        );
        let (in_sorted, in_preds) = merge(
            &self.in_off,
            &self.in_sorted,
            &self.in_preds,
            &in_off,
            &ins_in,
        );
        // Statistics: cardinality by signed per-pred counts; distinct
        // subject/object counts by re-testing span emptiness for the
        // touched (node, pred) pairs only.
        let mut stats = self.stats.clone();
        stats.resize(new_pred_count, PredStats::default());
        let mut touched_out: Vec<(u32, PredId)> = Vec::new();
        let mut touched_in: Vec<(u32, PredId)> = Vec::new();
        for (e, d) in old_edges.iter().enumerate() {
            if deleted[e] {
                stats[d.pred.index()].cardinality -= 1;
                touched_out.push((d.src.raw(), d.pred));
                touched_in.push((d.dst.raw(), d.pred));
            }
        }
        for &(n, p, _) in &ins_out {
            stats[p.index()].cardinality += 1;
            touched_out.push((n, p));
        }
        for &(n, p, _) in &ins_in {
            touched_in.push((n, p));
        }
        touched_out.sort_unstable();
        touched_out.dedup();
        touched_in.sort_unstable();
        touched_in.dedup();
        let fresh = Self {
            out_sorted,
            out_preds,
            out_off,
            in_sorted,
            in_preds,
            in_off,
            stats: Vec::new(),
        };
        for &(n, p) in &touched_out {
            let node = NodeId::new(n);
            let was = (n as usize) < old_node_count && !self.out_with_pred(node, p).is_empty();
            let now = !fresh.out_with_pred(node, p).is_empty();
            match (was, now) {
                (false, true) => stats[p.index()].distinct_subjects += 1,
                (true, false) => stats[p.index()].distinct_subjects -= 1,
                _ => {}
            }
        }
        for &(n, p) in &touched_in {
            let node = NodeId::new(n);
            let was = (n as usize) < old_node_count && !self.in_with_pred(node, p).is_empty();
            let now = !fresh.in_with_pred(node, p).is_empty();
            match (was, now) {
                (false, true) => stats[p.index()].distinct_objects += 1,
                (true, false) => stats[p.index()].distinct_objects -= 1,
                _ => {}
            }
        }
        Self { stats, ..fresh }
    }

    /// Outgoing edges of `n` labeled `p`, in ascending edge-id order.
    #[inline]
    pub fn out_with_pred(&self, n: NodeId, p: PredId) -> &[EdgeId] {
        let lo = self.out_off[n.index()] as usize;
        let hi = self.out_off[n.index() + 1] as usize;
        let span = &self.out_preds[lo..hi];
        let a = lo + span.partition_point(|&q| q.raw() < p.raw());
        let b = lo + span.partition_point(|&q| q.raw() <= p.raw());
        &self.out_sorted[a..b]
    }

    /// Incoming edges of `n` labeled `p`, in ascending edge-id order.
    #[inline]
    pub fn in_with_pred(&self, n: NodeId, p: PredId) -> &[EdgeId] {
        let lo = self.in_off[n.index()] as usize;
        let hi = self.in_off[n.index() + 1] as usize;
        let span = &self.in_preds[lo..hi];
        let a = lo + span.partition_point(|&q| q.raw() < p.raw());
        let b = lo + span.partition_point(|&q| q.raw() <= p.raw());
        &self.in_sorted[a..b]
    }

    /// Statistics for predicate `p` (zeroed if out of range).
    #[inline]
    pub fn pred_stats(&self, p: PredId) -> PredStats {
        self.stats.get(p.index()).copied().unwrap_or_default()
    }

    /// All per-predicate statistics, indexed by predicate id.
    pub fn all_stats(&self) -> &[PredStats] {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use crate::Ontology;

    #[test]
    fn spans_agree_with_filter_scan_in_order() {
        let mut b = Ontology::builder();
        b.edge("paper1", "wb", "Alice").unwrap();
        b.edge("paper1", "wb", "Bob").unwrap();
        b.edge("paper2", "wb", "Bob").unwrap();
        b.edge("paper2", "cites", "paper1").unwrap();
        b.edge("paper1", "cites", "paper2").unwrap();
        let o = b.build();
        for n in o.node_ids() {
            for praw in 0..o.pred_count() {
                let p = crate::ids::PredId::from_usize(praw);
                let scan_out: Vec<_> = o
                    .out_edges(n)
                    .iter()
                    .copied()
                    .filter(|&e| o.edge(e).pred == p)
                    .collect();
                assert_eq!(o.out_edges_with_pred(n, p), scan_out.as_slice());
                let scan_in: Vec<_> = o
                    .in_edges(n)
                    .iter()
                    .copied()
                    .filter(|&e| o.edge(e).pred == p)
                    .collect();
                assert_eq!(o.in_edges_with_pred(n, p), scan_in.as_slice());
            }
        }
    }

    #[test]
    fn stats_count_cardinality_and_distincts() {
        let mut b = Ontology::builder();
        b.edge("paper1", "wb", "Alice").unwrap();
        b.edge("paper1", "wb", "Bob").unwrap();
        b.edge("paper2", "wb", "Bob").unwrap();
        b.edge("paper2", "cites", "paper1").unwrap();
        let o = b.build();
        let wb = o.pred_by_name("wb").unwrap();
        let st = o.pred_stats(wb);
        assert_eq!(st.cardinality, 3);
        assert_eq!(st.distinct_subjects, 2); // paper1, paper2
        assert_eq!(st.distinct_objects, 2); // Alice, Bob
        let cites = o.pred_by_name("cites").unwrap();
        let st = o.pred_stats(cites);
        assert_eq!(
            (st.cardinality, st.distinct_subjects, st.distinct_objects),
            (1, 1, 1)
        );
        assert!((o.pred_stats(wb).avg_out_fanout() - 1.5).abs() < 1e-12);
        assert!((o.pred_stats(wb).avg_in_fanout() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_missing_predicates_yield_empty_spans() {
        let mut b = Ontology::builder();
        b.node("lonely");
        b.edge("a", "p", "b").unwrap();
        let o = b.build();
        let lonely = o.node_by_value("lonely").unwrap();
        let p = o.pred_by_name("p").unwrap();
        assert!(o.out_edges_with_pred(lonely, p).is_empty());
        assert!(o.in_edges_with_pred(lonely, p).is_empty());
    }
}
