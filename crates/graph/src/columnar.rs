//! Columnar adjacency indexes and per-predicate statistics.
//!
//! The row-oriented indexes on [`Ontology`](crate::Ontology) (per-node
//! `Vec<EdgeId>` adjacency) answer "all edges at `n`" well but make the
//! matcher's hottest question — "edges at `n` labeled `p`" — a filter
//! scan. This module stores the same adjacency **sorted by predicate**
//! in flat u32 columns, so that question becomes a binary search over a
//! contiguous span, and keeps per-predicate cardinality / distinct-count
//! statistics that feed the engine's cost estimator.
//!
//! Layout (CSR-style):
//!
//! ```text
//! out_sorted: [e0 e3 e7 | e1 e2 | ...]   edge ids, grouped by src node,
//! out_preds:  [p0 p0 p1 | p0 p2 | ...]   sorted by (pred, edge id)
//! out_off:    [0, 3, 5, ...]             node i owns out_sorted[off[i]..off[i+1]]
//! ```
//!
//! Within one node's span the edge ids for a given predicate appear in
//! **ascending edge-id order** — exactly the order a filter scan of the
//! insertion-ordered adjacency list would produce. Swapping the scan for
//! the span is therefore a pure speedup: enumeration order, and hence
//! every downstream sample and provenance set, is unchanged.

use crate::ids::{EdgeId, NodeId, PredId};
use crate::ontology::EdgeData;

/// Per-predicate statistics for cost estimation.
///
/// For predicate `p`: `cardinality` is the number of `p`-edges,
/// `distinct_subjects` / `distinct_objects` the number of distinct
/// source / target nodes among them. A Volcano-style estimator derives
/// expected scan sizes from these (see `questpro-engine::cost`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredStats {
    /// Total number of edges labeled with this predicate.
    pub cardinality: u32,
    /// Distinct source nodes among those edges.
    pub distinct_subjects: u32,
    /// Distinct target nodes among those edges.
    pub distinct_objects: u32,
}

impl PredStats {
    /// Average out-fanout `cardinality / distinct_subjects` (0 if unused).
    pub fn avg_out_fanout(&self) -> f64 {
        if self.distinct_subjects == 0 {
            0.0
        } else {
            f64::from(self.cardinality) / f64::from(self.distinct_subjects)
        }
    }

    /// Average in-fanout `cardinality / distinct_objects` (0 if unused).
    pub fn avg_in_fanout(&self) -> f64 {
        if self.distinct_objects == 0 {
            0.0
        } else {
            f64::from(self.cardinality) / f64::from(self.distinct_objects)
        }
    }
}

/// Sorted columnar adjacency (SPO / OPS orientations) plus statistics.
///
/// Built once in [`OntologyBuilder::build`](crate::OntologyBuilder::build)
/// and owned by the [`Ontology`](crate::Ontology); the POS orientation is
/// the ontology's existing `by_pred` edge list.
#[derive(Debug, Clone, Default)]
pub struct ColumnarIndexes {
    // SPO orientation: out-adjacency grouped by source node, each span
    // sorted by (pred, edge id). `out_preds` mirrors `out_sorted` so the
    // predicate binary search touches one flat u32 column.
    out_sorted: Vec<EdgeId>,
    out_preds: Vec<PredId>,
    out_off: Vec<u32>,
    // OPS orientation: in-adjacency grouped by target node, same sort.
    in_sorted: Vec<EdgeId>,
    in_preds: Vec<PredId>,
    in_off: Vec<u32>,
    stats: Vec<PredStats>,
}

impl ColumnarIndexes {
    /// Builds the columnar indexes from the edge table.
    ///
    /// `by_pred[p]` must list the `p`-edges in ascending edge-id order
    /// (as `OntologyBuilder::build` produces). Iterating predicates in id
    /// order and appending each bucket yields every node span already
    /// sorted by (pred, edge id) — a two-pass counting sort, no
    /// comparison sort needed.
    pub fn build(node_count: usize, edges: &[EdgeData], by_pred: &[Vec<EdgeId>]) -> Self {
        let m = edges.len();
        let mut out_off = vec![0u32; node_count + 1];
        let mut in_off = vec![0u32; node_count + 1];
        for d in edges {
            out_off[d.src.index() + 1] += 1;
            in_off[d.dst.index() + 1] += 1;
        }
        for i in 0..node_count {
            out_off[i + 1] += out_off[i];
            in_off[i + 1] += in_off[i];
        }
        let mut out_sorted = vec![EdgeId::new(0); m];
        let mut out_preds = vec![PredId::new(0); m];
        let mut in_sorted = vec![EdgeId::new(0); m];
        let mut in_preds = vec![PredId::new(0); m];
        // Write cursors, consumed as spans fill left to right.
        let mut out_cur: Vec<u32> = out_off[..node_count].to_vec();
        let mut in_cur: Vec<u32> = in_off[..node_count].to_vec();
        let mut stats = vec![PredStats::default(); by_pred.len()];
        // Stamp arrays for distinct counts: stamp[n] == p+1 iff node n was
        // already seen for predicate p. O(E) overall, no hashing.
        let mut src_stamp = vec![0u32; node_count];
        let mut dst_stamp = vec![0u32; node_count];
        for (pi, bucket) in by_pred.iter().enumerate() {
            let p = PredId::from_usize(pi);
            let st = &mut stats[pi];
            st.cardinality = bucket.len() as u32;
            for &e in bucket {
                let d = edges[e.index()];
                let oc = &mut out_cur[d.src.index()];
                out_sorted[*oc as usize] = e;
                out_preds[*oc as usize] = p;
                *oc += 1;
                let ic = &mut in_cur[d.dst.index()];
                in_sorted[*ic as usize] = e;
                in_preds[*ic as usize] = p;
                *ic += 1;
                let stamp = pi as u32 + 1;
                if src_stamp[d.src.index()] != stamp {
                    src_stamp[d.src.index()] = stamp;
                    st.distinct_subjects += 1;
                }
                if dst_stamp[d.dst.index()] != stamp {
                    dst_stamp[d.dst.index()] = stamp;
                    st.distinct_objects += 1;
                }
            }
        }
        Self {
            out_sorted,
            out_preds,
            out_off,
            in_sorted,
            in_preds,
            in_off,
            stats,
        }
    }

    /// Assembles columnar indexes from pre-sorted parts without a
    /// counting-sort pass.
    ///
    /// The persistent store (`questpro-store`) keeps its triple table in
    /// SPO order and its OSP permutation on disk; both map 1:1 onto these
    /// columns, so a snapshot load can hand the arrays over instead of
    /// re-deriving them edge by edge. The contract (checked in debug
    /// builds, trusted in release — snapshot decoding validates the
    /// on-disk form before calling this):
    ///
    /// * `out_off` / `in_off` are monotone CSR offsets of length
    ///   `node_count + 1` ending at `edge_count`;
    /// * each node span of `out_*` / `in_*` is sorted by (pred, edge id),
    ///   matching what [`ColumnarIndexes::build`] produces;
    /// * `stats[p]` holds the per-predicate aggregates for predicate `p`.
    pub fn from_sorted_parts(
        out_sorted: Vec<EdgeId>,
        out_preds: Vec<PredId>,
        out_off: Vec<u32>,
        in_sorted: Vec<EdgeId>,
        in_preds: Vec<PredId>,
        in_off: Vec<u32>,
        stats: Vec<PredStats>,
    ) -> Self {
        debug_assert_eq!(out_sorted.len(), out_preds.len());
        debug_assert_eq!(in_sorted.len(), in_preds.len());
        debug_assert_eq!(out_sorted.len(), in_sorted.len());
        debug_assert_eq!(out_off.len(), in_off.len());
        debug_assert_eq!(out_off.last().copied(), Some(out_sorted.len() as u32));
        debug_assert_eq!(in_off.last().copied(), Some(in_sorted.len() as u32));
        debug_assert!(out_off.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(in_off.windows(2).all(|w| w[0] <= w[1]));
        Self {
            out_sorted,
            out_preds,
            out_off,
            in_sorted,
            in_preds,
            in_off,
            stats,
        }
    }

    /// Outgoing edges of `n` labeled `p`, in ascending edge-id order.
    #[inline]
    pub fn out_with_pred(&self, n: NodeId, p: PredId) -> &[EdgeId] {
        let lo = self.out_off[n.index()] as usize;
        let hi = self.out_off[n.index() + 1] as usize;
        let span = &self.out_preds[lo..hi];
        let a = lo + span.partition_point(|&q| q.raw() < p.raw());
        let b = lo + span.partition_point(|&q| q.raw() <= p.raw());
        &self.out_sorted[a..b]
    }

    /// Incoming edges of `n` labeled `p`, in ascending edge-id order.
    #[inline]
    pub fn in_with_pred(&self, n: NodeId, p: PredId) -> &[EdgeId] {
        let lo = self.in_off[n.index()] as usize;
        let hi = self.in_off[n.index() + 1] as usize;
        let span = &self.in_preds[lo..hi];
        let a = lo + span.partition_point(|&q| q.raw() < p.raw());
        let b = lo + span.partition_point(|&q| q.raw() <= p.raw());
        &self.in_sorted[a..b]
    }

    /// Statistics for predicate `p` (zeroed if out of range).
    #[inline]
    pub fn pred_stats(&self, p: PredId) -> PredStats {
        self.stats.get(p.index()).copied().unwrap_or_default()
    }

    /// All per-predicate statistics, indexed by predicate id.
    pub fn all_stats(&self) -> &[PredStats] {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use crate::Ontology;

    #[test]
    fn spans_agree_with_filter_scan_in_order() {
        let mut b = Ontology::builder();
        b.edge("paper1", "wb", "Alice").unwrap();
        b.edge("paper1", "wb", "Bob").unwrap();
        b.edge("paper2", "wb", "Bob").unwrap();
        b.edge("paper2", "cites", "paper1").unwrap();
        b.edge("paper1", "cites", "paper2").unwrap();
        let o = b.build();
        for n in o.node_ids() {
            for praw in 0..o.pred_count() {
                let p = crate::ids::PredId::from_usize(praw);
                let scan_out: Vec<_> = o
                    .out_edges(n)
                    .iter()
                    .copied()
                    .filter(|&e| o.edge(e).pred == p)
                    .collect();
                assert_eq!(o.out_edges_with_pred(n, p), scan_out.as_slice());
                let scan_in: Vec<_> = o
                    .in_edges(n)
                    .iter()
                    .copied()
                    .filter(|&e| o.edge(e).pred == p)
                    .collect();
                assert_eq!(o.in_edges_with_pred(n, p), scan_in.as_slice());
            }
        }
    }

    #[test]
    fn stats_count_cardinality_and_distincts() {
        let mut b = Ontology::builder();
        b.edge("paper1", "wb", "Alice").unwrap();
        b.edge("paper1", "wb", "Bob").unwrap();
        b.edge("paper2", "wb", "Bob").unwrap();
        b.edge("paper2", "cites", "paper1").unwrap();
        let o = b.build();
        let wb = o.pred_by_name("wb").unwrap();
        let st = o.pred_stats(wb);
        assert_eq!(st.cardinality, 3);
        assert_eq!(st.distinct_subjects, 2); // paper1, paper2
        assert_eq!(st.distinct_objects, 2); // Alice, Bob
        let cites = o.pred_by_name("cites").unwrap();
        let st = o.pred_stats(cites);
        assert_eq!(
            (st.cardinality, st.distinct_subjects, st.distinct_objects),
            (1, 1, 1)
        );
        assert!((o.pred_stats(wb).avg_out_fanout() - 1.5).abs() < 1e-12);
        assert!((o.pred_stats(wb).avg_in_fanout() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_missing_predicates_yield_empty_spans() {
        let mut b = Ontology::builder();
        b.node("lonely");
        b.edge("a", "p", "b").unwrap();
        let o = b.build();
        let lonely = o.node_by_value("lonely").unwrap();
        let p = o.pred_by_name("p").unwrap();
        assert!(o.out_edges_with_pred(lonely, p).is_empty());
        assert!(o.in_edges_with_pred(lonely, p).is_empty());
    }
}
