//! String interning for node values, edge predicates, and node types.
//!
//! The ontology stores each distinct string once and refers to it by a
//! dense `u32` index. Interning keeps the hot matching loops of the query
//! engine free of string comparisons: label equality is integer equality.
//!
//! Two storage modes share one type:
//!
//! * **Dynamic** — one `Box<str>` per label plus a hash index; what the
//!   incremental [`intern`](Interner::intern) path produces.
//! * **Sorted arena** — all labels concatenated in one allocation with an
//!   offset table, built by [`Interner::from_sorted_labels`] from an
//!   already-sorted unique label set (the persistent store's dictionary
//!   order). Lookup is a binary search over the arena — no hash map is
//!   ever built, which is what makes snapshot cold-start O(bytes copied)
//!   instead of O(labels hashed). Labels interned *after* arena
//!   construction (live ontology updates) go to a dynamic overflow
//!   section with ids continuing past the arena, so an arena-backed
//!   interner still supports `intern`.

use std::collections::HashMap;

/// Sorted label arena: `text[offs[i]..offs[i+1]]` is label `i`, labels
/// strictly ascending.
#[derive(Debug, Clone)]
struct SortedArena {
    text: Box<str>,
    offs: Vec<u32>,
}

impl SortedArena {
    fn len(&self) -> usize {
        self.offs.len() - 1
    }

    #[inline]
    fn label(&self, i: usize) -> &str {
        &self.text[self.offs[i] as usize..self.offs[i + 1] as usize]
    }

    fn lookup(&self, s: &str) -> Option<u32> {
        let n = self.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.label(mid).cmp(s) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid as u32),
            }
        }
        None
    }
}

/// A dense string interner.
///
/// Strings are assigned consecutive `u32` indexes in insertion order.
/// Lookup by string is `O(1)` average (hash map) or `O(log n)` (sorted
/// arena mode); lookup by index is a direct array access either way.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    /// Arena-backed prefix: ids `0..arena.len()` resolve here.
    arena: Option<SortedArena>,
    /// Dynamic labels; ids continue after the arena prefix.
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner with capacity for `cap` strings.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            arena: None,
            strings: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// Builds an interner whose index assignment is exactly the order of
    /// `labels` (label `i` gets index `i`).
    ///
    /// This is the bulk-construction path used when decoding a persistent
    /// store snapshot, where the label set is already deduplicated and
    /// id-stable (sorted), so per-string `intern` probing is wasted work.
    /// Returns `None` if any label repeats.
    pub fn from_unique_labels<I>(labels: I) -> Option<Self>
    where
        I: IntoIterator<Item = Box<str>>,
    {
        let iter = labels.into_iter();
        let (lo, _) = iter.size_hint();
        let mut strings: Vec<Box<str>> = Vec::with_capacity(lo);
        let mut index: HashMap<Box<str>, u32> = HashMap::with_capacity(lo);
        for s in iter {
            let i = u32::try_from(strings.len()).ok()?;
            if index.insert(s.clone(), i).is_some() {
                return None;
            }
            strings.push(s);
        }
        Some(Self {
            arena: None,
            strings,
            index,
        })
    }

    /// Builds an arena-backed interner from labels in **strictly
    /// ascending** order (label `i` gets index `i`).
    ///
    /// One allocation for all label bytes, one for the offset table, no
    /// hash map: this is the snapshot cold-start fast path — the store's
    /// dictionaries are sorted on disk, so handing them over costs a
    /// memcpy instead of a per-label hash build. `byte_hint` sizes the
    /// arena up front. Returns `None` if the labels are not strictly
    /// ascending (which also guarantees uniqueness) or overflow `u32`
    /// ids/offsets.
    pub fn from_sorted_labels<'a, I>(labels: I, byte_hint: usize) -> Option<Self>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut text = String::with_capacity(byte_hint);
        let mut offs: Vec<u32> = vec![0];
        let mut prev_start = 0usize;
        let mut first = true;
        for s in labels {
            if !first && &text[prev_start..] >= s {
                return None;
            }
            first = false;
            prev_start = text.len();
            text.push_str(s);
            offs.push(u32::try_from(text.len()).ok()?);
            u32::try_from(offs.len() - 1).ok()?;
        }
        Some(Self {
            arena: Some(SortedArena {
                text: text.into_boxed_str(),
                offs,
            }),
            strings: Vec::new(),
            index: HashMap::new(),
        })
    }

    #[inline]
    fn arena_len(&self) -> usize {
        self.arena.as_ref().map_or(0, SortedArena::len)
    }

    /// Interns `s`, returning its index; re-interning returns the same
    /// index without allocating.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(i) = self.get(s) {
            return i;
        }
        let i = u32::try_from(self.arena_len() + self.strings.len()).expect("interner overflow");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, i);
        i
    }

    /// Returns the index of `s` if it was interned before.
    pub fn get(&self, s: &str) -> Option<u32> {
        if let Some(arena) = &self.arena {
            if let Some(i) = arena.lookup(s) {
                return Some(i);
            }
        }
        self.index.get(s).copied()
    }

    /// Resolves an index back to its string.
    ///
    /// # Panics
    /// Panics if `i` was not produced by this interner.
    pub fn resolve(&self, i: u32) -> &str {
        let base = self.arena_len();
        if (i as usize) < base {
            self.arena.as_ref().expect("arena prefix").label(i as usize)
        } else {
            &self.strings[i as usize - base]
        }
    }

    /// Resolves an index if it is in range.
    pub fn try_resolve(&self, i: u32) -> Option<&str> {
        let base = self.arena_len();
        if (i as usize) < base {
            return Some(self.arena.as_ref()?.label(i as usize));
        }
        self.strings.get(i as usize - base).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.arena_len() + self.strings.len()
    }

    /// Whether the interner holds no strings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(index, string)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        let base = self.arena_len();
        let arena = self
            .arena
            .as_ref()
            .into_iter()
            .flat_map(|a| (0..a.len()).map(move |i| (i as u32, a.label(i))));
        arena.chain(
            self.strings
                .iter()
                .enumerate()
                .map(move |(i, s)| ((base + i) as u32, &**s)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("wb");
        let b = it.intern("cites");
        let a2 = it.intern("wb");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = Interner::new();
        let i = it.intern("Erdos");
        assert_eq!(it.resolve(i), "Erdos");
        assert_eq!(it.get("Erdos"), Some(i));
        assert_eq!(it.get("Alice"), None);
        assert_eq!(it.try_resolve(i), Some("Erdos"));
        assert_eq!(it.try_resolve(i + 1), None);
    }

    #[test]
    fn indexes_are_dense_and_ordered() {
        let mut it = Interner::new();
        for (expect, s) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(it.intern(s), expect as u32);
        }
        let collected: Vec<_> = it.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn from_unique_labels_preserves_order_and_rejects_duplicates() {
        let it =
            Interner::from_unique_labels(["a", "b", "c"].map(Box::<str>::from)).expect("unique");
        assert_eq!(it.len(), 3);
        assert_eq!(it.get("b"), Some(1));
        assert_eq!(it.resolve(2), "c");
        assert!(Interner::from_unique_labels(["a", "b", "a"].map(Box::<str>::from)).is_none());
    }

    #[test]
    fn empty_interner_reports_empty() {
        let it = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }

    #[test]
    fn sorted_arena_matches_dynamic_behaviour() {
        let labels = ["Alice", "Bob", "paper1", "paper2", "zeta"];
        let arena = Interner::from_sorted_labels(labels.iter().copied(), 32).expect("sorted");
        let mut dynamic = Interner::new();
        for s in labels {
            dynamic.intern(s);
        }
        assert_eq!(arena.len(), dynamic.len());
        for (i, s) in labels.iter().enumerate() {
            assert_eq!(arena.get(s), Some(i as u32));
            assert_eq!(arena.resolve(i as u32), *s);
            assert_eq!(arena.try_resolve(i as u32), Some(*s));
        }
        assert_eq!(arena.get("nope"), None);
        assert_eq!(arena.try_resolve(labels.len() as u32), None);
        let collected: Vec<_> = arena.iter().map(|(i, s)| (i, s.to_string())).collect();
        let expect: Vec<_> = labels
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.to_string()))
            .collect();
        assert_eq!(collected, expect);
    }

    #[test]
    fn sorted_arena_rejects_unsorted_and_duplicate_labels() {
        assert!(Interner::from_sorted_labels(["b", "a"], 8).is_none());
        assert!(Interner::from_sorted_labels(["a", "a"], 8).is_none());
        assert!(Interner::from_sorted_labels(std::iter::empty(), 0).is_some());
    }

    #[test]
    fn arena_overflow_section_keeps_interning() {
        let mut it = Interner::from_sorted_labels(["a", "c"], 4).expect("sorted");
        assert_eq!(it.intern("a"), 0);
        let b = it.intern("b"); // unsorted append lands in the overflow
        assert_eq!(b, 2);
        assert_eq!(it.intern("b"), 2);
        assert_eq!(it.resolve(2), "b");
        assert_eq!(it.get("b"), Some(2));
        assert_eq!(it.len(), 3);
        let collected: Vec<_> = it.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "c", "b"]);
    }
}
