//! String interning for node values, edge predicates, and node types.
//!
//! The ontology stores each distinct string once and refers to it by a
//! dense `u32` index. Interning keeps the hot matching loops of the query
//! engine free of string comparisons: label equality is integer equality.

use std::collections::HashMap;

/// A dense string interner.
///
/// Strings are assigned consecutive `u32` indexes in insertion order.
/// Lookup by string is `O(1)` average (hash map), lookup by index is a
/// direct array access.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty interner with capacity for `cap` strings.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            strings: Vec::with_capacity(cap),
            index: HashMap::with_capacity(cap),
        }
    }

    /// Builds an interner whose index assignment is exactly the order of
    /// `labels` (label `i` gets index `i`).
    ///
    /// This is the bulk-construction path used when decoding a persistent
    /// store snapshot, where the label set is already deduplicated and
    /// id-stable (sorted), so per-string `intern` probing is wasted work.
    /// Returns `None` if any label repeats.
    pub fn from_unique_labels<I>(labels: I) -> Option<Self>
    where
        I: IntoIterator<Item = Box<str>>,
    {
        let iter = labels.into_iter();
        let (lo, _) = iter.size_hint();
        let mut strings: Vec<Box<str>> = Vec::with_capacity(lo);
        let mut index: HashMap<Box<str>, u32> = HashMap::with_capacity(lo);
        for s in iter {
            let i = u32::try_from(strings.len()).ok()?;
            if index.insert(s.clone(), i).is_some() {
                return None;
            }
            strings.push(s);
        }
        Some(Self { strings, index })
    }

    /// Interns `s`, returning its index; re-interning returns the same
    /// index without allocating.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = u32::try_from(self.strings.len()).expect("interner overflow");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, i);
        i
    }

    /// Returns the index of `s` if it was interned before.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Resolves an index back to its string.
    ///
    /// # Panics
    /// Panics if `i` was not produced by this interner.
    pub fn resolve(&self, i: u32) -> &str {
        &self.strings[i as usize]
    }

    /// Resolves an index if it is in range.
    pub fn try_resolve(&self, i: u32) -> Option<&str> {
        self.strings.get(i as usize).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner holds no strings.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(index, string)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("wb");
        let b = it.intern("cites");
        let a2 = it.intern("wb");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut it = Interner::new();
        let i = it.intern("Erdos");
        assert_eq!(it.resolve(i), "Erdos");
        assert_eq!(it.get("Erdos"), Some(i));
        assert_eq!(it.get("Alice"), None);
        assert_eq!(it.try_resolve(i), Some("Erdos"));
        assert_eq!(it.try_resolve(i + 1), None);
    }

    #[test]
    fn indexes_are_dense_and_ordered() {
        let mut it = Interner::new();
        for (expect, s) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(it.intern(s), expect as u32);
        }
        let collected: Vec<_> = it.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn from_unique_labels_preserves_order_and_rejects_duplicates() {
        let it =
            Interner::from_unique_labels(["a", "b", "c"].map(Box::<str>::from)).expect("unique");
        assert_eq!(it.len(), 3);
        assert_eq!(it.get("b"), Some(1));
        assert_eq!(it.resolve(2), "c");
        assert!(Interner::from_unique_labels(["a", "b", "a"].map(Box::<str>::from)).is_none());
    }

    #[test]
    fn empty_interner_reports_empty() {
        let it = Interner::new();
        assert!(it.is_empty());
        assert_eq!(it.len(), 0);
    }
}
