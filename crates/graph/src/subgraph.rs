//! Canonical subgraphs of an ontology.
//!
//! A [`Subgraph`] is a set of edges plus a set of nodes of one ontology,
//! held in sorted, deduplicated id vectors. Two uses in the paper map to
//! this type:
//!
//! * **provenance graphs** (Def. 2.4): the image `μ(Q)` of a match is the
//!   subgraph formed by the matched edges and nodes;
//! * **explanations** (Def. 2.5): user-drawn subgraphs wrapped by
//!   [`crate::Explanation`].
//!
//! The canonical representation makes equality, hashing, and set-of-
//! provenance-graphs deduplication cheap. Because node values are unique
//! in the ontology, two subgraphs of the same ontology are isomorphic in
//! the paper's sense iff they are equal as id sets, which is what `Eq`
//! compares.

use std::collections::BTreeSet;

use crate::ids::{EdgeId, NodeId};
use crate::ontology::Ontology;

/// A canonical (sorted, deduplicated) set of edges and nodes of one
/// ontology.
///
/// The node set always contains every endpoint of every edge and may
/// additionally contain isolated nodes (e.g. an explanation that consists
/// of just a distinguished node).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Subgraph {
    edges: Vec<EdgeId>,
    nodes: Vec<NodeId>,
}

impl Subgraph {
    /// Builds a subgraph from arbitrary edge ids (deduplicated); the node
    /// set is the set of endpoints.
    pub fn from_edges(ont: &Ontology, edges: impl IntoIterator<Item = EdgeId>) -> Self {
        let edge_set: BTreeSet<EdgeId> = edges.into_iter().collect();
        let mut node_set: BTreeSet<NodeId> = BTreeSet::new();
        for &e in &edge_set {
            let d = ont.edge(e);
            node_set.insert(d.src);
            node_set.insert(d.dst);
        }
        Self {
            edges: edge_set.into_iter().collect(),
            nodes: node_set.into_iter().collect(),
        }
    }

    /// Builds a subgraph from edges plus extra (possibly isolated) nodes.
    pub fn from_parts(
        ont: &Ontology,
        edges: impl IntoIterator<Item = EdgeId>,
        extra_nodes: impl IntoIterator<Item = NodeId>,
    ) -> Self {
        let mut sg = Self::from_edges(ont, edges);
        let mut node_set: BTreeSet<NodeId> = sg.nodes.iter().copied().collect();
        node_set.extend(extra_nodes);
        sg.nodes = node_set.into_iter().collect();
        sg
    }

    /// A subgraph holding a single isolated node.
    pub fn single_node(node: NodeId) -> Self {
        Self {
            edges: Vec::new(),
            nodes: vec![node],
        }
    }

    /// The sorted edge ids.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// The sorted node ids (endpoints plus any isolated nodes).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the subgraph has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether edge `e` belongs to the subgraph.
    pub fn contains_edge(&self, e: EdgeId) -> bool {
        self.edges.binary_search(&e).is_ok()
    }

    /// Whether node `n` belongs to the subgraph.
    pub fn contains_node(&self, n: NodeId) -> bool {
        self.nodes.binary_search(&n).is_ok()
    }

    /// Set-union of two subgraphs of the same ontology.
    pub fn union(&self, other: &Subgraph) -> Subgraph {
        let edges: BTreeSet<EdgeId> = self
            .edges
            .iter()
            .chain(other.edges.iter())
            .copied()
            .collect();
        let nodes: BTreeSet<NodeId> = self
            .nodes
            .iter()
            .chain(other.nodes.iter())
            .copied()
            .collect();
        Subgraph {
            edges: edges.into_iter().collect(),
            nodes: nodes.into_iter().collect(),
        }
    }

    /// Edges of the subgraph whose source or target is `n`.
    pub fn incident_edges<'a>(
        &'a self,
        ont: &'a Ontology,
        n: NodeId,
    ) -> impl Iterator<Item = EdgeId> + 'a {
        self.edges.iter().copied().filter(move |&e| {
            let d = ont.edge(e);
            d.src == n || d.dst == n
        })
    }

    /// Renders the subgraph as one `src -pred-> dst` line per edge
    /// (sorted), listing isolated nodes afterwards. This is the textual
    /// stand-in for the paper's d3 provenance visualizer.
    pub fn describe(&self, ont: &Ontology) -> String {
        let mut lines: Vec<String> = self.edges.iter().map(|&e| ont.describe_edge(e)).collect();
        for &n in &self.nodes {
            let isolated = !self.edges.iter().any(|&e| {
                let d = ont.edge(e);
                d.src == n || d.dst == n
            });
            if isolated {
                lines.push(format!("{} (isolated)", ont.value_str(n)));
            }
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Ontology {
        let mut b = Ontology::builder();
        b.edge("p1", "wb", "Alice").unwrap();
        b.edge("p1", "wb", "Bob").unwrap();
        b.edge("p2", "wb", "Bob").unwrap();
        b.edge("p2", "cites", "p1").unwrap();
        b.build()
    }

    #[test]
    fn from_edges_collects_endpoints_sorted() {
        let o = fixture();
        let e0 = EdgeId::new(0);
        let e3 = EdgeId::new(3);
        let sg = Subgraph::from_edges(&o, [e3, e0, e0]);
        assert_eq!(sg.edges(), &[e0, e3]);
        assert_eq!(sg.edge_count(), 2);
        // endpoints: p1, Alice, p2
        assert_eq!(sg.node_count(), 3);
        assert!(sg.contains_edge(e0));
        assert!(!sg.contains_edge(EdgeId::new(1)));
    }

    #[test]
    fn equality_is_canonical() {
        let o = fixture();
        let a = Subgraph::from_edges(&o, [EdgeId::new(1), EdgeId::new(2)]);
        let b = Subgraph::from_edges(&o, [EdgeId::new(2), EdgeId::new(1)]);
        assert_eq!(a, b);
        use std::collections::HashSet;
        let set: HashSet<Subgraph> = [a, b].into_iter().collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn union_merges_both_sides() {
        let o = fixture();
        let a = Subgraph::from_edges(&o, [EdgeId::new(0)]);
        let b = Subgraph::from_edges(&o, [EdgeId::new(3)]);
        let u = a.union(&b);
        assert_eq!(u.edge_count(), 2);
        assert!(u.contains_edge(EdgeId::new(0)));
        assert!(u.contains_edge(EdgeId::new(3)));
    }

    #[test]
    fn single_node_subgraph_is_isolated() {
        let o = fixture();
        let alice = o.node_by_value("Alice").unwrap();
        let sg = Subgraph::single_node(alice);
        assert_eq!(sg.edge_count(), 0);
        assert_eq!(sg.node_count(), 1);
        assert!(sg.contains_node(alice));
        assert!(sg.describe(&o).contains("isolated"));
    }

    #[test]
    fn from_parts_keeps_extra_nodes() {
        let o = fixture();
        let bob = o.node_by_value("Bob").unwrap();
        let sg = Subgraph::from_parts(&o, [EdgeId::new(0)], [bob]);
        assert!(sg.contains_node(bob));
        assert_eq!(sg.node_count(), 3); // p1, Alice, Bob
    }

    #[test]
    fn incident_edges_filters_by_endpoint() {
        let o = fixture();
        let sg = Subgraph::from_edges(&o, o.edge_ids());
        let bob = o.node_by_value("Bob").unwrap();
        let incident: Vec<_> = sg.incident_edges(&o, bob).collect();
        assert_eq!(incident.len(), 2);
    }

    #[test]
    fn describe_lists_each_edge() {
        let o = fixture();
        let sg = Subgraph::from_edges(&o, [EdgeId::new(3)]);
        assert_eq!(sg.describe(&o), "p2 -cites-> p1");
    }
}
