//! Compact integer identifiers for ontology components.
//!
//! Every entity of an [`crate::Ontology`] — nodes, edges, interned value
//! strings, predicates, and node types — is referred to by a `u32` newtype.
//! Ids are indexes into dense arenas, so lookups are branchless array
//! accesses and the matcher can store partial assignments in flat vectors.
//!
//! Ids are only meaningful relative to the ontology that produced them;
//! mixing ids across ontologies is a logic error (not memory-unsafe, but
//! will produce nonsense or a panic on out-of-bounds access).

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            /// Panics if `raw` does not fit in a `u32`.
            #[inline]
            pub fn from_usize(raw: usize) -> Self {
                Self(u32::try_from(raw).expect("id overflow: more than u32::MAX entities"))
            }

            /// The raw `u32` behind the id.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// The id as a `usize` array index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a node in an ontology graph.
    NodeId,
    "n"
);
define_id!(
    /// Identifier of an edge in an ontology graph.
    EdgeId,
    "e"
);
define_id!(
    /// Identifier of an interned node value (the range of `L_V`).
    ValueId,
    "v"
);
define_id!(
    /// Identifier of an interned edge predicate (the range of `L_E`).
    PredId,
    "p"
);
define_id!(
    /// Identifier of an interned node type (e.g. `Author`).
    TypeId,
    "t"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_raw_and_index() {
        let n = NodeId::new(7);
        assert_eq!(n.raw(), 7);
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from_usize(7), n);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(EdgeId::new(0).to_string(), "e0");
        assert_eq!(ValueId::new(1).to_string(), "v1");
        assert_eq!(PredId::new(2).to_string(), "p2");
        assert_eq!(TypeId::new(4).to_string(), "t4");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(EdgeId::new(1) < EdgeId::new(2));
        assert_eq!(EdgeId::new(5).max(EdgeId::new(3)), EdgeId::new(5));
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_usize_panics_on_overflow() {
        let _ = NodeId::from_usize(u32::MAX as usize + 1);
    }
}
