//! Explanations and example-sets (Definition 2.5).
//!
//! An **explanation** is a subgraph of the ontology together with a
//! *distinguished node*: the output example the user expects, with the
//! rest of the subgraph describing why the user chose it. The same
//! distinguished node may appear in several explanations. A set of
//! explanations is an **example-set**, the input to query inference.

use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use crate::ontology::Ontology;
use crate::subgraph::Subgraph;

/// A subgraph of the ontology with a distinguished node (Def. 2.5).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Explanation {
    sub: Subgraph,
    dis: NodeId,
}

impl Explanation {
    /// Wraps `sub` with distinguished node `dis`.
    ///
    /// # Errors
    /// Fails if `dis` is not a node of `sub`.
    pub fn new(sub: Subgraph, dis: NodeId) -> Result<Self, GraphError> {
        if !sub.contains_node(dis) {
            return Err(GraphError::UnknownNode {
                what: format!("distinguished node {dis} is not in the explanation subgraph"),
            });
        }
        Ok(Self { sub, dis })
    }

    /// Builds an explanation directly from ontology edges and the
    /// distinguished node's value string.
    ///
    /// # Errors
    /// Fails if the value is unknown or not an endpoint of the edges.
    pub fn from_edges(
        ont: &Ontology,
        edges: impl IntoIterator<Item = EdgeId>,
        dis_value: &str,
    ) -> Result<Self, GraphError> {
        let dis = ont
            .node_by_value(dis_value)
            .ok_or_else(|| GraphError::UnknownNode {
                what: format!("no node with value {dis_value:?}"),
            })?;
        let sub = Subgraph::from_parts(ont, edges, [dis]);
        Self::new(sub, dis)
    }

    /// Builds an explanation from `(src, pred, dst)` value triples; every
    /// triple must name an existing ontology edge.
    ///
    /// # Errors
    /// Fails if a value or an edge is missing from the ontology.
    pub fn from_triples(
        ont: &Ontology,
        triples: &[(&str, &str, &str)],
        dis_value: &str,
    ) -> Result<Self, GraphError> {
        let mut edges = Vec::with_capacity(triples.len());
        for &(s, p, d) in triples {
            let src = ont
                .node_by_value(s)
                .ok_or_else(|| GraphError::UnknownNode {
                    what: format!("no node with value {s:?}"),
                })?;
            let dst = ont
                .node_by_value(d)
                .ok_or_else(|| GraphError::UnknownNode {
                    what: format!("no node with value {d:?}"),
                })?;
            let pred = ont.pred_by_name(p).ok_or_else(|| GraphError::UnknownNode {
                what: format!("no predicate {p:?}"),
            })?;
            let e = ont
                .find_edge(src, pred, dst)
                .ok_or_else(|| GraphError::UnknownNode {
                    what: format!("no edge {s} -{p}-> {d}"),
                })?;
            edges.push(e);
        }
        Self::from_edges(ont, edges, dis_value)
    }

    /// The underlying subgraph.
    pub fn subgraph(&self) -> &Subgraph {
        &self.sub
    }

    /// The distinguished node (the output example).
    pub fn distinguished(&self) -> NodeId {
        self.dis
    }

    /// Edges of the explanation.
    pub fn edges(&self) -> &[EdgeId] {
        self.sub.edges()
    }

    /// Nodes of the explanation.
    pub fn nodes(&self) -> &[NodeId] {
        self.sub.nodes()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.sub.edge_count()
    }

    /// Renders the explanation for display, marking the distinguished
    /// node.
    pub fn describe(&self, ont: &Ontology) -> String {
        format!(
            "distinguished: {}\n{}",
            ont.value_str(self.dis),
            self.sub.describe(ont)
        )
    }
}

/// An ordered collection of explanations (the paper's *example-set*).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExampleSet {
    explanations: Vec<Explanation>,
}

impl ExampleSet {
    /// Creates an empty example-set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an example-set from explanations.
    pub fn from_explanations(explanations: Vec<Explanation>) -> Self {
        Self { explanations }
    }

    /// Appends an explanation.
    pub fn push(&mut self, e: Explanation) {
        self.explanations.push(e);
    }

    /// The explanations, in insertion order.
    pub fn explanations(&self) -> &[Explanation] {
        &self.explanations
    }

    /// Number of explanations.
    pub fn len(&self) -> usize {
        self.explanations.len()
    }

    /// Whether the example-set is empty.
    pub fn is_empty(&self) -> bool {
        self.explanations.is_empty()
    }

    /// Iterates over the explanations.
    pub fn iter(&self) -> impl Iterator<Item = &Explanation> {
        self.explanations.iter()
    }

    /// The distinct distinguished nodes across all explanations.
    pub fn distinguished_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .explanations
            .iter()
            .map(|e| e.distinguished())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

impl IntoIterator for ExampleSet {
    type Item = Explanation;
    type IntoIter = std::vec::IntoIter<Explanation>;

    fn into_iter(self) -> Self::IntoIter {
        self.explanations.into_iter()
    }
}

impl FromIterator<Explanation> for ExampleSet {
    fn from_iter<T: IntoIterator<Item = Explanation>>(iter: T) -> Self {
        Self {
            explanations: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Ontology {
        let mut b = Ontology::builder();
        b.edge("p1", "wb", "Alice").unwrap();
        b.edge("p1", "wb", "Bob").unwrap();
        b.edge("p2", "wb", "Bob").unwrap();
        b.edge("p2", "wb", "Erdos").unwrap();
        b.build()
    }

    #[test]
    fn from_triples_resolves_edges() {
        let o = fixture();
        let ex =
            Explanation::from_triples(&o, &[("p1", "wb", "Alice"), ("p1", "wb", "Bob")], "Alice")
                .unwrap();
        assert_eq!(ex.edge_count(), 2);
        assert_eq!(o.value_str(ex.distinguished()), "Alice");
        assert!(ex.describe(&o).contains("distinguished: Alice"));
    }

    #[test]
    fn distinguished_must_be_member() {
        let o = fixture();
        let sub = Subgraph::from_edges(&o, [EdgeId::new(0)]); // p1,Alice
        let erdos = o.node_by_value("Erdos").unwrap();
        assert!(Explanation::new(sub, erdos).is_err());
    }

    #[test]
    fn from_triples_rejects_missing_edge() {
        let o = fixture();
        let err = Explanation::from_triples(&o, &[("p1", "wb", "Erdos")], "Erdos").unwrap_err();
        assert!(err.to_string().contains("no edge"));
        let err = Explanation::from_triples(&o, &[("pX", "wb", "Alice")], "Alice").unwrap_err();
        assert!(err.to_string().contains("pX"));
    }

    #[test]
    fn single_node_explanation_is_allowed() {
        let o = fixture();
        let ex = Explanation::from_edges(&o, [], "Bob").unwrap();
        assert_eq!(ex.edge_count(), 0);
        assert_eq!(ex.nodes().len(), 1);
    }

    #[test]
    fn example_set_tracks_distinguished_nodes() {
        let o = fixture();
        let e1 = Explanation::from_triples(&o, &[("p1", "wb", "Alice")], "Alice").unwrap();
        let e2 = Explanation::from_triples(&o, &[("p2", "wb", "Erdos")], "Erdos").unwrap();
        let e3 = Explanation::from_triples(&o, &[("p1", "wb", "Alice")], "Alice").unwrap();
        let set: ExampleSet = [e1, e2, e3].into_iter().collect();
        assert_eq!(set.len(), 3);
        assert_eq!(set.distinguished_nodes().len(), 2);
        assert!(!set.is_empty());
    }
}
