//! A line-oriented text format for example-sets.
//!
//! This is the file format the `questpro` CLI reads explanations from.
//! An example-set is a sequence of explanation blocks separated by blank
//! lines; each block starts with its distinguished node and lists the
//! explanation's edges (which must exist in the ontology):
//!
//! ```text
//! # co-author examples
//! dis Carol
//! paper3 wb Carol
//! paper3 wb Erdos
//!
//! dis Dave
//! paper4 wb Dave
//! paper4 wb Erdos
//! ```
//!
//! A block may consist of just the `dis` line (a bare-node explanation).

use crate::error::GraphError;
use crate::explanation::{ExampleSet, Explanation};
use crate::ontology::Ontology;
use crate::subgraph::Subgraph;

/// Parses an example-set against an ontology.
///
/// # Errors
/// Returns a [`GraphError::Parse`] with a 1-based line number for
/// malformed lines, and [`GraphError::UnknownNode`] when a referenced
/// value, predicate, or edge is missing from the ontology.
pub fn parse_examples(ont: &Ontology, text: &str) -> Result<ExampleSet, GraphError> {
    let mut set = ExampleSet::new();
    let mut dis: Option<String> = None;
    let mut edges: Vec<crate::ids::EdgeId> = Vec::new();
    let mut flush =
        |dis: &mut Option<String>, edges: &mut Vec<crate::ids::EdgeId>| -> Result<(), GraphError> {
            if let Some(d) = dis.take() {
                let ex = Explanation::from_edges(ont, edges.drain(..), &d)?;
                set.push(ex);
            } else if !edges.is_empty() {
                return Err(GraphError::Parse {
                    line: 0,
                    message: "explanation block has edges but no `dis` line".to_string(),
                });
            }
            Ok(())
        };
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') {
            continue;
        }
        if line.is_empty() {
            flush(&mut dis, &mut edges).map_err(|e| at_line(e, i + 1))?;
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["dis", value] => {
                if dis.is_some() {
                    return Err(GraphError::Parse {
                        line: i + 1,
                        message: "second `dis` line in one block (missing blank line?)".to_string(),
                    });
                }
                dis = Some((*value).to_string());
            }
            [src, pred, dst] => {
                let e = resolve_edge(ont, src, pred, dst).map_err(|e| at_line(e, i + 1))?;
                edges.push(e);
            }
            _ => {
                return Err(GraphError::Parse {
                    line: i + 1,
                    message: "expected `dis <value>` or `<src> <pred> <dst>`".to_string(),
                })
            }
        }
    }
    flush(&mut dis, &mut edges)?;
    Ok(set)
}

fn at_line(e: GraphError, line: usize) -> GraphError {
    match e {
        GraphError::Parse { message, .. } => GraphError::Parse { line, message },
        other => other,
    }
}

fn resolve_edge(
    ont: &Ontology,
    src: &str,
    pred: &str,
    dst: &str,
) -> Result<crate::ids::EdgeId, GraphError> {
    let s = ont
        .node_by_value(src)
        .ok_or_else(|| GraphError::UnknownNode {
            what: format!("no node with value {src:?}"),
        })?;
    let d = ont
        .node_by_value(dst)
        .ok_or_else(|| GraphError::UnknownNode {
            what: format!("no node with value {dst:?}"),
        })?;
    let p = ont
        .pred_by_name(pred)
        .ok_or_else(|| GraphError::UnknownNode {
            what: format!("no predicate {pred:?}"),
        })?;
    ont.find_edge(s, p, d)
        .ok_or_else(|| GraphError::UnknownNode {
            what: format!("no edge {src} -{pred}-> {dst} in the ontology"),
        })
}

/// Serializes an example-set back to the text format.
pub fn serialize_examples(ont: &Ontology, set: &ExampleSet) -> String {
    let mut out = String::new();
    for (i, ex) in set.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str("dis ");
        out.push_str(ont.value_str(ex.distinguished()));
        out.push('\n');
        for &e in ex.edges() {
            let d = ont.edge(e);
            out.push_str(ont.value_str(d.src));
            out.push(' ');
            out.push_str(ont.pred_str(d.pred));
            out.push(' ');
            out.push_str(ont.value_str(d.dst));
            out.push('\n');
        }
    }
    out
}

/// Serializes a single explanation as one block.
pub fn serialize_explanation(ont: &Ontology, ex: &Explanation) -> String {
    let set = ExampleSet::from_explanations(vec![Explanation::new(
        Subgraph::from_parts(ont, ex.edges().iter().copied(), [ex.distinguished()]),
        ex.distinguished(),
    )
    .expect("copying an explanation preserves validity")]);
    serialize_examples(ont, &set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Ontology {
        let mut b = Ontology::builder();
        b.edge("paper3", "wb", "Carol").unwrap();
        b.edge("paper3", "wb", "Erdos").unwrap();
        b.edge("paper4", "wb", "Dave").unwrap();
        b.edge("paper4", "wb", "Erdos").unwrap();
        b.build()
    }

    const SAMPLE: &str = "\
# two explanations
dis Carol
paper3 wb Carol
paper3 wb Erdos

dis Dave
paper4 wb Dave
paper4 wb Erdos
";

    #[test]
    fn parses_blocks() {
        let o = fixture();
        let set = parse_examples(&o, SAMPLE).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(o.value_str(set.explanations()[0].distinguished()), "Carol");
        assert_eq!(set.explanations()[1].edge_count(), 2);
    }

    #[test]
    fn round_trips() {
        let o = fixture();
        let set = parse_examples(&o, SAMPLE).unwrap();
        let text = serialize_examples(&o, &set);
        let back = parse_examples(&o, &text).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn bare_node_blocks_are_allowed() {
        let o = fixture();
        let set = parse_examples(&o, "dis Erdos\n").unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.explanations()[0].edge_count(), 0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let o = fixture();
        let err = parse_examples(&o, "dis Carol\nbroken line here extra\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = parse_examples(&o, "dis Carol\ndis Dave\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn edges_without_dis_are_rejected() {
        let o = fixture();
        let err = parse_examples(&o, "paper3 wb Carol\n").unwrap_err();
        assert!(err.to_string().contains("no `dis`"));
    }

    #[test]
    fn unknown_edges_are_rejected() {
        let o = fixture();
        let err = parse_examples(&o, "dis Carol\npaper3 wb Dave\n").unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode { .. }));
        let err = parse_examples(&o, "dis Ghost\n").unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode { .. }));
    }

    #[test]
    fn serialize_single_explanation() {
        let o = fixture();
        let set = parse_examples(&o, SAMPLE).unwrap();
        let text = serialize_explanation(&o, &set.explanations()[0]);
        assert!(text.starts_with("dis Carol\n"));
        assert_eq!(text.lines().count(), 3);
    }
}
