//! A small, fast, non-cryptographic hasher for hot maps.
//!
//! The engine's inner loops key maps by small integers, id pairs, and
//! short interned strings; SipHash (the `std` default) dominates their
//! profile. This is the rustc-style "Fx" multiplicative hash: fold each
//! word into the state with a rotate + xor + multiply. Quality is ample
//! for our key distributions and it is several times faster than the
//! default hasher on 8–32 byte keys.
//!
//! Not DoS-resistant — use only for internal data, never for keys an
//! adversary controls.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiplicative word-at-a-time hasher (rustc's FxHasher scheme).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut buf = [0u8; 8];
            buf[..bytes.len()].copy_from_slice(bytes);
            // Fold the length in so "ab" + "" and "a" + "b" differ.
            buf[7] = bytes.len() as u8;
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a single value with [`FxHasher`] (convenience for cache keys).
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal() {
        assert_eq!(fx_hash_one(&(3u32, 7u32)), fx_hash_one(&(3u32, 7u32)));
        assert_eq!(fx_hash_one(&"hello"), fx_hash_one(&"hello"));
    }

    #[test]
    fn distinct_small_keys_rarely_collide() {
        let mut seen = HashSet::new();
        for a in 0u32..64 {
            for b in 0u32..64 {
                seen.insert(fx_hash_one(&(a, b)));
            }
        }
        assert_eq!(seen.len(), 64 * 64);
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<&str, usize> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(9);
        assert!(s.contains(&9));
    }

    #[test]
    fn byte_streams_with_different_boundaries_differ() {
        let mut h1 = FxHasher::default();
        h1.write(b"abcdefgh-tail");
        let mut h2 = FxHasher::default();
        h2.write(b"abcdefgh");
        h2.write(b"-tail");
        // Not required to be equal (we fold lengths), just both stable.
        assert_eq!(h1.finish(), {
            let mut h = FxHasher::default();
            h.write(b"abcdefgh-tail");
            h.finish()
        });
        let _ = h2.finish();
    }
}
