//! A line-oriented text format for ontologies.
//!
//! This is the repository's stand-in for RDF serialization: enough to
//! persist and reload the synthetic benchmark ontologies and to write
//! small fixtures by hand.
//!
//! Grammar (one item per line):
//!
//! ```text
//! # comment — ignored, as are blank lines
//! @type <value> <TypeName>      declares the type of a node
//! <src> <pred> <dst>            declares an edge
//! ```
//!
//! Tokens are whitespace-separated, so [`serialize`] percent-encodes
//! any character that would break the line grammar — whitespace, `%`
//! itself, and a leading-position-significant `#`/`@` — as `%xx`
//! (lowercase hex over the UTF-8 bytes), and [`parse`] decodes `%xx`
//! sequences back. Labels containing spaces, newlines, or comment
//! markers therefore survive `serialize → parse` unchanged. The
//! synthetic generators use `snake_case` identifiers, which need no
//! escaping at all.

use std::fmt::Write as _;

use crate::error::GraphError;
use crate::ontology::{Ontology, OntologyBuilder};

/// Percent-encodes a token so it survives the whitespace-split line
/// grammar: whitespace, `%`, `#`, and `@` become `%xx` over the UTF-8
/// bytes; everything else passes through verbatim.
fn escape_token(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        if ch.is_whitespace() || matches!(ch, '%' | '#' | '@') {
            let mut buf = [0u8; 4];
            for &b in ch.encode_utf8(&mut buf).as_bytes() {
                let _ = write!(out, "%{b:02x}");
            }
        } else {
            out.push(ch);
        }
    }
    out
}

/// Decodes the `%xx` escapes produced by [`escape_token`].
fn unescape_token(s: &str, line: usize) -> Result<String, GraphError> {
    if !s.contains('%') {
        return Ok(s.to_string());
    }
    let bad = |message: String| GraphError::Parse { line, message };
    let mut bytes: Vec<u8> = Vec::with_capacity(s.len());
    let mut rest = s.as_bytes();
    while let Some((&b, tail)) = rest.split_first() {
        if b != b'%' {
            bytes.push(b);
            rest = tail;
            continue;
        }
        let hex = |b: u8| -> Option<u8> {
            match b {
                b'0'..=b'9' => Some(b - b'0'),
                b'a'..=b'f' => Some(b - b'a' + 10),
                b'A'..=b'F' => Some(b - b'A' + 10),
                _ => None,
            }
        };
        match (
            tail.first().copied().and_then(hex),
            tail.get(1).copied().and_then(hex),
        ) {
            (Some(hi), Some(lo)) => {
                bytes.push((hi << 4) | lo);
                rest = &tail[2..];
            }
            _ => {
                return Err(bad(format!(
                    "`%` in token {s:?} is not followed by two hex digits"
                )))
            }
        }
    }
    String::from_utf8(bytes)
        .map_err(|_| bad(format!("escapes in token {s:?} decode to invalid UTF-8")))
}

/// Parses an ontology from the triple text format.
///
/// # Errors
/// Returns a [`GraphError::Parse`] with a 1-based line number on
/// malformed lines, and the underlying builder error on invariant
/// violations (duplicate edges, conflicting types).
pub fn parse(text: &str) -> Result<Ontology, GraphError> {
    let mut b = OntologyBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let Some(first) = fields.next() else {
            continue; // unreachable: the line is non-empty after trim
        };
        // The directive keyword is matched *before* unescaping, so a
        // node literally named `@type` serializes as `%40type` and
        // can never be confused with the directive.
        if first == "@type" {
            let value = fields.next();
            let ty = fields.next();
            match (value, ty, fields.next()) {
                (Some(v), Some(t), None) => {
                    let v = unescape_token(v, i + 1)?;
                    let t = unescape_token(t, i + 1)?;
                    b.typed_node(&v, &t)?;
                }
                _ => {
                    return Err(GraphError::Parse {
                        line: i + 1,
                        message: "expected `@type <value> <TypeName>`".to_string(),
                    })
                }
            }
        } else {
            let pred = fields.next();
            let dst = fields.next();
            match (pred, dst, fields.next()) {
                (Some(p), Some(d), None) => {
                    let src = unescape_token(first, i + 1)?;
                    let p = unescape_token(p, i + 1)?;
                    let d = unescape_token(d, i + 1)?;
                    b.edge(&src, &p, &d)?;
                }
                _ => {
                    return Err(GraphError::Parse {
                        line: i + 1,
                        message: "expected `<src> <pred> <dst>`".to_string(),
                    })
                }
            }
        }
    }
    Ok(b.build())
}

/// Serializes an ontology to the triple text format.
///
/// Edges come first in id order, then `@type` declarations in node id
/// order; `parse(serialize(o))` reconstructs an ontology with identical
/// structure (ids may be renumbered for nodes that only appear in type
/// declarations).
pub fn serialize(ont: &Ontology) -> String {
    let mut out = String::new();
    for e in ont.edge_ids() {
        let d = ont.edge(e);
        out.push_str(&escape_token(ont.value_str(d.src)));
        out.push(' ');
        out.push_str(&escape_token(ont.pred_str(d.pred)));
        out.push(' ');
        out.push_str(&escape_token(ont.value_str(d.dst)));
        out.push('\n');
    }
    for n in ont.node_ids() {
        if let Some(t) = ont.node_type(n) {
            out.push_str("@type ");
            out.push_str(&escape_token(ont.value_str(n)));
            out.push(' ');
            out.push_str(&escape_token(ont.type_str(t)));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# publications fixture
paper1 wb Alice
paper1 wb Bob

paper2 wb Bob
@type Alice Author
@type paper1 Paper
";

    #[test]
    fn parses_edges_comments_and_types() {
        let o = parse(SAMPLE).unwrap();
        assert_eq!(o.edge_count(), 3);
        assert_eq!(o.node_count(), 4);
        let alice = o.node_by_value("Alice").unwrap();
        assert_eq!(o.type_str(o.node_type(alice).unwrap()), "Author");
        let bob = o.node_by_value("Bob").unwrap();
        assert!(o.node_type(bob).is_none());
    }

    #[test]
    fn round_trips_through_serialize() {
        let o = parse(SAMPLE).unwrap();
        let text = serialize(&o);
        let o2 = parse(&text).unwrap();
        assert_eq!(o2.edge_count(), o.edge_count());
        assert_eq!(o2.node_count(), o.node_count());
        let alice = o2.node_by_value("Alice").unwrap();
        assert_eq!(o2.type_str(o2.node_type(alice).unwrap()), "Author");
        // Edge structure is preserved exactly.
        for e in o.edge_ids() {
            let d = o.edge(e);
            let src = o2.node_by_value(o.value_str(d.src)).unwrap();
            let dst = o2.node_by_value(o.value_str(d.dst)).unwrap();
            let pred = o2.pred_by_name(o.pred_str(d.pred)).unwrap();
            assert!(o2.find_edge(src, pred, dst).is_some());
        }
    }

    #[test]
    fn reports_line_numbers_on_malformed_input() {
        let err = parse("a wb b\nbad line with too many tokens here\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = parse("@type onlyvalue\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn propagates_builder_errors() {
        let err = parse("a wb b\na wb b\n").unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
        let err = parse("@type x A\n@type x B\n").unwrap_err();
        assert!(matches!(err, GraphError::ConflictingType { .. }));
    }

    #[test]
    fn metacharacter_labels_round_trip() {
        let labels = [
            "has space",
            "line\nbreak",
            "tab\there",
            "#comment-start",
            "@type",
            "percent%40",
            "quote\"mark",
            "back\\slash",
            "emoji\u{1F600}",
        ];
        let mut b = OntologyBuilder::new();
        for (i, label) in labels.iter().enumerate() {
            b.edge(label, &format!("pred {i}"), "plain").unwrap();
        }
        b.typed_node("has space", "Type With Space").unwrap();
        let o = b.build();
        let text = serialize(&o);
        let o2 = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        assert_eq!(o2.edge_count(), o.edge_count());
        assert_eq!(o2.node_count(), o.node_count());
        for label in labels {
            assert!(o2.node_by_value(label).is_some(), "lost node {label:?}");
        }
        let n = o2.node_by_value("has space").unwrap();
        assert_eq!(o2.type_str(o2.node_type(n).unwrap()), "Type With Space");
    }

    #[test]
    fn node_named_type_directive_is_not_a_directive() {
        // A node literally named `@type` must serialize escaped, so the
        // line is a 3-token edge, not a malformed directive.
        let mut b = OntologyBuilder::new();
        b.edge("@type", "p", "q").unwrap();
        let text = serialize(&b.build());
        assert!(text.starts_with("%40type "), "{text}");
        let o = parse(&text).unwrap();
        assert!(o.node_by_value("@type").is_some());
    }

    #[test]
    fn malformed_percent_escapes_report_line_numbers() {
        for (src, line) in [
            ("a%2 wb b\n", 1),
            ("a wb b\nc%zz wb d\n", 2),
            ("a wb b%\n", 1),
            ("a%ff%fe wb b\n", 1),
        ] {
            match parse(src).unwrap_err() {
                GraphError::Parse { line: l, .. } => assert_eq!(l, line, "{src:?}"),
                other => panic!("expected parse error for {src:?}, got {other}"),
            }
        }
    }

    #[test]
    fn empty_input_builds_empty_ontology() {
        let o = parse("\n# nothing\n").unwrap();
        assert_eq!(o.node_count(), 0);
        assert_eq!(o.edge_count(), 0);
    }
}
