//! A line-oriented text format for ontologies.
//!
//! This is the repository's stand-in for RDF serialization: enough to
//! persist and reload the synthetic benchmark ontologies and to write
//! small fixtures by hand.
//!
//! Grammar (one item per line):
//!
//! ```text
//! # comment — ignored, as are blank lines
//! @type <value> <TypeName>      declares the type of a node
//! <src> <pred> <dst>            declares an edge
//! ```
//!
//! Tokens are whitespace-separated and therefore must not contain
//! whitespace themselves; the synthetic generators use `snake_case`
//! identifiers so this is never a constraint in practice.

use crate::error::GraphError;
use crate::ontology::{Ontology, OntologyBuilder};

/// Parses an ontology from the triple text format.
///
/// # Errors
/// Returns a [`GraphError::Parse`] with a 1-based line number on
/// malformed lines, and the underlying builder error on invariant
/// violations (duplicate edges, conflicting types).
pub fn parse(text: &str) -> Result<Ontology, GraphError> {
    let mut b = OntologyBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let first = fields.next().expect("non-empty line has a first token");
        if first == "@type" {
            let value = fields.next();
            let ty = fields.next();
            match (value, ty, fields.next()) {
                (Some(v), Some(t), None) => {
                    b.typed_node(v, t)?;
                }
                _ => {
                    return Err(GraphError::Parse {
                        line: i + 1,
                        message: "expected `@type <value> <TypeName>`".to_string(),
                    })
                }
            }
        } else {
            let pred = fields.next();
            let dst = fields.next();
            match (pred, dst, fields.next()) {
                (Some(p), Some(d), None) => {
                    b.edge(first, p, d)?;
                }
                _ => {
                    return Err(GraphError::Parse {
                        line: i + 1,
                        message: "expected `<src> <pred> <dst>`".to_string(),
                    })
                }
            }
        }
    }
    Ok(b.build())
}

/// Serializes an ontology to the triple text format.
///
/// Edges come first in id order, then `@type` declarations in node id
/// order; `parse(serialize(o))` reconstructs an ontology with identical
/// structure (ids may be renumbered for nodes that only appear in type
/// declarations).
pub fn serialize(ont: &Ontology) -> String {
    let mut out = String::new();
    for e in ont.edge_ids() {
        let d = ont.edge(e);
        out.push_str(ont.value_str(d.src));
        out.push(' ');
        out.push_str(ont.pred_str(d.pred));
        out.push(' ');
        out.push_str(ont.value_str(d.dst));
        out.push('\n');
    }
    for n in ont.node_ids() {
        if let Some(t) = ont.node_type(n) {
            out.push_str("@type ");
            out.push_str(ont.value_str(n));
            out.push(' ');
            out.push_str(ont.type_str(t));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# publications fixture
paper1 wb Alice
paper1 wb Bob

paper2 wb Bob
@type Alice Author
@type paper1 Paper
";

    #[test]
    fn parses_edges_comments_and_types() {
        let o = parse(SAMPLE).unwrap();
        assert_eq!(o.edge_count(), 3);
        assert_eq!(o.node_count(), 4);
        let alice = o.node_by_value("Alice").unwrap();
        assert_eq!(o.type_str(o.node_type(alice).unwrap()), "Author");
        let bob = o.node_by_value("Bob").unwrap();
        assert!(o.node_type(bob).is_none());
    }

    #[test]
    fn round_trips_through_serialize() {
        let o = parse(SAMPLE).unwrap();
        let text = serialize(&o);
        let o2 = parse(&text).unwrap();
        assert_eq!(o2.edge_count(), o.edge_count());
        assert_eq!(o2.node_count(), o.node_count());
        let alice = o2.node_by_value("Alice").unwrap();
        assert_eq!(o2.type_str(o2.node_type(alice).unwrap()), "Author");
        // Edge structure is preserved exactly.
        for e in o.edge_ids() {
            let d = o.edge(e);
            let src = o2.node_by_value(o.value_str(d.src)).unwrap();
            let dst = o2.node_by_value(o.value_str(d.dst)).unwrap();
            let pred = o2.pred_by_name(o.pred_str(d.pred)).unwrap();
            assert!(o2.find_edge(src, pred, dst).is_some());
        }
    }

    #[test]
    fn reports_line_numbers_on_malformed_input() {
        let err = parse("a wb b\nbad line with too many tokens here\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        let err = parse("@type onlyvalue\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn propagates_builder_errors() {
        let err = parse("a wb b\na wb b\n").unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
        let err = parse("@type x A\n@type x B\n").unwrap_err();
        assert!(matches!(err, GraphError::ConflictingType { .. }));
    }

    #[test]
    fn empty_input_builds_empty_ontology() {
        let o = parse("\n# nothing\n").unwrap();
        assert_eq!(o.node_count(), 0);
        assert_eq!(o.edge_count(), 0);
    }
}
