//! Error types for ontology construction and parsing.

use std::fmt;

/// Errors raised while building or parsing an ontology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Two nodes were declared with the same value; `L_V` must be
    /// one-to-one (Section II-A of the paper).
    DuplicateValue {
        /// The offending value string.
        value: String,
    },
    /// A parallel edge with the same predicate already connects the same
    /// ordered pair of nodes.
    DuplicateEdge {
        /// Source node value.
        src: String,
        /// Predicate label.
        pred: String,
        /// Target node value.
        dst: String,
    },
    /// A node was re-declared with a conflicting type annotation.
    ConflictingType {
        /// The node's value string.
        value: String,
        /// The type it already has.
        existing: String,
        /// The conflicting new type.
        requested: String,
    },
    /// A delta tried to delete a triple that is not present (or deleted
    /// it twice in the same batch).
    MissingTriple {
        /// Source node value.
        src: String,
        /// Predicate label.
        pred: String,
        /// Target node value.
        dst: String,
    },
    /// A referenced node id/value does not exist in the ontology.
    UnknownNode {
        /// Human-readable description of the missing node.
        what: String,
    },
    /// A line in the triple text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DuplicateValue { value } => {
                write!(f, "duplicate node value {value:?}: L_V must be one-to-one")
            }
            GraphError::DuplicateEdge { src, pred, dst } => write!(
                f,
                "duplicate edge ({src:?} -{pred:?}-> {dst:?}): parallel edges must have distinct predicates"
            ),
            GraphError::ConflictingType {
                value,
                existing,
                requested,
            } => write!(
                f,
                "node {value:?} already typed {existing:?}, cannot retype as {requested:?}"
            ),
            GraphError::MissingTriple { src, pred, dst } => write!(
                f,
                "cannot delete ({src:?} -{pred:?}-> {dst:?}): no such triple"
            ),
            GraphError::UnknownNode { what } => write!(f, "unknown node: {what}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::DuplicateValue {
            value: "Alice".into(),
        };
        assert!(e.to_string().contains("Alice"));
        assert!(e.to_string().contains("one-to-one"));

        let e = GraphError::DuplicateEdge {
            src: "paper1".into(),
            pred: "wb".into(),
            dst: "Alice".into(),
        };
        assert!(e.to_string().contains("paper1"));
        assert!(e.to_string().contains("wb"));

        let e = GraphError::Parse {
            line: 12,
            message: "expected 3 fields".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }
}
