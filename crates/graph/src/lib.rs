//! Ontology graph model for QuestPro-RS.
//!
//! This crate implements the data model of Section II-A of *Interactive
//! Inference of SPARQL Queries Using Provenance* (ICDE 2018): an **ontology
//! database** is a directed labeled multigraph `O = (V, E, L_V, L_E)` where
//!
//! * `L_V : V -> Values` maps every node to a **value** and is one-to-one
//!   (at most one node per value in the whole ontology);
//! * `L_E : E -> Predicates` maps every edge to a **predicate**; parallel
//!   edges between the same ordered node pair must carry distinct
//!   predicates;
//! * nodes may additionally carry a **type** (e.g. `Author`, `Paper`),
//!   which Section V of the paper uses to decide which variable pairs are
//!   candidates for disequality constraints.
//!
//! The crate provides:
//!
//! * compact integer identifiers and string interners ([`ids`],
//!   [`interner`]);
//! * the immutable, index-rich [`Ontology`] and its [`OntologyBuilder`];
//! * [`Subgraph`] — a canonical set of edges/nodes of an ontology, used
//!   both for provenance images (Def. 2.4) and for explanations;
//! * [`Explanation`] and [`ExampleSet`] — a subgraph plus a distinguished
//!   node (Def. 2.5), the input to query inference;
//! * a line-oriented text format for ontologies ([`triples`]).
//!
//! All structures are plain data with `O(1)` id-based access so that the
//! matcher in `questpro-engine` can run tight backtracking loops without
//! hashing strings.

pub mod columnar;
pub mod delta;
pub mod error;
pub mod exformat;
pub mod explanation;
pub mod fxhash;
pub mod ids;
pub mod interner;
pub mod ontology;
pub mod rng;
pub mod subgraph;
pub mod triples;

pub use columnar::{ColumnarIndexes, PredStats};
pub use delta::{DeltaSummary, TripleDelta};
pub use error::GraphError;
pub use explanation::{ExampleSet, Explanation};
pub use fxhash::{FxHashMap, FxHashSet};
pub use ids::{EdgeId, NodeId, PredId, TypeId, ValueId};
pub use interner::Interner;
pub use ontology::{EdgeData, NodeData, Ontology, OntologyBuilder};
pub use subgraph::Subgraph;
