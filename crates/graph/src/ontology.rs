//! The ontology database: an immutable, index-rich labeled multigraph.
//!
//! Construction goes through [`OntologyBuilder`], which enforces the two
//! model invariants of Section II-A:
//!
//! 1. node values are globally unique (`L_V` is one-to-one);
//! 2. parallel edges between the same ordered node pair carry distinct
//!    predicates.
//!
//! Once built, an [`Ontology`] is immutable and exposes the indexes the
//! query engine needs: per-node in/out adjacency, a per-predicate edge
//! list, and value→node lookup. All three row indexes are flat CSR
//! arrays (offsets + one edge-id column) built by linear counting
//! passes — no per-node allocations, which is what keeps snapshot
//! cold-start at memcpy speed (see `questpro-store`). Point-in-time
//! copies with batched triple inserts/deletes are produced by
//! [`Ontology::apply_delta`](crate::delta) without re-interning.

use std::collections::HashMap;

use crate::columnar::{ColumnarIndexes, PredStats};
use crate::error::GraphError;
use crate::fxhash::FxHashMap;
use crate::ids::{EdgeId, NodeId, PredId, TypeId, ValueId};
use crate::interner::Interner;

/// Per-node payload: the node's unique value and optional type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeData {
    /// Interned node value (the image of `L_V`).
    pub value: ValueId,
    /// Optional node type (used for disequality inference, Section V).
    pub ty: Option<TypeId>,
}

/// Per-edge payload: source, target, and predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeData {
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
    /// Interned edge predicate (the image of `L_E`).
    pub pred: PredId,
}

/// Flat CSR edge grouping: group `i` owns `ids[off[i]..off[i+1]]`, with
/// edge ids ascending within each group (insertion order).
#[derive(Debug, Clone, Default)]
pub(crate) struct EdgeCsr {
    pub(crate) off: Vec<u32>,
    pub(crate) ids: Vec<EdgeId>,
}

impl EdgeCsr {
    #[inline]
    pub(crate) fn span(&self, i: usize) -> &[EdgeId] {
        &self.ids[self.off[i] as usize..self.off[i + 1] as usize]
    }

    #[inline]
    pub(crate) fn span_len(&self, i: usize) -> usize {
        (self.off[i + 1] - self.off[i]) as usize
    }
}

/// Builds one CSR grouping of the edge table by `key` in two linear
/// passes (count, place); edge ids stay ascending within each group.
pub(crate) fn group_edges(
    groups: usize,
    edges: &[EdgeData],
    key: impl Fn(&EdgeData) -> usize,
) -> EdgeCsr {
    let mut off = vec![0u32; groups + 1];
    for d in edges {
        off[key(d) + 1] += 1;
    }
    for i in 0..groups {
        off[i + 1] += off[i];
    }
    let mut ids = vec![EdgeId::new(0); edges.len()];
    let mut cur: Vec<u32> = off[..groups].to_vec();
    for (i, d) in edges.iter().enumerate() {
        let c = &mut cur[key(d)];
        ids[*c as usize] = EdgeId::from_usize(i);
        *c += 1;
    }
    EdgeCsr { off, ids }
}

/// Value → node lookup.
///
/// The builder and snapshot paths both assign node `i` the value id `i`
/// (values and nodes are appended in lockstep), so the common case needs
/// no map at all: the lookup *is* the id. The `Map` arm covers
/// hand-assembled tables where the correspondence was permuted.
#[derive(Debug, Clone)]
pub(crate) enum ValueLookup {
    /// `value id v ↔ node id v` for every node; requires
    /// `values.len() == nodes.len()`.
    Identity,
    /// Explicit mapping for permuted tables.
    Map(FxHashMap<ValueId, NodeId>),
}

impl ValueLookup {
    #[inline]
    fn node_of(&self, v: ValueId, node_count: usize) -> Option<NodeId> {
        match self {
            ValueLookup::Identity => {
                if (v.raw() as usize) < node_count {
                    Some(NodeId::new(v.raw()))
                } else {
                    None
                }
            }
            ValueLookup::Map(m) => m.get(&v).copied(),
        }
    }
}

/// An immutable ontology graph with lookup indexes.
///
/// ```
/// use questpro_graph::Ontology;
///
/// let mut b = Ontology::builder();
/// b.edge("paper1", "wb", "Alice")?;
/// b.typed_node("Alice", "Author")?;
/// let ont = b.build();
///
/// let alice = ont.node_by_value("Alice").unwrap();
/// assert_eq!(ont.value_str(alice), "Alice");
/// assert_eq!(ont.type_str(ont.node_type(alice).unwrap()), "Author");
/// assert_eq!(ont.in_edges(alice).len(), 1);
/// # Ok::<(), questpro_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ontology {
    pub(crate) values: Interner,
    pub(crate) preds: Interner,
    pub(crate) types: Interner,
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) edges: Vec<EdgeData>,
    pub(crate) out_csr: EdgeCsr,
    pub(crate) in_csr: EdgeCsr,
    pub(crate) by_pred_csr: EdgeCsr,
    pub(crate) value_to_node: ValueLookup,
    // Per-node predicate signatures: bit `pred_bit(p)` is set iff the
    // node has an incident out/in edge labeled `p` (modulo the 64-bit
    // fold, so the test is a sound necessary condition only).
    pub(crate) out_sig: Vec<u64>,
    pub(crate) in_sig: Vec<u64>,
    pub(crate) columnar: ColumnarIndexes,
}

/// Builds the three row CSRs plus the per-node signature words in two
/// linear counting passes over the edge table.
pub(crate) fn index_edges(
    node_count: usize,
    pred_count: usize,
    edges: &[EdgeData],
) -> (EdgeCsr, EdgeCsr, EdgeCsr, Vec<u64>, Vec<u64>) {
    let out_csr = group_edges(node_count, edges, |d| d.src.index());
    let in_csr = group_edges(node_count, edges, |d| d.dst.index());
    let by_pred_csr = group_edges(pred_count, edges, |d| d.pred.index());
    let mut out_sig = vec![0u64; node_count];
    let mut in_sig = vec![0u64; node_count];
    for d in edges {
        let bit = 1u64 << (d.pred.raw() & 63);
        out_sig[d.src.index()] |= bit;
        in_sig[d.dst.index()] |= bit;
    }
    (out_csr, in_csr, by_pred_csr, out_sig, in_sig)
}

impl Ontology {
    /// Starts building an ontology.
    pub fn builder() -> OntologyBuilder {
        OntologyBuilder::new()
    }

    /// Assembles an ontology directly from pre-encoded tables, bypassing
    /// the string-interning builder path.
    ///
    /// This is the snapshot fast path: `questpro-store` already holds
    /// deduplicated label dictionaries and an id-encoded edge table, so
    /// re-driving [`OntologyBuilder`] would re-hash every label and
    /// re-check invariants the store format enforces on disk. The caller
    /// must guarantee edge uniqueness (no two edges with the same
    /// `(src, pred, dst)`); everything else — id ranges and value
    /// uniqueness — is validated here. When node `i` holds value id `i`
    /// for every node (true for all snapshot and builder tables), no
    /// value→node map is materialized at all.
    ///
    /// `columnar` may carry indexes mapped straight from the store's
    /// SPO/OSP arrays (see [`ColumnarIndexes::from_sorted_parts`]); when
    /// `None`, the columnar block is rebuilt from the edge table.
    ///
    /// # Errors
    /// Returns [`GraphError::UnknownNode`] when any node/pred/type/value
    /// id is out of range and [`GraphError::DuplicateValue`] when two
    /// nodes share a value.
    pub fn assemble(
        values: Interner,
        preds: Interner,
        types: Interner,
        nodes: Vec<NodeData>,
        edges: Vec<EdgeData>,
        columnar: Option<ColumnarIndexes>,
    ) -> Result<Self, GraphError> {
        let n = nodes.len();
        for (i, d) in nodes.iter().enumerate() {
            if d.value.index() >= values.len() {
                return Err(GraphError::UnknownNode {
                    what: format!(
                        "node {i} references value id {} out of range",
                        d.value.raw()
                    ),
                });
            }
            if let Some(t) = d.ty {
                if t.index() >= types.len() {
                    return Err(GraphError::UnknownNode {
                        what: format!("node {i} references type id {} out of range", t.raw()),
                    });
                }
            }
        }
        let identity =
            values.len() == n && nodes.iter().enumerate().all(|(i, d)| d.value.index() == i);
        let value_to_node = if identity {
            // Distinct indices imply distinct values: uniqueness holds
            // without a map.
            ValueLookup::Identity
        } else {
            let mut map: FxHashMap<ValueId, NodeId> = FxHashMap::default();
            map.reserve(n);
            for (i, d) in nodes.iter().enumerate() {
                if map.insert(d.value, NodeId::from_usize(i)).is_some() {
                    return Err(GraphError::DuplicateValue {
                        value: values.resolve(d.value.raw()).to_string(),
                    });
                }
            }
            ValueLookup::Map(map)
        };
        for (i, d) in edges.iter().enumerate() {
            if d.src.index() >= n || d.dst.index() >= n {
                return Err(GraphError::UnknownNode {
                    what: format!("edge {i} references a node id out of range"),
                });
            }
            if d.pred.index() >= preds.len() {
                return Err(GraphError::UnknownNode {
                    what: format!("edge {i} references pred id {} out of range", d.pred.raw()),
                });
            }
        }
        let (out_csr, in_csr, by_pred_csr, out_sig, in_sig) = index_edges(n, preds.len(), &edges);
        let columnar = columnar.unwrap_or_else(|| ColumnarIndexes::build(n, &edges, &by_pred_csr));
        Ok(Self {
            values,
            preds,
            types,
            nodes,
            edges,
            out_csr,
            in_csr,
            by_pred_csr,
            value_to_node,
            out_sig,
            in_sig,
            columnar,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of distinct predicates.
    pub fn pred_count(&self) -> usize {
        self.preds.len()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::new)
    }

    /// Iterates over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId::new)
    }

    /// Payload of node `n`.
    #[inline]
    pub fn node(&self, n: NodeId) -> NodeData {
        self.nodes[n.index()]
    }

    /// Payload of edge `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> EdgeData {
        self.edges[e.index()]
    }

    /// The value string of node `n`.
    pub fn value_str(&self, n: NodeId) -> &str {
        self.values.resolve(self.nodes[n.index()].value.raw())
    }

    /// The predicate string of edge `e`.
    pub fn pred_str_of(&self, e: EdgeId) -> &str {
        self.preds.resolve(self.edges[e.index()].pred.raw())
    }

    /// Resolves a predicate id to its string.
    pub fn pred_str(&self, p: PredId) -> &str {
        self.preds.resolve(p.raw())
    }

    /// Resolves a type id to its string.
    pub fn type_str(&self, t: TypeId) -> &str {
        self.types.resolve(t.raw())
    }

    /// Resolves a value id to its string.
    pub fn value_of(&self, v: ValueId) -> &str {
        self.values.resolve(v.raw())
    }

    /// The type of node `n`, if declared.
    pub fn node_type(&self, n: NodeId) -> Option<TypeId> {
        self.nodes[n.index()].ty
    }

    /// Finds the node holding `value`, if any (values are unique).
    pub fn node_by_value(&self, value: &str) -> Option<NodeId> {
        let v = self.values.get(value)?;
        self.value_to_node
            .node_of(ValueId::new(v), self.nodes.len())
    }

    /// Finds the predicate id of `pred`, if any edge uses it.
    pub fn pred_by_name(&self, pred: &str) -> Option<PredId> {
        self.preds.get(pred).map(PredId::new)
    }

    /// Finds the type id of `ty`, if declared on any node.
    pub fn type_by_name(&self, ty: &str) -> Option<TypeId> {
        self.types.get(ty).map(TypeId::new)
    }

    /// Outgoing edges of node `n`.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        self.out_csr.span(n.index())
    }

    /// Incoming edges of node `n`.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[EdgeId] {
        self.in_csr.span(n.index())
    }

    /// All edges labeled with predicate `p`.
    #[inline]
    pub fn edges_with_pred(&self, p: PredId) -> &[EdgeId] {
        if p.index() < self.preds.len() {
            self.by_pred_csr.span(p.index())
        } else {
            &[]
        }
    }

    /// Degree (in + out) of node `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.out_csr.span_len(n.index()) + self.in_csr.span_len(n.index())
    }

    /// Finds the unique edge `src -pred-> dst`, if present.
    ///
    /// Binary-searches the columnar out-span for `pred`, then scans that
    /// (typically tiny) span for `dst`.
    pub fn find_edge(&self, src: NodeId, pred: PredId, dst: NodeId) -> Option<EdgeId> {
        self.columnar
            .out_with_pred(src, pred)
            .iter()
            .copied()
            .find(|&e| self.edges[e.index()].dst == dst)
    }

    /// Outgoing edges of `n` labeled `pred`, in the same relative order a
    /// filter scan of [`Ontology::out_edges`] would yield.
    #[inline]
    pub fn out_edges_with_pred(&self, n: NodeId, pred: PredId) -> &[EdgeId] {
        self.columnar.out_with_pred(n, pred)
    }

    /// Incoming edges of `n` labeled `pred`, in the same relative order a
    /// filter scan of [`Ontology::in_edges`] would yield.
    #[inline]
    pub fn in_edges_with_pred(&self, n: NodeId, pred: PredId) -> &[EdgeId] {
        self.columnar.in_with_pred(n, pred)
    }

    /// Per-predicate cardinality and distinct-count statistics.
    #[inline]
    pub fn pred_stats(&self, p: PredId) -> PredStats {
        self.columnar.pred_stats(p)
    }

    /// The columnar index block (for benchmarking rebuild cost).
    pub fn columnar(&self) -> &ColumnarIndexes {
        &self.columnar
    }

    /// Rebuilds the columnar indexes from the row-oriented tables.
    ///
    /// Used by benchmarks to time a warm index build and by the delta
    /// tests as the from-scratch oracle for the incremental maintenance
    /// path; the result is identical to the block built in
    /// [`OntologyBuilder::build`].
    pub fn rebuild_columnar(&self) -> ColumnarIndexes {
        ColumnarIndexes::build(self.nodes.len(), &self.edges, &self.by_pred_csr)
    }

    /// The signature bit predicate `p` folds to (predicates are hashed
    /// into 64 buckets, so distinct predicates may share a bit).
    #[inline]
    pub fn pred_bit(&self, p: PredId) -> u64 {
        1u64 << (p.raw() & 63)
    }

    /// Bitset of predicates appearing on outgoing edges of `n`.
    ///
    /// A query node that still needs an outgoing `p`-edge can only map
    /// to `n` if `pred_bit(p) & out_signature(n) != 0` — a one-word
    /// 1-hop pruning test the matcher applies before backtracking. The
    /// test is *necessary, not sufficient*: bits may collide (>64
    /// predicates) and edge endpoints still have to line up.
    #[inline]
    pub fn out_signature(&self, n: NodeId) -> u64 {
        self.out_sig[n.index()]
    }

    /// Bitset of predicates appearing on incoming edges of `n`.
    ///
    /// See [`Ontology::out_signature`] for the pruning contract.
    #[inline]
    pub fn in_signature(&self, n: NodeId) -> u64 {
        self.in_sig[n.index()]
    }

    /// Access to the value interner (read-only).
    pub fn values(&self) -> &Interner {
        &self.values
    }

    /// Access to the predicate interner (read-only).
    pub fn preds(&self) -> &Interner {
        &self.preds
    }

    /// Access to the type interner (read-only).
    pub fn types(&self) -> &Interner {
        &self.types
    }

    /// Per-type node counts, sorted descending (untyped nodes under
    /// `(none)`); the summary the CLI prints after `generate`.
    pub fn type_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for n in self.node_ids() {
            let key = match self.node_type(n) {
                Some(t) => self.type_str(t).to_string(),
                None => "(none)".to_string(),
            };
            *counts.entry(key).or_insert(0) += 1;
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Renders edge `e` as `src -pred-> dst` with value strings.
    pub fn describe_edge(&self, e: EdgeId) -> String {
        let d = self.edge(e);
        format!(
            "{} -{}-> {}",
            self.value_str(d.src),
            self.pred_str(d.pred),
            self.value_str(d.dst)
        )
    }

    /// Verifies the structural invariants; used by tests and debug builds.
    ///
    /// Returns the first violated invariant, if any.
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut seen_values: HashMap<ValueId, NodeId> = HashMap::new();
        for n in self.node_ids() {
            let v = self.node(n).value;
            if let Some(prev) = seen_values.insert(v, n) {
                let _ = prev;
                return Err(GraphError::DuplicateValue {
                    value: self.value_of(v).to_string(),
                });
            }
        }
        let mut seen_edges: HashMap<(NodeId, PredId, NodeId), EdgeId> = HashMap::new();
        for e in self.edge_ids() {
            let d = self.edge(e);
            if seen_edges.insert((d.src, d.pred, d.dst), e).is_some() {
                return Err(GraphError::DuplicateEdge {
                    src: self.value_str(d.src).to_string(),
                    pred: self.pred_str(d.pred).to_string(),
                    dst: self.value_str(d.dst).to_string(),
                });
            }
        }
        Ok(())
    }
}

/// Incrementally constructs an [`Ontology`] while enforcing its invariants.
///
/// Nodes are created on demand by [`OntologyBuilder::node`] /
/// [`OntologyBuilder::edge`]; declaring the same value twice returns the
/// same node. Types may be attached at any time before [`build`].
///
/// [`build`]: OntologyBuilder::build
#[derive(Debug, Default)]
pub struct OntologyBuilder {
    values: Interner,
    preds: Interner,
    types: Interner,
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    edge_set: FxHashMap<(NodeId, PredId, NodeId), EdgeId>,
    value_to_node: FxHashMap<ValueId, NodeId>,
}

impl OntologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the node holding `value`, creating it if needed.
    pub fn node(&mut self, value: &str) -> NodeId {
        let v = ValueId::new(self.values.intern(value));
        if let Some(&n) = self.value_to_node.get(&v) {
            return n;
        }
        let n = NodeId::from_usize(self.nodes.len());
        self.nodes.push(NodeData { value: v, ty: None });
        self.value_to_node.insert(v, n);
        n
    }

    /// Returns the node holding `value` and tags it with type `ty`.
    ///
    /// # Errors
    /// Fails if the node already carries a different type.
    pub fn typed_node(&mut self, value: &str, ty: &str) -> Result<NodeId, GraphError> {
        let n = self.node(value);
        let t = TypeId::new(self.types.intern(ty));
        match self.nodes[n.index()].ty {
            None => {
                self.nodes[n.index()].ty = Some(t);
                Ok(n)
            }
            Some(existing) if existing == t => Ok(n),
            Some(existing) => Err(GraphError::ConflictingType {
                value: value.to_string(),
                existing: self.types.resolve(existing.raw()).to_string(),
                requested: ty.to_string(),
            }),
        }
    }

    /// Adds the edge `src -pred-> dst` (creating missing nodes), returning
    /// its id.
    ///
    /// # Errors
    /// Fails if an identical edge already exists (parallel edges must have
    /// distinct predicates).
    pub fn edge(&mut self, src: &str, pred: &str, dst: &str) -> Result<EdgeId, GraphError> {
        let s = self.node(src);
        let d = self.node(dst);
        self.edge_ids_internal(s, pred, d)
    }

    /// Adds an edge between existing node ids.
    ///
    /// # Errors
    /// Fails on duplicate edges.
    pub fn edge_between(
        &mut self,
        src: NodeId,
        pred: &str,
        dst: NodeId,
    ) -> Result<EdgeId, GraphError> {
        self.edge_ids_internal(src, pred, dst)
    }

    fn edge_ids_internal(
        &mut self,
        src: NodeId,
        pred: &str,
        dst: NodeId,
    ) -> Result<EdgeId, GraphError> {
        let p = PredId::new(self.preds.intern(pred));
        if self.edge_set.contains_key(&(src, p, dst)) {
            return Err(GraphError::DuplicateEdge {
                src: self
                    .values
                    .resolve(self.nodes[src.index()].value.raw())
                    .to_string(),
                pred: pred.to_string(),
                dst: self
                    .values
                    .resolve(self.nodes[dst.index()].value.raw())
                    .to_string(),
            });
        }
        let e = EdgeId::from_usize(self.edges.len());
        self.edges.push(EdgeData { src, dst, pred: p });
        self.edge_set.insert((src, p, dst), e);
        Ok(e)
    }

    /// Adds an edge if it is not already present, returning its id either
    /// way. Convenient for generators that may emit duplicates.
    pub fn edge_idempotent(&mut self, src: &str, pred: &str, dst: &str) -> EdgeId {
        let s = self.node(src);
        let d = self.node(dst);
        let p = PredId::new(self.preds.intern(pred));
        if let Some(&e) = self.edge_set.get(&(s, p, d)) {
            return e;
        }
        let e = EdgeId::from_usize(self.edges.len());
        self.edges.push(EdgeData {
            src: s,
            dst: d,
            pred: p,
        });
        self.edge_set.insert((s, p, d), e);
        e
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the ontology, computing all indexes.
    pub fn build(self) -> Ontology {
        let n = self.nodes.len();
        let (out_csr, in_csr, by_pred_csr, out_sig, in_sig) =
            index_edges(n, self.preds.len(), &self.edges);
        let columnar = ColumnarIndexes::build(n, &self.edges, &by_pred_csr);
        // The builder appends values and nodes in lockstep, so identity
        // normally holds; keep the map only for the degenerate case.
        let identity = self.values.len() == n
            && self
                .nodes
                .iter()
                .enumerate()
                .all(|(i, d)| d.value.index() == i);
        let value_to_node = if identity {
            ValueLookup::Identity
        } else {
            ValueLookup::Map(self.value_to_node)
        };
        Ontology {
            values: self.values,
            preds: self.preds,
            types: self.types,
            nodes: self.nodes,
            edges: self.edges,
            out_csr,
            in_csr,
            by_pred_csr,
            value_to_node,
            out_sig,
            in_sig,
            columnar,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Ontology {
        let mut b = Ontology::builder();
        b.edge("paper1", "wb", "Alice").unwrap();
        b.edge("paper1", "wb", "Bob").unwrap();
        b.edge("paper2", "wb", "Bob").unwrap();
        b.edge("paper2", "cites", "paper1").unwrap();
        b.build()
    }

    #[test]
    fn builder_dedupes_nodes_by_value() {
        let o = tiny();
        assert_eq!(o.node_count(), 4);
        assert_eq!(o.edge_count(), 4);
        assert_eq!(o.pred_count(), 2);
    }

    #[test]
    fn duplicate_edges_are_rejected() {
        let mut b = Ontology::builder();
        b.edge("a", "p", "b").unwrap();
        let err = b.edge("a", "p", "b").unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
        // Distinct predicate between the same nodes is fine.
        b.edge("a", "q", "b").unwrap();
    }

    #[test]
    fn edge_idempotent_returns_existing_id() {
        let mut b = Ontology::builder();
        let e1 = b.edge_idempotent("a", "p", "b");
        let e2 = b.edge_idempotent("a", "p", "b");
        assert_eq!(e1, e2);
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn adjacency_indexes_are_consistent() {
        let o = tiny();
        let paper1 = o.node_by_value("paper1").unwrap();
        let bob = o.node_by_value("Bob").unwrap();
        assert_eq!(o.out_edges(paper1).len(), 2);
        assert_eq!(o.in_edges(paper1).len(), 1); // cites
        assert_eq!(o.in_edges(bob).len(), 2);
        assert_eq!(o.degree(bob), 2);
        let wb = o.pred_by_name("wb").unwrap();
        assert_eq!(o.edges_with_pred(wb).len(), 3);
    }

    #[test]
    fn find_edge_locates_unique_edge() {
        let o = tiny();
        let paper2 = o.node_by_value("paper2").unwrap();
        let paper1 = o.node_by_value("paper1").unwrap();
        let cites = o.pred_by_name("cites").unwrap();
        let e = o.find_edge(paper2, cites, paper1).unwrap();
        assert_eq!(o.describe_edge(e), "paper2 -cites-> paper1");
        let wb = o.pred_by_name("wb").unwrap();
        assert!(o.find_edge(paper2, wb, paper1).is_none());
    }

    #[test]
    fn typed_nodes_enforce_single_type() {
        let mut b = Ontology::builder();
        b.typed_node("Alice", "Author").unwrap();
        b.typed_node("Alice", "Author").unwrap(); // same type ok
        let err = b.typed_node("Alice", "Paper").unwrap_err();
        assert!(matches!(err, GraphError::ConflictingType { .. }));
        let o = b.build();
        let alice = o.node_by_value("Alice").unwrap();
        let t = o.node_type(alice).unwrap();
        assert_eq!(o.type_str(t), "Author");
    }

    #[test]
    fn validate_accepts_well_formed_graph() {
        assert!(tiny().validate().is_ok());
    }

    #[test]
    fn type_histogram_counts_types() {
        let mut b = Ontology::builder();
        b.typed_node("Alice", "Author").unwrap();
        b.typed_node("Bob", "Author").unwrap();
        b.typed_node("paper1", "Paper").unwrap();
        b.node("untyped");
        let o = b.build();
        let hist = o.type_histogram();
        assert_eq!(
            hist,
            vec![
                ("Author".to_string(), 2),
                ("(none)".to_string(), 1),
                ("Paper".to_string(), 1),
            ]
        );
    }

    #[test]
    fn predicate_signatures_reflect_incident_edges() {
        let o = tiny();
        let paper1 = o.node_by_value("paper1").unwrap();
        let paper2 = o.node_by_value("paper2").unwrap();
        let alice = o.node_by_value("Alice").unwrap();
        let wb = o.pred_by_name("wb").unwrap();
        let cites = o.pred_by_name("cites").unwrap();
        // paper1 writes (out: wb) and is cited (in: cites).
        assert_ne!(o.out_signature(paper1) & o.pred_bit(wb), 0);
        assert_ne!(o.in_signature(paper1) & o.pred_bit(cites), 0);
        assert_eq!(o.in_signature(paper1) & o.pred_bit(wb), 0);
        // paper2 cites but is never cited.
        assert_ne!(o.out_signature(paper2) & o.pred_bit(cites), 0);
        assert_eq!(o.in_signature(paper2), 0);
        // Alice only receives wb edges.
        assert_eq!(o.out_signature(alice), 0);
        assert_eq!(o.in_signature(alice), o.pred_bit(wb));
    }

    #[test]
    fn assemble_matches_builder_path() {
        let via_builder = tiny();
        let values = via_builder.values().clone();
        let preds = via_builder.preds().clone();
        let types = via_builder.types().clone();
        let nodes: Vec<NodeData> = via_builder
            .node_ids()
            .map(|n| via_builder.node(n))
            .collect();
        let edges: Vec<EdgeData> = via_builder
            .edge_ids()
            .map(|e| via_builder.edge(e))
            .collect();
        let o = Ontology::assemble(values, preds, types, nodes, edges, None).unwrap();
        assert_eq!(o.node_count(), via_builder.node_count());
        assert_eq!(o.edge_count(), via_builder.edge_count());
        for n in o.node_ids() {
            assert_eq!(o.out_edges(n), via_builder.out_edges(n));
            assert_eq!(o.in_edges(n), via_builder.in_edges(n));
            assert_eq!(o.out_signature(n), via_builder.out_signature(n));
        }
        let wb = o.pred_by_name("wb").unwrap();
        assert_eq!(o.pred_stats(wb), via_builder.pred_stats(wb));
        assert_eq!(o.node_by_value("Bob"), via_builder.node_by_value("Bob"));
        assert!(o.validate().is_ok());
    }

    #[test]
    fn assemble_rejects_bad_tables() {
        let o = tiny();
        let nodes: Vec<NodeData> = o.node_ids().map(|n| o.node(n)).collect();
        let edges: Vec<EdgeData> = o.edge_ids().map(|e| o.edge(e)).collect();
        // Out-of-range value id.
        let mut bad = nodes.clone();
        bad[0].value = ValueId::new(99);
        let err = Ontology::assemble(
            o.values().clone(),
            o.preds().clone(),
            o.types().clone(),
            bad,
            edges.clone(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode { .. }));
        // Duplicate value.
        let mut dup = nodes.clone();
        dup[1].value = dup[0].value;
        let err = Ontology::assemble(
            o.values().clone(),
            o.preds().clone(),
            o.types().clone(),
            dup,
            edges.clone(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateValue { .. }));
        // Edge pointing past the node table.
        let mut bad_edges = edges;
        bad_edges[0].dst = NodeId::new(u32::MAX);
        let err = Ontology::assemble(
            o.values().clone(),
            o.preds().clone(),
            o.types().clone(),
            nodes,
            bad_edges,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::UnknownNode { .. }));
    }

    #[test]
    fn lookups_fail_gracefully() {
        let o = tiny();
        assert!(o.node_by_value("nobody").is_none());
        assert!(o.pred_by_name("nope").is_none());
        assert!(o.type_by_name("nope").is_none());
    }

    #[test]
    fn permuted_assemble_tables_fall_back_to_the_value_map() {
        // Swap the value ids of two nodes: identity no longer holds, so
        // the Map arm must carry the lookup.
        let o = tiny();
        let mut nodes: Vec<NodeData> = o.node_ids().map(|n| o.node(n)).collect();
        let edges: Vec<EdgeData> = o.edge_ids().map(|e| o.edge(e)).collect();
        nodes.swap(0, 1);
        let v0 = o.value_of(nodes[0].value).to_string();
        let v1 = o.value_of(nodes[1].value).to_string();
        let p = Ontology::assemble(
            o.values().clone(),
            o.preds().clone(),
            o.types().clone(),
            nodes,
            edges,
            None,
        )
        .unwrap();
        assert_eq!(p.node_by_value(&v0), Some(NodeId::new(0)));
        assert_eq!(p.node_by_value(&v1), Some(NodeId::new(1)));
        assert!(p.node_by_value("nobody").is_none());
    }
}
