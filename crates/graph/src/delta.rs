//! Batched triple inserts/deletes over an immutable [`Ontology`].
//!
//! The ontology stays immutable: [`Ontology::apply_delta`] produces a
//! **new** point-in-time copy, which is what lets in-flight inference
//! sessions keep reading the version they pinned while new sessions see
//! the head (copy-on-write versioning in `questpro-server`).
//!
//! What "incremental" means here, versus rebuilding from text:
//!
//! * the three label interners are reused append-only — no label is
//!   re-hashed or re-copied (for arena-backed interners a clone is a
//!   handful of memcpys);
//! * node ids are stable: nodes are never deleted (a triple delete can
//!   leave an isolated node, which keeps its id), inserts append;
//! * edge ids are **stable for insert-only deltas**; deletes compact the
//!   edge table with a monotone old→new remap (relative order kept), so
//!   sorted columnar spans remain sorted after remapping;
//! * the columnar SPO/OPS block is delta-maintained (survivor remap +
//!   per-node merge of inserts + statistics adjustment) instead of being
//!   recounted from scratch; the row CSRs and signature words are
//!   re-derived by linear counting passes over the u32 edge table.
//!
//! The correctness oracle for all of this is differential: after any
//! update sequence the incremental ontology must behave identically to
//! one rebuilt from scratch from the post-update triple set (pinned by
//! unit tests here and fuzzed end-to-end by the `update` surface in
//! `questpro-fuzz`).

use crate::error::GraphError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ids::{NodeId, PredId, ValueId};
use crate::interner::Interner;
use crate::ontology::{index_edges, EdgeData, NodeData, Ontology, ValueLookup};

/// A batch of triple updates: deletes are applied first, then inserts.
///
/// Validation is strict — deleting an absent triple, deleting the same
/// triple twice, inserting an edge that already exists (and survives the
/// batch's deletes), or inserting the same edge twice are all named
/// errors, so a rejected batch never half-applies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TripleDelta {
    /// Triples to add, as `[src, pred, dst]` value/label strings.
    pub inserts: Vec<[String; 3]>,
    /// Triples to remove, same shape.
    pub deletes: Vec<[String; 3]>,
}

impl TripleDelta {
    /// Whether the batch carries no work.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total number of triples touched.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// What an applied delta did, for cache invalidation and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Edges inserted.
    pub inserted: usize,
    /// Edges deleted.
    pub deleted: usize,
    /// Nodes created by inserts referencing new values.
    pub nodes_added: usize,
    /// OR of [`Ontology::pred_bit`] over every touched predicate: an
    /// entry whose own predicate signature is disjoint from this word
    /// provably saw no relevant change (modulo the 64-bit fold, which
    /// only ever over-approximates — safe direction).
    pub pred_sig: u64,
    /// True iff the delta had no deletes, in which case every
    /// pre-existing [`EdgeId`] is still valid in the new version.
    /// Deletes compact edge ids, so anything holding old edge ids
    /// (explanations, cached matches) must be dropped or remapped.
    pub edge_ids_stable: bool,
}

/// Resolves `label` to a node in the new tables, appending a fresh
/// untyped node if the value is new.
fn node_of(
    values: &mut Interner,
    nodes: &mut Vec<NodeData>,
    map: &mut Option<FxHashMap<ValueId, NodeId>>,
    label: &str,
) -> NodeId {
    let v = ValueId::new(values.intern(label));
    let existing = match map {
        None => {
            if v.index() < nodes.len() {
                Some(NodeId::new(v.raw()))
            } else {
                None
            }
        }
        Some(m) => m.get(&v).copied(),
    };
    if let Some(n) = existing {
        return n;
    }
    let n = NodeId::from_usize(nodes.len());
    nodes.push(NodeData { value: v, ty: None });
    match map {
        Some(m) => {
            m.insert(v, n);
        }
        None if v.index() == n.index() => {} // identity preserved
        None => {
            // Identity broke (values interner held labels with no node);
            // materialize the map once and carry on.
            let mut m: FxHashMap<ValueId, NodeId> = nodes[..n.index()]
                .iter()
                .enumerate()
                .map(|(i, d)| (d.value, NodeId::from_usize(i)))
                .collect();
            m.insert(v, n);
            *map = Some(m);
        }
    }
    n
}

impl Ontology {
    /// Applies a batch of triple deletes-then-inserts, returning the new
    /// ontology version and a summary of what changed.
    ///
    /// The receiver is untouched (copy-on-write). See the module docs
    /// for the id-stability contract and what is maintained
    /// incrementally.
    ///
    /// # Errors
    /// [`GraphError::MissingTriple`] when a delete names an absent
    /// triple (unknown value/predicate included) or repeats within the
    /// batch; [`GraphError::DuplicateEdge`] when an insert duplicates a
    /// surviving edge or another insert in the batch. On error, nothing
    /// is applied.
    pub fn apply_delta(&self, delta: &TripleDelta) -> Result<(Ontology, DeltaSummary), GraphError> {
        let m_old = self.edges.len();
        let old_node_count = self.nodes.len();
        let mut deleted = vec![false; m_old];
        let mut deleted_count = 0usize;
        let mut pred_sig = 0u64;
        for [s, p, o] in &delta.deletes {
            let missing = || GraphError::MissingTriple {
                src: s.clone(),
                pred: p.clone(),
                dst: o.clone(),
            };
            let sn = self.node_by_value(s).ok_or_else(missing)?;
            let pid = self.pred_by_name(p).ok_or_else(missing)?;
            let on = self.node_by_value(o).ok_or_else(missing)?;
            let e = self.find_edge(sn, pid, on).ok_or_else(missing)?;
            if deleted[e.index()] {
                return Err(missing());
            }
            deleted[e.index()] = true;
            deleted_count += 1;
            pred_sig |= self.pred_bit(pid);
        }
        // Append-only reuse of the interners and node table.
        let mut values = self.values.clone();
        let mut preds = self.preds.clone();
        let types = self.types.clone();
        let mut nodes = self.nodes.clone();
        let mut value_map: Option<FxHashMap<ValueId, NodeId>> = match &self.value_to_node {
            ValueLookup::Identity => None,
            ValueLookup::Map(m) => Some(m.clone()),
        };
        let mut batch_set: FxHashSet<(NodeId, PredId, NodeId)> = FxHashSet::default();
        let mut inserted: Vec<EdgeData> = Vec::with_capacity(delta.inserts.len());
        for [s, p, o] in &delta.inserts {
            let sn = node_of(&mut values, &mut nodes, &mut value_map, s);
            let on = node_of(&mut values, &mut nodes, &mut value_map, o);
            let pid = PredId::new(preds.intern(p));
            let duplicate = || GraphError::DuplicateEdge {
                src: s.clone(),
                pred: p.clone(),
                dst: o.clone(),
            };
            // Against surviving old edges (only old ids can collide).
            if sn.index() < old_node_count
                && on.index() < old_node_count
                && pid.index() < self.preds.len()
            {
                if let Some(e) = self.find_edge(sn, pid, on) {
                    if !deleted[e.index()] {
                        return Err(duplicate());
                    }
                }
            }
            // Against the batch itself.
            if !batch_set.insert((sn, pid, on)) {
                return Err(duplicate());
            }
            inserted.push(EdgeData {
                src: sn,
                dst: on,
                pred: pid,
            });
            pred_sig |= 1u64 << (pid.raw() & 63);
        }
        // Compact survivors (monotone remap), append inserts.
        let mut edges: Vec<EdgeData> = Vec::with_capacity(m_old - deleted_count + inserted.len());
        let mut remap = vec![u32::MAX; m_old];
        for (i, d) in self.edges.iter().enumerate() {
            if !deleted[i] {
                remap[i] = edges.len() as u32;
                edges.push(*d);
            }
        }
        let first_insert = edges.len() as u32;
        edges.extend(inserted.iter().copied());
        let columnar = self.columnar.apply_delta(
            &self.edges,
            &edges,
            &deleted,
            &remap,
            old_node_count,
            nodes.len(),
            preds.len(),
            first_insert,
        );
        let (out_csr, in_csr, by_pred_csr, out_sig, in_sig) =
            index_edges(nodes.len(), preds.len(), &edges);
        let summary = DeltaSummary {
            inserted: inserted.len(),
            deleted: deleted_count,
            nodes_added: nodes.len() - old_node_count,
            pred_sig,
            edge_ids_stable: deleted_count == 0,
        };
        let next = Ontology {
            values,
            preds,
            types,
            nodes,
            edges,
            out_csr,
            in_csr,
            by_pred_csr,
            value_to_node: match value_map {
                None => ValueLookup::Identity,
                Some(m) => ValueLookup::Map(m),
            },
            out_sig,
            in_sig,
            columnar,
        };
        debug_assert_eq!(next.columnar, next.rebuild_columnar());
        Ok((next, summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EdgeId;
    use crate::rng::{Rng, SplitMix64};
    use crate::triples;

    fn base() -> Ontology {
        let mut b = Ontology::builder();
        b.edge("paper1", "wb", "Alice").unwrap();
        b.edge("paper1", "wb", "Bob").unwrap();
        b.edge("paper2", "wb", "Bob").unwrap();
        b.edge("paper2", "cites", "paper1").unwrap();
        b.typed_node("Alice", "Author").unwrap();
        b.build()
    }

    fn delta(inserts: &[[&str; 3]], deletes: &[[&str; 3]]) -> TripleDelta {
        let own = |t: &[&str; 3]| [t[0].to_string(), t[1].to_string(), t[2].to_string()];
        TripleDelta {
            inserts: inserts.iter().map(own).collect(),
            deletes: deletes.iter().map(own).collect(),
        }
    }

    /// From-scratch oracle: serialize the incremental result and re-parse
    /// it; every index and statistic must agree with the rebuilt graph.
    fn assert_matches_scratch(inc: &Ontology) {
        inc.validate().expect("incremental result validates");
        assert_eq!(
            inc.columnar,
            inc.rebuild_columnar(),
            "columnar delta drifted"
        );
        let scratch = triples::parse(&triples::serialize(inc)).expect("reparse");
        // The text format cannot carry isolated untyped nodes (a delete
        // may strand one); everything else must agree.
        let isolated = |o: &Ontology| {
            o.node_ids()
                .filter(|&n| o.degree(n) == 0 && o.node_type(n).is_none())
                .count()
        };
        assert_eq!(inc.node_count() - isolated(inc), scratch.node_count());
        assert_eq!(inc.edge_count(), scratch.edge_count());
        // Compare as rendered triple sets (ids may differ between the
        // incremental and scratch paths).
        let render = |o: &Ontology| {
            let mut v: Vec<String> = o.edge_ids().map(|e| o.describe_edge(e)).collect();
            v.sort();
            v
        };
        assert_eq!(render(inc), render(&scratch));
    }

    #[test]
    fn insert_only_delta_keeps_edge_ids_stable() {
        let o = base();
        let (next, sum) = o
            .apply_delta(&delta(
                &[["paper3", "wb", "Alice"], ["paper3", "cites", "paper1"]],
                &[],
            ))
            .unwrap();
        assert!(sum.edge_ids_stable);
        assert_eq!(sum.inserted, 2);
        assert_eq!(sum.nodes_added, 1);
        assert_eq!(next.edge_count(), 6);
        // Old edge ids resolve to the same triples.
        for e in o.edge_ids() {
            assert_eq!(o.describe_edge(e), next.describe_edge(e));
        }
        // Old ontology untouched (copy-on-write).
        assert_eq!(o.edge_count(), 4);
        assert!(o.node_by_value("paper3").is_none());
        assert_matches_scratch(&next);
    }

    #[test]
    fn delete_delta_compacts_ids_and_reports_instability() {
        let o = base();
        let (next, sum) = o
            .apply_delta(&delta(&[], &[["paper1", "wb", "Bob"]]))
            .unwrap();
        assert!(!sum.edge_ids_stable);
        assert_eq!(sum.deleted, 1);
        assert_eq!(next.edge_count(), 3);
        // Node survives deletion of its only edge context.
        assert!(next.node_by_value("Bob").is_some());
        assert_matches_scratch(&next);
    }

    #[test]
    fn mixed_delta_delete_then_reinsert_same_triple() {
        let o = base();
        let (next, _) = o
            .apply_delta(&delta(
                &[["paper1", "wb", "Bob"], ["Bob", "knows", "Alice"]],
                &[["paper1", "wb", "Bob"], ["paper2", "cites", "paper1"]],
            ))
            .unwrap();
        assert_eq!(next.edge_count(), 4);
        let bob = next.node_by_value("Bob").unwrap();
        let knows = next.pred_by_name("knows").unwrap();
        let alice = next.node_by_value("Alice").unwrap();
        assert!(next.find_edge(bob, knows, alice).is_some());
        assert_matches_scratch(&next);
    }

    #[test]
    fn types_survive_deltas() {
        let o = base();
        let (next, _) = o
            .apply_delta(&delta(&[["Alice", "knows", "Bob"]], &[]))
            .unwrap();
        let alice = next.node_by_value("Alice").unwrap();
        assert_eq!(next.type_str(next.node_type(alice).unwrap()), "Author");
    }

    #[test]
    fn missing_deletes_are_named_errors() {
        let o = base();
        for bad in [
            ["nobody", "wb", "Alice"],   // unknown src
            ["paper1", "nope", "Alice"], // unknown pred
            ["paper1", "wb", "nobody"],  // unknown dst
            ["paper2", "wb", "Alice"],   // absent triple
        ] {
            let err = o.apply_delta(&delta(&[], &[bad])).unwrap_err();
            assert!(matches!(err, GraphError::MissingTriple { .. }), "{err}");
        }
        // Same triple twice in one batch.
        let err = o
            .apply_delta(&delta(
                &[],
                &[["paper1", "wb", "Bob"], ["paper1", "wb", "Bob"]],
            ))
            .unwrap_err();
        assert!(matches!(err, GraphError::MissingTriple { .. }));
    }

    #[test]
    fn duplicate_inserts_are_named_errors() {
        let o = base();
        let err = o
            .apply_delta(&delta(&[["paper1", "wb", "Alice"]], &[]))
            .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
        let err = o
            .apply_delta(&delta(&[["x", "p", "y"], ["x", "p", "y"]], &[]))
            .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
        // Failed batches apply nothing.
        assert!(o.node_by_value("x").is_none());
    }

    #[test]
    fn empty_delta_is_a_noop_version() {
        let o = base();
        let (next, sum) = o.apply_delta(&TripleDelta::default()).unwrap();
        assert_eq!(sum.pred_sig, 0);
        assert!(sum.edge_ids_stable);
        assert_eq!(next.edge_count(), o.edge_count());
        assert_matches_scratch(&next);
    }

    #[test]
    fn pred_sig_covers_touched_predicates_only() {
        let o = base();
        let wb = o.pred_by_name("wb").unwrap();
        let cites = o.pred_by_name("cites").unwrap();
        let (_, sum) = o
            .apply_delta(&delta(&[], &[["paper1", "wb", "Bob"]]))
            .unwrap();
        assert_ne!(sum.pred_sig & o.pred_bit(wb), 0);
        assert_eq!(sum.pred_sig & !o.pred_bit(wb), 0);
        let _ = cites;
    }

    #[test]
    fn randomized_update_sequences_match_scratch() {
        // A miniature version of the fuzz oracle: drive a few hundred
        // random deltas over a growing world and check every version
        // against the from-scratch rebuild.
        let mut rng = SplitMix64::seed_from_u64(0x9_e37);
        let mut o = {
            let mut b = Ontology::builder();
            b.edge("n0", "p0", "n1").unwrap();
            b.build()
        };
        for round in 0..60 {
            let mut d = TripleDelta::default();
            // A couple of random inserts over a small id universe so
            // collisions and new nodes both happen.
            for _ in 0..(1 + rng.next_u64() % 3) {
                let s = format!("n{}", rng.next_u64() % 24);
                let p = format!("p{}", rng.next_u64() % 4);
                let t = format!("n{}", rng.next_u64() % 24);
                let triple = [s, p, t];
                let have = {
                    let [s, p, t] = &triple;
                    match (o.node_by_value(s), o.pred_by_name(p), o.node_by_value(t)) {
                        (Some(a), Some(pp), Some(b)) => o.find_edge(a, pp, b).is_some(),
                        _ => false,
                    }
                };
                if !have && !d.inserts.contains(&triple) {
                    d.inserts.push(triple);
                }
            }
            // Sometimes delete a random existing edge.
            if round % 3 == 0 && o.edge_count() > 0 {
                let e = EdgeId::from_usize((rng.next_u64() % o.edge_count() as u64) as usize);
                let ed = o.edge(e);
                d.deletes.push([
                    o.value_str(ed.src).to_string(),
                    o.pred_str(ed.pred).to_string(),
                    o.value_str(ed.dst).to_string(),
                ]);
            }
            let (next, _) = o.apply_delta(&d).expect("valid generated delta");
            assert_matches_scratch(&next);
            o = next;
        }
        assert!(o.edge_count() > 10);
    }
}
