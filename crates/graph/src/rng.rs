//! Self-contained seeded pseudo-randomness for the whole workspace.
//!
//! QuestPro-RS treats **seeded determinism as a design invariant**: every
//! experiment, sampled example-set, and noisy oracle must be exactly
//! reproducible from a `u64` seed, with no dependence on platform,
//! thread count, or external crates. This module provides the few
//! primitives the workspace actually uses — seeding, uniform integer
//! ranges, Bernoulli draws, reservoir choice, and Fisher–Yates shuffle —
//! on top of SplitMix64 (seeding/stream splitting) and xoshiro256++
//! (bulk generation, Blackman & Vigna 2019).
//!
//! The API deliberately mirrors the subset of `rand` the code base grew
//! up with (`StdRng::seed_from_u64`, `Rng::random_range`,
//! `Rng::random_bool`, `IteratorRandom::choose`, `SliceRandom::shuffle`)
//! so call sites stay idiomatic, but the streams are defined *here*:
//! golden values in tests belong to this implementation.

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used both as a standalone generator and to expand a 64-bit seed into
/// the 256-bit xoshiro state (the construction recommended by the
/// xoshiro authors).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal SplitMix64 generator.
///
/// Useful when a caller needs a cheap secondary stream (e.g. hashing a
/// seed into per-shard seeds); for general sampling prefer [`StdRng`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// The workspace's standard seeded generator: xoshiro256++.
///
/// Fast (a handful of ALU ops per draw), passes BigCrush, and — unlike
/// `rand::StdRng` — guaranteed never to change streams underneath us,
/// because it lives in this repository.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Creates a generator whose stream is fully determined by `seed`,
    /// expanding the 64-bit seed through SplitMix64 as recommended by
    /// the xoshiro reference implementation.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }

    /// The generator's full 256-bit state, for persistence: a restored
    /// generator continues the stream exactly where this one stands.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`StdRng::state`] snapshot.
    ///
    /// The all-zero state is the one fixed point of xoshiro256++ (the
    /// stream would be constant zero); it is mapped to the seed-0
    /// expansion instead, which also means hand-crafted snapshots can
    /// never wedge the generator.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Self { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's
/// widening-multiply rejection method). `bound` must be nonzero.
#[inline]
fn next_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = u128::from(rng.next_u64()) * u128::from(bound);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A range usable with [`Rng::random_range`].
///
/// Implemented for `Range` and `RangeInclusive` over the integer types
/// the workspace samples (`usize`, `u32`, `u64`, `i32`, `i64`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform value from the range. Panics when empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = next_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every u64 pattern is valid.
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                let off = next_below(rng, span as u64);
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u32, u64, i32, i64);

/// Source of 64-bit randomness plus the derived sampling helpers used
/// across the workspace.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from an integer range, e.g. `rng.random_range(0..n)`
    /// or `rng.random_range(1..=k)`. Panics on empty ranges.
    #[inline]
    fn random_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform double in `[0, 1)` (53 high bits of one draw).
    #[inline]
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Uniform choice from an iterator of unknown length (reservoir
/// sampling: element `i` survives with probability `1/(i+1)`).
pub trait IteratorRandom: Iterator + Sized {
    /// Returns a uniformly chosen element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(self, rng: &mut R) -> Option<Self::Item> {
        let mut chosen = None;
        for (i, item) in self.enumerate() {
            if i == 0 || next_below(rng, i as u64 + 1) == 0 {
                chosen = Some(item);
            }
        }
        chosen
    }
}

impl<I: Iterator> IteratorRandom for I {}

/// In-place slice randomization.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// Fisher–Yates shuffle, deterministic given the generator state.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    /// Uniformly chosen element reference, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = next_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[next_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn state_snapshot_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u64();
        }
        let snap = a.state();
        let mut b = StdRng::from_state(snap);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // The all-zero fixed point is rejected, not propagated.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ from the all-splitmix64(0) expanded state; first
        // outputs checked against the reference C implementation.
        let mut r = StdRng::seed_from_u64(0);
        // State after SplitMix64 expansion of seed 0:
        assert_eq!(
            r.s,
            [
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC
            ]
        );
        let first = r.next_u64();
        // result = rotl(s0 + s3, 23) + s0
        assert_eq!(
            first,
            (0xE220_A839_7B1D_CDAFu64.wrapping_add(0xF88B_B8A8_724C_81EC))
                .rotate_left(23)
                .wrapping_add(0xE220_A839_7B1D_CDAF)
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = r.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = r.random_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let z = r.random_range(0..1usize);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn bool_probability_endpoints() {
        let mut r = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn choose_and_shuffle_cover_all_elements() {
        let mut r = StdRng::seed_from_u64(9);
        let items = [10, 20, 30, 40];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..400 {
            seen.insert(*items.iter().choose(&mut r).unwrap());
        }
        assert_eq!(seen.len(), 4);
        assert!(std::iter::empty::<u8>().choose(&mut r).is_none());

        let mut v: Vec<usize> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "20-element shuffle left slice untouched");
    }

    #[test]
    fn generic_bounds_accept_both_generators() {
        fn draw<R: Rng>(rng: &mut R) -> usize {
            rng.random_range(0..10usize)
        }
        let mut a = StdRng::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(1);
        let _ = draw(&mut a);
        let _ = draw(&mut b);
        // And through a &mut reference, as call sites often do.
        let _ = draw(&mut &mut a);
    }
}
