//! Streaming scale generators: 10⁶–10⁷ triples without the text form.
//!
//! The seeded world builders in [`erdos`](crate::erdos) /
//! [`sp2b`](crate::sp2b) / [`bsbm`](crate::bsbm) /
//! [`movies`](crate::movies) construct an interned `Ontology` in memory,
//! which is fine at workload scale (10³–10⁴ triples) but is exactly the
//! per-load rebuild the persistent store exists to supersede. This
//! module generates the same entity/relationship *shapes* as an
//! **iterator of items**, so a million-triple ontology can be streamed
//! straight into a `questpro-store` builder (or a text file) while the
//! generator itself holds only a few counters — no triple text, no
//! ontology, no O(n) state.
//!
//! Determinism contract: every item is derived from `(seed, index)`
//! through SplitMix64, so the stream is reproducible and independent of
//! how far it is consumed. Every 64th record of each world wires in the
//! world's **anchor entity** (e.g. `author0`), giving benchmark queries
//! a guaranteed hub with scale-proportional degree.

use questpro_graph::rng::{Rng, SplitMix64};

/// Which synthetic world shape to stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleWorld {
    /// Papers and co-authors (`wb` edges) — the running-example shape.
    Erdos,
    /// DBLP-ish publications: creators, venues, years, citations.
    Sp2b,
    /// E-commerce: products, producers, features, offers, reviews.
    Bsbm,
    /// Films: directors, actors, genres, countries.
    Movies,
}

impl ScaleWorld {
    /// All worlds, for CLI enumeration.
    pub const ALL: [ScaleWorld; 4] = [
        ScaleWorld::Erdos,
        ScaleWorld::Sp2b,
        ScaleWorld::Bsbm,
        ScaleWorld::Movies,
    ];

    /// The CLI name of the world.
    pub fn name(self) -> &'static str {
        match self {
            ScaleWorld::Erdos => "erdos",
            ScaleWorld::Sp2b => "sp2b",
            ScaleWorld::Bsbm => "bsbm",
            ScaleWorld::Movies => "movies",
        }
    }

    /// Parses a CLI world name.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|w| w.name() == name)
    }
}

/// Configuration for a [`scale_stream`].
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// The world shape to generate.
    pub world: ScaleWorld,
    /// Target number of edges (triples); the stream stops at the first
    /// record boundary at or past this count.
    pub triples: u64,
    /// Seed for the deterministic item streams.
    pub seed: u64,
}

/// One streamed item: an edge or a node-type declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleItem {
    /// An edge `subject -pred-> object`.
    Triple {
        /// Subject label.
        s: String,
        /// Predicate label.
        p: String,
        /// Object label.
        o: String,
    },
    /// A node-type declaration (`@type` line in the text format).
    Type {
        /// Node label.
        node: String,
        /// Type label.
        ty: String,
    },
}

/// A fixed entity pool: `count` nodes named `{prefix}{i}`, all typed.
struct Pool {
    prefix: &'static str,
    count: u64,
    ty: &'static str,
}

/// Draws a low-biased id in `0..n` (min of two uniforms), so entity
/// degree is skewed like real data sets rather than flat.
fn skewed(rng: &mut SplitMix64, n: u64) -> u64 {
    let a = rng.next_u64() % n;
    let b = rng.next_u64() % n;
    a.min(b)
}

/// Streams the items of a scale world; see the module docs.
pub fn scale_stream(cfg: &ScaleConfig) -> ScaleStream {
    let target = cfg.triples.max(1);
    let pools = match cfg.world {
        ScaleWorld::Erdos => vec![Pool {
            prefix: "author",
            count: (target / 4).max(8),
            ty: "Author",
        }],
        ScaleWorld::Sp2b => vec![
            Pool {
                prefix: "author",
                count: (target / 5).max(8),
                ty: "Author",
            },
            Pool {
                prefix: "journal",
                count: (target / 50).max(4),
                ty: "Journal",
            },
        ],
        ScaleWorld::Bsbm => vec![
            Pool {
                prefix: "producer",
                count: (target / 100).max(4),
                ty: "Producer",
            },
            Pool {
                prefix: "feature",
                count: (target / 20).max(8),
                ty: "ProductFeature",
            },
            Pool {
                prefix: "vendor",
                count: (target / 200).max(4),
                ty: "Vendor",
            },
            Pool {
                prefix: "reviewer",
                count: (target / 10).max(8),
                ty: "Reviewer",
            },
        ],
        ScaleWorld::Movies => vec![
            Pool {
                prefix: "actor",
                count: (target / 5).max(8),
                ty: "Actor",
            },
            Pool {
                prefix: "director",
                count: (target / 50).max(4),
                ty: "Director",
            },
            Pool {
                prefix: "genre",
                count: 32,
                ty: "Genre",
            },
            Pool {
                prefix: "country",
                count: 64,
                ty: "Country",
            },
        ],
    };
    ScaleStream {
        world: cfg.world,
        seed: cfg.seed,
        target,
        pools,
        pool_i: 0,
        entity_i: 0,
        record_i: 0,
        emitted_edges: 0,
        buf: std::collections::VecDeque::new(),
    }
}

/// Iterator over [`ScaleItem`]s; holds O(1) state plus one record's
/// buffered items.
#[derive(Debug)]
pub struct ScaleStream {
    world: ScaleWorld,
    seed: u64,
    target: u64,
    pools: Vec<Pool>,
    pool_i: usize,
    entity_i: u64,
    record_i: u64,
    emitted_edges: u64,
    buf: std::collections::VecDeque<ScaleItem>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Pool({}{{0..{}}}: {})", self.prefix, self.count, self.ty)
    }
}

impl ScaleStream {
    /// Emits one record's items into the buffer, advancing the edge
    /// count. A "record" is a paper / product-offer-review cycle / film.
    fn emit_record(&mut self) {
        let i = self.record_i;
        self.record_i += 1;
        // Per-record stream: items depend only on (seed, world, index).
        let world_salt = match self.world {
            ScaleWorld::Erdos => 1u64,
            ScaleWorld::Sp2b => 2,
            ScaleWorld::Bsbm => 3,
            ScaleWorld::Movies => 4,
        };
        let mut rng = SplitMix64::seed_from_u64(self.seed ^ (world_salt << 56) ^ i);
        let anchored = i.is_multiple_of(64);
        let edge = |buf: &mut std::collections::VecDeque<ScaleItem>,
                    count: &mut u64,
                    s: String,
                    p: &str,
                    o: String| {
            buf.push_back(ScaleItem::Triple {
                s,
                p: p.to_string(),
                o,
            });
            *count += 1;
        };
        let buf = &mut self.buf;
        let count = &mut self.emitted_edges;
        match self.world {
            ScaleWorld::Erdos => {
                let authors = self.pools[0].count;
                let paper = format!("paper{i}");
                buf.push_back(ScaleItem::Type {
                    node: paper.clone(),
                    ty: "Paper".into(),
                });
                let k = 2 + (rng.next_u64() & 1);
                let mut picked = [u64::MAX; 3];
                for slot in 0..k as usize {
                    let mut a = if slot == 0 && anchored {
                        0
                    } else {
                        skewed(&mut rng, authors)
                    };
                    while picked[..slot].contains(&a) {
                        a = (a + 1) % authors;
                    }
                    picked[slot] = a;
                    edge(buf, count, paper.clone(), "wb", format!("author{a}"));
                }
            }
            ScaleWorld::Sp2b => {
                let authors = self.pools[0].count;
                let journals = self.pools[1].count;
                let paper = format!("paper{i}");
                buf.push_back(ScaleItem::Type {
                    node: paper.clone(),
                    ty: if rng.next_u64() & 1 == 0 {
                        "Article".into()
                    } else {
                        "Inproceedings".into()
                    },
                });
                let k = 1 + rng.next_u64() % 3;
                let mut picked = [u64::MAX; 3];
                for slot in 0..k as usize {
                    let mut a = if slot == 0 && anchored {
                        0
                    } else {
                        skewed(&mut rng, authors)
                    };
                    while picked[..slot].contains(&a) {
                        a = (a + 1) % authors;
                    }
                    picked[slot] = a;
                    edge(buf, count, paper.clone(), "creator", format!("author{a}"));
                }
                let j = skewed(&mut rng, journals);
                edge(buf, count, paper.clone(), "journal", format!("journal{j}"));
                let year = 1950 + rng.next_u64() % 70;
                edge(buf, count, paper.clone(), "year", format!("y{year}"));
                if i > 0 {
                    // Distinct targets, like co-authors: the text form
                    // must stay free of duplicate triples.
                    let k = (rng.next_u64() % 3).min(i);
                    let mut cited = [u64::MAX; 2];
                    for slot in 0..k as usize {
                        let mut t = rng.next_u64() % i;
                        while cited[..slot].contains(&t) {
                            t = (t + 1) % i;
                        }
                        cited[slot] = t;
                        edge(buf, count, paper.clone(), "cites", format!("paper{t}"));
                    }
                }
            }
            ScaleWorld::Bsbm => {
                let producers = self.pools[0].count;
                let features = self.pools[1].count;
                let vendors = self.pools[2].count;
                let reviewers = self.pools[3].count;
                let product = format!("product{i}");
                buf.push_back(ScaleItem::Type {
                    node: product.clone(),
                    ty: "Product".into(),
                });
                let pr = if anchored {
                    0
                } else {
                    skewed(&mut rng, producers)
                };
                edge(
                    buf,
                    count,
                    product.clone(),
                    "producer",
                    format!("producer{pr}"),
                );
                let f1 = skewed(&mut rng, features);
                let f2 = (f1 + 1 + rng.next_u64() % (features - 1).max(1)) % features;
                edge(
                    buf,
                    count,
                    product.clone(),
                    "feature",
                    format!("feature{f1}"),
                );
                edge(
                    buf,
                    count,
                    product.clone(),
                    "feature",
                    format!("feature{f2}"),
                );
                let offer = format!("offer{i}");
                buf.push_back(ScaleItem::Type {
                    node: offer.clone(),
                    ty: "Offer".into(),
                });
                edge(buf, count, offer.clone(), "offer_product", product.clone());
                let v = skewed(&mut rng, vendors);
                edge(buf, count, offer, "vendor", format!("vendor{v}"));
                let review = format!("review{i}");
                buf.push_back(ScaleItem::Type {
                    node: review.clone(),
                    ty: "Review".into(),
                });
                edge(buf, count, review.clone(), "review_product", product);
                let r = skewed(&mut rng, reviewers);
                edge(
                    buf,
                    count,
                    review.clone(),
                    "reviewer",
                    format!("reviewer{r}"),
                );
                let rating = 1 + rng.next_u64() % 10;
                edge(buf, count, review, "rating", format!("rating{rating}"));
            }
            ScaleWorld::Movies => {
                let actors = self.pools[0].count;
                let directors = self.pools[1].count;
                let genres = self.pools[2].count;
                let countries = self.pools[3].count;
                let film = format!("film{i}");
                buf.push_back(ScaleItem::Type {
                    node: film.clone(),
                    ty: "Film".into(),
                });
                let d = skewed(&mut rng, directors);
                edge(buf, count, film.clone(), "director", format!("director{d}"));
                let k = 2 + rng.next_u64() % 2;
                let mut picked = [u64::MAX; 3];
                for slot in 0..k as usize {
                    let mut a = if slot == 0 && anchored {
                        0
                    } else {
                        skewed(&mut rng, actors)
                    };
                    while picked[..slot].contains(&a) {
                        a = (a + 1) % actors;
                    }
                    picked[slot] = a;
                    edge(buf, count, film.clone(), "starring", format!("actor{a}"));
                }
                let g = skewed(&mut rng, genres);
                edge(buf, count, film.clone(), "genre", format!("genre{g}"));
                let c = skewed(&mut rng, countries);
                edge(buf, count, film, "country", format!("country{c}"));
            }
        }
    }
}

impl Iterator for ScaleStream {
    type Item = ScaleItem;

    fn next(&mut self) -> Option<ScaleItem> {
        loop {
            if let Some(item) = self.buf.pop_front() {
                return Some(item);
            }
            // Phase 1: pool entity type declarations.
            if let Some(pool) = self.pools.get(self.pool_i) {
                if self.entity_i < pool.count {
                    let item = ScaleItem::Type {
                        node: format!("{}{}", pool.prefix, self.entity_i),
                        ty: pool.ty.to_string(),
                    };
                    self.entity_i += 1;
                    return Some(item);
                }
                self.pool_i += 1;
                self.entity_i = 0;
                continue;
            }
            // Phase 2: records until the edge budget is met.
            if self.emitted_edges >= self.target {
                return None;
            }
            self.emit_record();
        }
    }
}

/// The anchor entity of a world (see the module docs): the hub the
/// benchmark queries pivot on.
pub fn anchor_entity(world: ScaleWorld) -> &'static str {
    match world {
        ScaleWorld::Erdos => "author0",
        ScaleWorld::Sp2b => "author0",
        ScaleWorld::Bsbm => "producer0",
        ScaleWorld::Movies => "actor0",
    }
}

/// The predicate pointing at a world's anchor (for benchmark queries).
pub fn anchor_pred(world: ScaleWorld) -> &'static str {
    match world {
        ScaleWorld::Erdos => "wb",
        ScaleWorld::Sp2b => "creator",
        ScaleWorld::Bsbm => "producer",
        ScaleWorld::Movies => "starring",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(world: ScaleWorld, triples: u64) -> ScaleConfig {
        ScaleConfig {
            world,
            triples,
            seed: 42,
        }
    }

    #[test]
    fn streams_are_deterministic() {
        for world in ScaleWorld::ALL {
            let a: Vec<ScaleItem> = scale_stream(&cfg(world, 500)).collect();
            let b: Vec<ScaleItem> = scale_stream(&cfg(world, 500)).collect();
            assert_eq!(a, b, "{world:?}");
            let c: Vec<ScaleItem> = scale_stream(&ScaleConfig {
                world,
                triples: 500,
                seed: 43,
            })
            .collect();
            assert_ne!(a, c, "{world:?}: different seeds must differ");
        }
    }

    #[test]
    fn edge_budget_is_met_at_a_record_boundary() {
        for world in ScaleWorld::ALL {
            let edges = scale_stream(&cfg(world, 1000))
                .filter(|i| matches!(i, ScaleItem::Triple { .. }))
                .count() as u64;
            assert!(edges >= 1000, "{world:?}: {edges}");
            // Overshoot is bounded by one record (~10 edges max).
            assert!(edges < 1000 + 16, "{world:?}: {edges}");
        }
    }

    #[test]
    fn anchors_appear_with_hub_degree() {
        for world in ScaleWorld::ALL {
            let anchor = anchor_entity(world);
            let pred = anchor_pred(world);
            let hits = scale_stream(&cfg(world, 2000))
                .filter(|i| matches!(i, ScaleItem::Triple { p, o, .. } if p == pred && o == anchor))
                .count();
            // Anchored every 64 records; the skew adds organic hits too.
            assert!(hits >= 3, "{world:?}: anchor {anchor} hit {hits} times");
        }
    }

    #[test]
    fn typed_pools_precede_records() {
        let mut saw_triple = false;
        let mut pool_types = 0;
        for item in scale_stream(&cfg(ScaleWorld::Erdos, 200)) {
            match item {
                ScaleItem::Type { ty, .. } if ty == "Author" => {
                    assert!(!saw_triple, "pool types must stream first");
                    pool_types += 1;
                }
                ScaleItem::Triple { .. } => saw_triple = true,
                _ => {}
            }
        }
        assert_eq!(pool_types, 50); // 200 / 4
    }

    #[test]
    fn streams_never_repeat_a_triple() {
        // The text form rejects duplicate edges, so `generate --scale`
        // output is only parseable if the stream is duplicate-free.
        for world in ScaleWorld::ALL {
            let mut seen = std::collections::HashSet::new();
            for item in scale_stream(&cfg(world, 2000)) {
                if let ScaleItem::Triple { s, p, o } = item {
                    assert!(
                        seen.insert((s.clone(), p.clone(), o.clone())),
                        "{world:?}: duplicate triple {s} {p} {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn coauthors_within_a_paper_are_distinct() {
        use std::collections::HashMap;
        let mut per_paper: HashMap<String, Vec<String>> = HashMap::new();
        for item in scale_stream(&cfg(ScaleWorld::Erdos, 3000)) {
            if let ScaleItem::Triple { s, o, .. } = item {
                per_paper.entry(s).or_default().push(o);
            }
        }
        for (paper, authors) in &per_paper {
            let mut uniq = authors.clone();
            uniq.sort();
            uniq.dedup();
            assert_eq!(uniq.len(), authors.len(), "{paper} repeats an author");
        }
    }
}
