//! DBpedia-movies-like synthetic ontology for the Table I study queries.
//!
//! A film world with named anchor entities wired in deterministically —
//! `Quentin_Tarantino` and his filmography (including `Pulp_Fiction`
//! with `Uma_Thurman` and `Samuel_L_Jackson`), `Steven_Spielberg`,
//! `Kevin_Bacon`, and films produced in `England` — so every Table I
//! query has at least two answers regardless of the random bulk. The
//! rest of the world is seeded random films, actors, directors, genres,
//! and countries with DBpedia-like predicates: `starring`, `director`,
//! `genre`, `country`, `release_year`.

use questpro_graph::rng::{Rng, StdRng};

use questpro_graph::{Ontology, OntologyBuilder};

/// Scale parameters of the movie-world generator.
#[derive(Debug, Clone, Copy)]
pub struct MoviesConfig {
    /// Number of bulk films (anchors are added on top).
    pub films: usize,
    /// Number of bulk actors.
    pub actors: usize,
    /// Number of bulk directors.
    pub directors: usize,
    /// Number of genres.
    pub genres: usize,
    /// Number of countries (England is always present).
    pub countries: usize,
    /// Actors per film (upper bound; at least 1).
    pub max_cast: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoviesConfig {
    fn default() -> Self {
        Self {
            films: 180,
            actors: 140,
            directors: 30,
            genres: 8,
            countries: 6,
            max_cast: 5,
            seed: 0x30c1e5,
        }
    }
}

/// Generates the movie-world ontology.
pub fn generate_movies(cfg: &MoviesConfig) -> Ontology {
    assert!(cfg.films >= 10 && cfg.actors >= 10, "scale too small");
    let mut b = Ontology::builder();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- deterministic anchors ------------------------------------
    for a in [
        "Uma_Thurman",
        "Samuel_L_Jackson",
        "John_Travolta",
        "Kevin_Bacon",
        "Tom_Hanks",
        "Kate_Winslet",
    ] {
        b.typed_node(a, "Actor").expect("anchor actor");
    }
    for d in [
        "Quentin_Tarantino",
        "Steven_Spielberg",
        "Ridley_Scott",
        "Mel_Brooks",
    ] {
        b.typed_node(d, "Director").expect("anchor director");
    }
    b.typed_node("England", "Country").expect("anchor country");
    b.typed_node("USA", "Country").expect("anchor country");
    for g in ["Crime", "Drama", "Comedy"] {
        b.typed_node(g, "Genre").expect("anchor genre");
    }

    let anchor_films: &[(&str, &str, &[&str], &str, &str)] = &[
        (
            "Pulp_Fiction",
            "Quentin_Tarantino",
            &["Uma_Thurman", "Samuel_L_Jackson", "John_Travolta"],
            "Crime",
            "USA",
        ),
        (
            "Kill_Bill",
            "Quentin_Tarantino",
            &["Uma_Thurman"],
            "Crime",
            "USA",
        ),
        (
            "Jackie_Brown",
            "Quentin_Tarantino",
            &["Samuel_L_Jackson"],
            "Crime",
            "USA",
        ),
        (
            "Saving_Private_Ryan",
            "Steven_Spielberg",
            &["Tom_Hanks"],
            "Drama",
            "USA",
        ),
        (
            "The_Terminal",
            "Steven_Spielberg",
            &["Tom_Hanks", "Kate_Winslet"],
            "Comedy",
            "USA",
        ),
        (
            "Apollo_13",
            "Ridley_Scott",
            &["Tom_Hanks", "Kevin_Bacon"],
            "Drama",
            "USA",
        ),
        (
            "Footloose",
            "Ridley_Scott",
            &["Kevin_Bacon"],
            "Drama",
            "England",
        ),
        (
            "Flatliners",
            "Steven_Spielberg",
            &["Kevin_Bacon", "Kate_Winslet"],
            "Drama",
            "England",
        ),
        (
            "Titanic_Like",
            "Ridley_Scott",
            &["Kate_Winslet"],
            "Drama",
            "England",
        ),
    ];
    for &(film, director, cast, genre, country) in anchor_films {
        add_film(&mut b, film, director, cast, Some(genre), country);
    }
    // Directors who act in their own films (Table I query 7): Tarantino
    // famously appears in his movies, and Mel Brooks stars in his own.
    b.typed_node("John_Candy", "Actor").expect("anchor actor");
    let _ = b.edge_idempotent("Pulp_Fiction", "starring", "Quentin_Tarantino");
    let _ = b.edge_idempotent("Kill_Bill", "starring", "Quentin_Tarantino");
    add_film(
        &mut b,
        "Spaceballs",
        "Mel_Brooks",
        &["Mel_Brooks", "John_Candy"],
        Some("Comedy"),
        "USA",
    );

    // --- random bulk ------------------------------------------------
    for g in 0..cfg.genres {
        b.typed_node(&format!("genre_{g}"), "Genre").expect("genre");
    }
    for c in 0..cfg.countries {
        b.typed_node(&format!("country_{c}"), "Country")
            .expect("country");
    }
    for a in 0..cfg.actors {
        b.typed_node(&format!("actor_{a}"), "Actor").expect("actor");
    }
    for d in 0..cfg.directors {
        b.typed_node(&format!("director_{d}"), "Director")
            .expect("director");
    }
    for y in 1970..=2010 {
        b.typed_node(&format!("year_{y}"), "Year").expect("year");
    }
    for f in 0..cfg.films {
        let name = format!("film_{f}");
        let director = format!("director_{}", rng.random_range(0..cfg.directors));
        // ~15% of bulk films have no genre annotation (DBpedia-style
        // incompleteness) — the data that motivates OPTIONAL patterns.
        let genre = if rng.random_f64() < 0.85 {
            Some(format!("genre_{}", rng.random_range(0..cfg.genres)))
        } else {
            None
        };
        let country = if rng.random_f64() < 0.12 {
            "England".to_string()
        } else {
            format!("country_{}", rng.random_range(0..cfg.countries))
        };
        let ncast = rng.random_range(1..=cfg.max_cast.max(1));
        let mut cast: Vec<String> = Vec::with_capacity(ncast);
        for _ in 0..ncast {
            // Occasionally cast an anchor actor so anchor neighborhoods
            // are rich (Bacon-number chains, co-star queries).
            if rng.random_f64() < 0.08 {
                let anchors = ["Kevin_Bacon", "Uma_Thurman", "Tom_Hanks"];
                cast.push(anchors[rng.random_range(0..anchors.len())].to_string());
            } else {
                cast.push(format!("actor_{}", rng.random_range(0..cfg.actors)));
            }
        }
        let cast_refs: Vec<&str> = cast.iter().map(String::as_str).collect();
        add_film(
            &mut b,
            &name,
            &director,
            &cast_refs,
            genre.as_deref(),
            &country,
        );
        let year = 1970 + rng.random_range(0..=40);
        b.edge(&name, "release_year", &format!("year_{year}"))
            .expect("one year per film");
    }
    b.build()
}

fn add_film(
    b: &mut OntologyBuilder,
    film: &str,
    director: &str,
    cast: &[&str],
    genre: Option<&str>,
    country: &str,
) {
    b.typed_node(film, "Film").expect("film node");
    b.edge(film, "director", director).expect("one director");
    for actor in cast {
        let _ = b.edge_idempotent(film, "starring", actor);
    }
    if let Some(genre) = genre {
        let _ = b.edge_idempotent(film, "genre", genre);
    }
    let _ = b.edge_idempotent(film, "country", country);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_present() {
        let o = generate_movies(&MoviesConfig::default());
        for v in [
            "Pulp_Fiction",
            "Quentin_Tarantino",
            "Uma_Thurman",
            "Kevin_Bacon",
            "England",
        ] {
            assert!(o.node_by_value(v).is_some(), "missing anchor {v}");
        }
        let tarantino = o.node_by_value("Quentin_Tarantino").unwrap();
        // Three anchor films are directed by Tarantino; he also stars in
        // two of them (Table I query 7 anchor).
        let director = o.pred_by_name("director").unwrap();
        let directed = o
            .in_edges(tarantino)
            .iter()
            .filter(|&&e| o.edge(e).pred == director)
            .count();
        assert_eq!(directed, 3);
        assert_eq!(o.in_edges(tarantino).len(), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_movies(&MoviesConfig::default());
        let b = generate_movies(&MoviesConfig::default());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn films_have_directors_and_cast() {
        let o = generate_movies(&MoviesConfig::default());
        let director = o.pred_by_name("director").unwrap();
        let starring = o.pred_by_name("starring").unwrap();
        for n in o.node_ids() {
            let Some(t) = o.node_type(n) else { continue };
            if o.type_str(t) == "Film" {
                let preds: Vec<_> = o.out_edges(n).iter().map(|&e| o.edge(e).pred).collect();
                assert!(preds.contains(&director), "{}", o.value_str(n));
                assert!(preds.contains(&starring), "{}", o.value_str(n));
            }
        }
        assert!(o.validate().is_ok());
    }

    #[test]
    fn england_has_multiple_films() {
        let o = generate_movies(&MoviesConfig::default());
        let england = o.node_by_value("England").unwrap();
        assert!(o.in_edges(england).len() >= 3);
    }
}
