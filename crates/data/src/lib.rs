//! Synthetic benchmark data for QuestPro-RS.
//!
//! The paper evaluates on fragments of three RDF data sets — SP2B (a
//! DBLP-style publications benchmark), BSBM (the Berlin SPARQL
//! e-commerce benchmark), and DBpedia (movies) — sized 42 MB to 647 MB.
//! As the paper itself notes, the fragment size only matters "to allow
//! for enough variety for sampled output examples and explanations";
//! this crate therefore ships **seeded synthetic generators** that
//! reproduce the entity/relationship shapes of those data sets at
//! configurable scale, plus the workload query catalogs the experiments
//! run against:
//!
//! * [`erdos`] — the paper's running example (Figure 1): the
//!   publications world with co-authorship chains to Erdős;
//! * [`sp2b`] — authors, articles/inproceedings, venues, years,
//!   citations (the SP2B shape);
//! * [`bsbm`] — products, producers, types, features, vendors, offers,
//!   reviews, reviewers, countries (the BSBM shape);
//! * [`movies`] — films, actors, directors, genres, countries with
//!   named anchor entities (Tarantino, Pulp Fiction, Kevin Bacon …) for
//!   the Table I study queries;
//! * [`scale`] — streaming (iterator-based) 10⁶–10⁷-triple variants of
//!   the same shapes, emitted item by item for the persistent store's
//!   dictionary encoder without ever materializing triple text;
//! * [`workloads`] — the query catalogs: SP2B analogs (q2, q3a, q3b,
//!   q6, q8a, q8b, q11, q12a), BSBM analogs (q1v0–q10v0 minus the
//!   single-result q4v0/q7v0/q9v0, as in the paper), and the ten Table I
//!   movie queries.
//!
//! All generators are deterministic given their seed.

pub mod bsbm;
pub mod erdos;
pub mod movies;
pub mod scale;
pub mod sp2b;
pub mod workloads;

pub use bsbm::{generate_bsbm, BsbmConfig};
pub use erdos::{erdos_example_set, erdos_ontology};
pub use movies::{generate_movies, MoviesConfig};
pub use scale::{anchor_entity, anchor_pred, scale_stream, ScaleConfig, ScaleItem, ScaleWorld};
pub use sp2b::{generate_sp2b, Sp2bConfig};
pub use workloads::{
    bsbm_workload, movie_workload, sp2b_workload, union_workload, OntologyKind, WorkloadQuery,
};
