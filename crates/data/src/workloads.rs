//! Workload query catalogs for the Section VI experiments.
//!
//! The paper evaluates on SP2B queries 2, 3a, 3b, 6, 8a, 8b, 11, 12a and
//! BSBM queries 1v0–10v0 (excluding 4v0, 7v0, 9v0, which return a single
//! result and cannot provide the ≥2 explanations inference needs), plus
//! the ten DBpedia movie queries of Table I. The originals use SPARQL
//! features outside the paper's fragment (OPTIONAL, arithmetic FILTERs);
//! the paper adapted them to basic graph patterns with joins, unions and
//! disequalities, and so do these analogs: each keeps its original's
//! structural envelope (1–12 edges, 1–12 variables, multiple joins) over
//! the synthetic vocabularies of [`crate::sp2b`], [`crate::bsbm`] and
//! [`crate::movies`].

use questpro_query::{QueryBuilder, SimpleQuery, UnionQuery};

/// Which synthetic ontology a workload query runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OntologyKind {
    /// The SP2B-like publications world.
    Sp2b,
    /// The BSBM-like e-commerce world.
    Bsbm,
    /// The DBpedia-movies-like world.
    Movies,
}

/// A named target query of the experimental workload.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Paper-style identifier (`q8a`, `q2v0`, `m6`, …).
    pub id: &'static str,
    /// The ontology this query targets.
    pub kind: OntologyKind,
    /// Human-readable intent (Table I-style description).
    pub description: &'static str,
    /// The target query itself.
    pub query: UnionQuery,
}

fn single(q: SimpleQuery) -> UnionQuery {
    UnionQuery::single(q)
}

// ---------------------------------------------------------------------
// SP2B analogs
// ---------------------------------------------------------------------

/// The SP2B workload: analogs of queries 2, 3a, 3b, 6, 8a, 8b, 11, 12a.
pub fn sp2b_workload() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery {
            id: "q2",
            kind: OntologyKind::Sp2b,
            description: "articles with full metadata citing a described article",
            query: single(sp2b_q2()),
        },
        WorkloadQuery {
            id: "q3a",
            kind: OntologyKind::Sp2b,
            description: "articles published in 2005",
            query: single(sp2b_q3("year", "year_2005")),
        },
        WorkloadQuery {
            id: "q3b",
            kind: OntologyKind::Sp2b,
            description: "articles in journal_0",
            query: single(sp2b_q3("journal", "journal_0")),
        },
        WorkloadQuery {
            id: "q6",
            kind: OntologyKind::Sp2b,
            description: "papers whose author also published in 2000",
            query: single(sp2b_q6()),
        },
        WorkloadQuery {
            id: "q8a",
            kind: OntologyKind::Sp2b,
            description: "co-authors of Paul Erdos",
            query: single(sp2b_q8a()),
        },
        WorkloadQuery {
            id: "q8b",
            kind: OntologyKind::Sp2b,
            description: "authors with Erdos number 2",
            query: single(sp2b_q8b()),
        },
        WorkloadQuery {
            id: "q11",
            kind: OntologyKind::Sp2b,
            description: "all dated publications",
            query: single(sp2b_q11()),
        },
        WorkloadQuery {
            id: "q12a",
            kind: OntologyKind::Sp2b,
            description: "co-authors of Erdos on cited, dated papers",
            query: single(sp2b_q12a()),
        },
    ]
}

fn sp2b_q2() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let a = b.var("article");
    let au1 = b.var("author");
    let j = b.var("journal");
    let y = b.var("year");
    let p2 = b.var("cited");
    let au2 = b.var("cited_author");
    let j2 = b.var("cited_journal");
    let y2 = b.var("cited_year");
    b.edge(a, "creator", au1)
        .edge(a, "journal", j)
        .edge(a, "year", y)
        .edge(a, "cites", p2)
        .edge(p2, "creator", au2)
        .edge(p2, "journal", j2)
        .edge(p2, "year", y2)
        .project(a);
    b.build().expect("q2 is well-formed")
}

fn sp2b_q3(pred: &str, constant: &str) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let a = b.var("article");
    let au = b.var("author");
    let c = b.constant(constant);
    b.edge(a, pred, c).edge(a, "creator", au).project(a);
    b.build().expect("q3 is well-formed")
}

fn sp2b_q6() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p = b.var("paper");
    let au = b.var("author");
    let p2 = b.var("other_paper");
    let y2000 = b.constant("year_2000");
    let y = b.var("year");
    b.edge(p, "year", y2000)
        .edge(p, "creator", au)
        .edge(p2, "creator", au)
        .edge(p2, "year", y)
        .project(p2);
    b.build().expect("q6 is well-formed")
}

fn sp2b_q8a() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p = b.var("paper");
    let x = b.var("coauthor");
    let erdos = b.constant("Paul_Erdos");
    b.edge(p, "creator", erdos).edge(p, "creator", x).project(x);
    b.build().expect("q8a is well-formed")
}

fn sp2b_q8b() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p1 = b.var("paper1");
    let p2 = b.var("paper2");
    let m = b.var("middle");
    let x = b.var("author");
    let erdos = b.constant("Paul_Erdos");
    b.edge(p1, "creator", erdos)
        .edge(p1, "creator", m)
        .edge(p2, "creator", m)
        .edge(p2, "creator", x)
        .project(x);
    b.build().expect("q8b is well-formed")
}

fn sp2b_q11() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p = b.var("paper");
    let y = b.var("year");
    b.edge(p, "year", y).project(p);
    b.build().expect("q11 is well-formed")
}

fn sp2b_q12a() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p = b.var("paper");
    let x = b.var("coauthor");
    let y = b.var("year");
    let citing = b.var("citing");
    let z = b.var("citing_author");
    let erdos = b.constant("Paul_Erdos");
    b.edge(p, "creator", erdos)
        .edge(p, "creator", x)
        .edge(p, "year", y)
        .edge(citing, "cites", p)
        .edge(citing, "creator", z)
        .project(x);
    b.build().expect("q12a is well-formed")
}

// ---------------------------------------------------------------------
// BSBM analogs
// ---------------------------------------------------------------------

/// The BSBM workload: analogs of 1v0, 2v0, 3v0, 5v0, 6v0, 8v0, 10v0
/// (the paper excludes 4v0, 7v0 and 9v0 as single-result queries).
pub fn bsbm_workload() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery {
            id: "q1v0",
            kind: OntologyKind::Bsbm,
            description: "products of a given type with some feature",
            query: single(bsbm_q1v0()),
        },
        WorkloadQuery {
            id: "q2v0",
            kind: OntologyKind::Bsbm,
            description: "fully described products with offers and reviews",
            query: single(bsbm_q2v0()),
        },
        WorkloadQuery {
            id: "q3v0",
            kind: OntologyKind::Bsbm,
            description: "typed products from a given country's producers",
            query: single(bsbm_q3v0()),
        },
        WorkloadQuery {
            id: "q5v0",
            kind: OntologyKind::Bsbm,
            description: "products sharing a feature with product_0",
            query: single(bsbm_q5v0()),
        },
        WorkloadQuery {
            id: "q6v0",
            kind: OntologyKind::Bsbm,
            description: "products made in country_1",
            query: single(bsbm_q6v0()),
        },
        WorkloadQuery {
            id: "q8v0",
            kind: OntologyKind::Bsbm,
            description: "top-rated reviews of producer_0's products",
            query: single(bsbm_q8v0()),
        },
        WorkloadQuery {
            id: "q10v0",
            kind: OntologyKind::Bsbm,
            description: "offers of typed products from country_0 vendors",
            query: single(bsbm_q10v0()),
        },
    ]
}

fn bsbm_q1v0() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p = b.var("product");
    let t = b.constant("ptype_0");
    let f = b.var("feature");
    b.edge(p, "ptype", t).edge(p, "feature", f).project(p);
    b.build().expect("q1v0 is well-formed")
}

fn bsbm_q2v0() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p = b.var("product");
    let pr = b.var("producer");
    let c1 = b.var("producer_country");
    let t = b.var("type");
    let f = b.var("feature");
    let offer = b.var("offer");
    let v = b.var("vendor");
    let c2 = b.var("vendor_country");
    let review = b.var("review");
    let person = b.var("reviewer");
    let c3 = b.var("reviewer_country");
    let r = b.var("rating");
    b.edge(p, "producer", pr)
        .edge(pr, "country", c1)
        .edge(p, "ptype", t)
        .edge(p, "feature", f)
        .edge(offer, "offer_product", p)
        .edge(offer, "vendor", v)
        .edge(v, "country", c2)
        .edge(review, "review_product", p)
        .edge(review, "reviewer", person)
        .edge(person, "country", c3)
        .edge(review, "rating", r)
        .project(p);
    b.build().expect("q2v0 is well-formed")
}

fn bsbm_q3v0() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p = b.var("product");
    let t = b.constant("ptype_1");
    let f = b.var("feature");
    let pr = b.var("producer");
    let c = b.constant("country_0");
    b.edge(p, "ptype", t)
        .edge(p, "feature", f)
        .edge(p, "producer", pr)
        .edge(pr, "country", c)
        .project(p);
    b.build().expect("q3v0 is well-formed")
}

fn bsbm_q5v0() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p = b.var("product");
    let anchor = b.constant("product_0");
    let f = b.var("feature");
    let t = b.var("type");
    b.edge(p, "feature", f)
        .edge(anchor, "feature", f)
        .edge(p, "ptype", t)
        .project(p);
    b.build().expect("q5v0 is well-formed")
}

fn bsbm_q6v0() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let p = b.var("product");
    let pr = b.var("producer");
    let c = b.constant("country_1");
    b.edge(p, "producer", pr).edge(pr, "country", c).project(p);
    b.build().expect("q6v0 is well-formed")
}

fn bsbm_q8v0() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let r = b.var("review");
    let p = b.var("product");
    let producer = b.constant("producer_0");
    let person = b.var("reviewer");
    let top = b.constant("rating_5");
    b.edge(r, "review_product", p)
        .edge(p, "producer", producer)
        .edge(r, "reviewer", person)
        .edge(r, "rating", top)
        .project(r);
    b.build().expect("q8v0 is well-formed")
}

fn bsbm_q10v0() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let o = b.var("offer");
    let p = b.var("product");
    let v = b.var("vendor");
    let c = b.constant("country_0");
    let pr = b.var("producer");
    b.edge(o, "offer_product", p)
        .edge(o, "vendor", v)
        .edge(v, "country", c)
        .edge(p, "producer", pr)
        .project(o);
    b.build().expect("q10v0 is well-formed")
}

// ---------------------------------------------------------------------
// Union targets
// ---------------------------------------------------------------------

/// Target queries that are genuine unions (Section II-A's full query
/// class): inference must keep separate branches — or the feedback loop
/// must reject the over-generalized single-pattern merge.
pub fn union_workload() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery {
            id: "u1",
            kind: OntologyKind::Movies,
            description: "films by Tarantino or by Spielberg",
            query: UnionQuery::new(vec![
                m_films_by("Quentin_Tarantino"),
                m_films_by("Steven_Spielberg"),
            ])
            .expect("two branches"),
        },
        WorkloadQuery {
            id: "u2",
            kind: OntologyKind::Sp2b,
            description: "articles in journal_0 or journal_1",
            query: UnionQuery::new(vec![
                sp2b_q3("journal", "journal_0"),
                sp2b_q3("journal", "journal_1"),
            ])
            .expect("two branches"),
        },
        WorkloadQuery {
            id: "u3",
            kind: OntologyKind::Bsbm,
            description: "products of ptype_0 or from country_1 producers",
            query: UnionQuery::new(vec![bsbm_q1v0(), bsbm_q6v0()]).expect("two branches"),
        },
    ]
}

// ---------------------------------------------------------------------
// Table I movie queries
// ---------------------------------------------------------------------

/// The ten Table I movie queries: five basic (m1–m5) and five more
/// challenging (m6–m10).
pub fn movie_workload() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery {
            id: "m1",
            kind: OntologyKind::Movies,
            description: "films directed by Quentin Tarantino",
            query: single(m_films_by("Quentin_Tarantino")),
        },
        WorkloadQuery {
            id: "m2",
            kind: OntologyKind::Movies,
            description: "actors starring in Pulp Fiction",
            query: single(m_cast_of("Pulp_Fiction")),
        },
        WorkloadQuery {
            id: "m3",
            kind: OntologyKind::Movies,
            description: "films starring Uma Thurman",
            query: single(m_films_starring("Uma_Thurman")),
        },
        WorkloadQuery {
            id: "m4",
            kind: OntologyKind::Movies,
            description: "films produced in England",
            query: single(m_films_in("England")),
        },
        WorkloadQuery {
            id: "m5",
            kind: OntologyKind::Movies,
            description: "actors in films directed by Steven Spielberg",
            query: single(m_actors_for_director("Steven_Spielberg")),
        },
        WorkloadQuery {
            id: "m6",
            kind: OntologyKind::Movies,
            description: "actors in more than one Tarantino film",
            query: single(m_repeat_actors("Quentin_Tarantino")),
        },
        WorkloadQuery {
            id: "m7",
            kind: OntologyKind::Movies,
            description: "directors who star in their own film",
            query: single(m_self_directors()),
        },
        WorkloadQuery {
            id: "m8",
            kind: OntologyKind::Movies,
            description: "co-stars of Kevin Bacon",
            query: single(m_costars_of("Kevin_Bacon")),
        },
        WorkloadQuery {
            id: "m9",
            kind: OntologyKind::Movies,
            description: "films by directors of Uma Thurman films",
            query: single(m_films_by_director_of("Uma_Thurman")),
        },
        WorkloadQuery {
            id: "m10",
            kind: OntologyKind::Movies,
            description: "actors with Bacon number 2",
            query: single(m_bacon_number_2()),
        },
    ]
}

fn m_films_by(director: &str) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f = b.var("film");
    let d = b.constant(director);
    b.edge(f, "director", d).project(f);
    b.build().expect("m1 is well-formed")
}

fn m_cast_of(film: &str) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f = b.constant(film);
    let a = b.var("actor");
    b.edge(f, "starring", a).project(a);
    b.build().expect("m2 is well-formed")
}

fn m_films_starring(actor: &str) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f = b.var("film");
    let a = b.constant(actor);
    b.edge(f, "starring", a).project(f);
    b.build().expect("m3 is well-formed")
}

fn m_films_in(country: &str) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f = b.var("film");
    let c = b.constant(country);
    let d = b.var("director");
    b.edge(f, "country", c).edge(f, "director", d).project(f);
    b.build().expect("m4 is well-formed")
}

fn m_actors_for_director(director: &str) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f = b.var("film");
    let d = b.constant(director);
    let a = b.var("actor");
    b.edge(f, "director", d).edge(f, "starring", a).project(a);
    b.build().expect("m5 is well-formed")
}

fn m_repeat_actors(director: &str) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f1 = b.var("film1");
    let f2 = b.var("film2");
    let d = b.constant(director);
    let a = b.var("actor");
    b.edge(f1, "director", d)
        .edge(f1, "starring", a)
        .edge(f2, "director", d)
        .edge(f2, "starring", a)
        .project(a)
        .diseq(f1, f2);
    b.build().expect("m6 is well-formed")
}

fn m_self_directors() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f = b.var("film");
    let d = b.var("person");
    b.edge(f, "director", d).edge(f, "starring", d).project(d);
    b.build().expect("m7 is well-formed")
}

fn m_costars_of(actor: &str) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f = b.var("film");
    let bacon = b.constant(actor);
    let a = b.var("actor");
    b.edge(f, "starring", bacon)
        .edge(f, "starring", a)
        .project(a)
        .diseq(a, bacon);
    b.build().expect("m8 is well-formed")
}

fn m_films_by_director_of(actor: &str) -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f = b.var("film");
    let f2 = b.var("uma_film");
    let d = b.var("director");
    let a = b.constant(actor);
    b.edge(f, "director", d)
        .edge(f2, "director", d)
        .edge(f2, "starring", a)
        .project(f);
    b.build().expect("m9 is well-formed")
}

fn m_bacon_number_2() -> SimpleQuery {
    let mut b = QueryBuilder::new();
    let f1 = b.var("film1");
    let f2 = b.var("film2");
    let bacon = b.constant("Kevin_Bacon");
    let m = b.var("middle");
    let x = b.var("actor");
    b.edge(f1, "starring", bacon)
        .edge(f1, "starring", m)
        .edge(f2, "starring", m)
        .edge(f2, "starring", x)
        .project(x)
        .diseq(m, bacon)
        .diseq(x, bacon)
        .diseq(x, m);
    b.build().expect("m10 is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsbm::{generate_bsbm, BsbmConfig};
    use crate::movies::{generate_movies, MoviesConfig};
    use crate::sp2b::{generate_sp2b, Sp2bConfig};
    use questpro_engine::evaluate_union;
    use questpro_graph::Ontology;

    fn results(o: &Ontology, w: &WorkloadQuery) -> usize {
        evaluate_union(o, &w.query).len()
    }

    #[test]
    fn sp2b_queries_have_enough_results() {
        let o = generate_sp2b(&Sp2bConfig::default());
        for w in sp2b_workload() {
            let n = results(&o, &w);
            assert!(n >= 2, "{} returned {} results (<2)", w.id, n);
        }
    }

    #[test]
    fn bsbm_queries_have_enough_results() {
        let o = generate_bsbm(&BsbmConfig::default());
        for w in bsbm_workload() {
            let n = results(&o, &w);
            assert!(n >= 2, "{} returned {} results (<2)", w.id, n);
        }
    }

    #[test]
    fn movie_queries_have_enough_results() {
        let o = generate_movies(&MoviesConfig::default());
        for w in movie_workload() {
            let n = results(&o, &w);
            assert!(n >= 2, "{} returned {} results (<2)", w.id, n);
        }
    }

    #[test]
    fn workloads_respect_the_paper_envelope() {
        // 1–12 edges and 1–12 variables per simple query (Section VI-B).
        for w in sp2b_workload()
            .into_iter()
            .chain(bsbm_workload())
            .chain(movie_workload())
        {
            for q in w.query.branches() {
                assert!(
                    (1..=12).contains(&q.edge_count()),
                    "{}: {} edges",
                    w.id,
                    q.edge_count()
                );
                assert!(
                    (1..=12).contains(&q.var_count()),
                    "{}: {} vars",
                    w.id,
                    q.var_count()
                );
            }
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = sp2b_workload()
            .into_iter()
            .chain(bsbm_workload())
            .chain(movie_workload())
            .map(|w| w.id)
            .collect();
        let total = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total);
        assert_eq!(total, 8 + 7 + 10);
    }
}
