//! SP2B-like synthetic ontology: a DBLP-style publications world.
//!
//! Entity shapes follow the SP2B benchmark the paper evaluates on:
//! authors, articles (with journals), inproceedings (with conferences),
//! publication years, and citations. One prolific anchor author —
//! `Paul_Erdos` — is wired into the early articles so that the
//! Erdős-number workload queries (`q8a`, `q8b`) always have non-trivial
//! answers, mirroring SP2B's own famous-author queries.
//!
//! Author participation is skewed (quadratic transform of a uniform
//! draw) to imitate DBLP's power-law co-authorship distribution.

use questpro_graph::rng::{Rng, StdRng};

use questpro_graph::{Ontology, OntologyBuilder};

/// Scale and shape parameters of the SP2B-like generator.
#[derive(Debug, Clone, Copy)]
pub struct Sp2bConfig {
    /// Number of authors.
    pub authors: usize,
    /// Number of journal articles.
    pub articles: usize,
    /// Number of conference papers.
    pub inproceedings: usize,
    /// Number of journals.
    pub journals: usize,
    /// Number of conferences.
    pub conferences: usize,
    /// Inclusive year range.
    pub years: (u32, u32),
    /// Maximum number of authors per paper (minimum is 1).
    pub max_authors_per_paper: usize,
    /// Expected number of citations per paper.
    pub avg_citations: f64,
    /// RNG seed; equal seeds produce identical ontologies.
    pub seed: u64,
}

impl Default for Sp2bConfig {
    fn default() -> Self {
        Self {
            authors: 300,
            articles: 600,
            inproceedings: 400,
            journals: 30,
            conferences: 25,
            years: (1990, 2010),
            max_authors_per_paper: 4,
            avg_citations: 1.5,
            seed: 0x5b2b,
        }
    }
}

/// Generates the SP2B-like ontology.
pub fn generate_sp2b(cfg: &Sp2bConfig) -> Ontology {
    assert!(cfg.authors >= 2 && cfg.articles >= 4, "scale too small");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = Ontology::builder();

    let author_name = |i: usize| {
        if i == 0 {
            "Paul_Erdos".to_string()
        } else {
            format!("author_{i}")
        }
    };
    for i in 0..cfg.authors {
        b.typed_node(&author_name(i), "Author")
            .expect("fresh author");
    }
    for j in 0..cfg.journals {
        b.typed_node(&format!("journal_{j}"), "Journal")
            .expect("fresh journal");
    }
    for c in 0..cfg.conferences {
        b.typed_node(&format!("conference_{c}"), "Conference")
            .expect("fresh conference");
    }
    for y in cfg.years.0..=cfg.years.1 {
        b.typed_node(&format!("year_{y}"), "Year")
            .expect("fresh year");
    }

    // Skewed author pick: quadratic transform favors low indexes.
    let pick_author = |rng: &mut StdRng, n: usize| -> usize {
        let r: f64 = rng.random_f64();
        ((r * r) * n as f64) as usize % n
    };

    let mut paper_names: Vec<String> = Vec::new();
    for a in 0..cfg.articles {
        let name = format!("article_{a}");
        b.typed_node(&name, "Article").expect("fresh article");
        attach_authors(&mut b, &mut rng, &name, cfg, a, pick_author, &author_name);
        let j = rng.random_range(0..cfg.journals);
        b.edge(&name, "journal", &format!("journal_{j}"))
            .expect("article has one journal");
        attach_year(&mut b, &mut rng, &name, cfg);
        paper_names.push(name);
    }
    for p in 0..cfg.inproceedings {
        let name = format!("inproc_{p}");
        b.typed_node(&name, "Inproceedings").expect("fresh inproc");
        attach_authors(
            &mut b,
            &mut rng,
            &name,
            cfg,
            cfg.articles + p,
            pick_author,
            &author_name,
        );
        let c = rng.random_range(0..cfg.conferences);
        b.edge(&name, "booktitle", &format!("conference_{c}"))
            .expect("inproc has one conference");
        attach_year(&mut b, &mut rng, &name, cfg);
        paper_names.push(name);
    }

    // Citations: later papers cite earlier ones.
    let total = paper_names.len();
    for i in 1..total {
        let mut cites = 0usize;
        while cites < 5 && rng.random_f64() < cfg.avg_citations / (cites as f64 + 1.5) {
            let target = rng.random_range(0..i);
            if target != i {
                let _ = b.edge_idempotent(&paper_names[i], "cites", &paper_names[target]);
            }
            cites += 1;
        }
    }
    b.build()
}

fn attach_authors(
    b: &mut OntologyBuilder,
    rng: &mut StdRng,
    paper: &str,
    cfg: &Sp2bConfig,
    index: usize,
    pick_author: impl Fn(&mut StdRng, usize) -> usize,
    author_name: &impl Fn(usize) -> String,
) {
    let count = rng.random_range(1..=cfg.max_authors_per_paper.max(1));
    let mut chosen: Vec<usize> = Vec::with_capacity(count + 1);
    // Wire the anchor author into the early papers so Erdős chains exist.
    if index.is_multiple_of(13) {
        chosen.push(0);
    }
    while chosen.len() < count {
        let a = pick_author(rng, cfg.authors);
        if !chosen.contains(&a) {
            chosen.push(a);
        }
    }
    for a in chosen {
        let _ = b.edge_idempotent(paper, "creator", &author_name(a));
    }
}

fn attach_year(b: &mut OntologyBuilder, rng: &mut StdRng, paper: &str, cfg: &Sp2bConfig) {
    let y = rng.random_range(cfg.years.0..=cfg.years.1);
    b.edge(paper, "year", &format!("year_{y}"))
        .expect("paper has one year");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = Sp2bConfig::default();
        let a = generate_sp2b(&cfg);
        let b = generate_sp2b(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        // Spot-check a concrete edge correspondence.
        for e in a.edge_ids().take(50) {
            let d = a.edge(e);
            let src = b.node_by_value(a.value_str(d.src)).unwrap();
            let dst = b.node_by_value(a.value_str(d.dst)).unwrap();
            let pred = b.pred_by_name(a.pred_str(d.pred)).unwrap();
            assert!(b.find_edge(src, pred, dst).is_some());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_sp2b(&Sp2bConfig::default());
        let b = generate_sp2b(&Sp2bConfig {
            seed: 999,
            ..Default::default()
        });
        assert_ne!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn anchor_author_is_prolific() {
        let o = generate_sp2b(&Sp2bConfig::default());
        let erdos = o.node_by_value("Paul_Erdos").unwrap();
        // ~(articles+inproc)/13 papers include the anchor.
        assert!(o.in_edges(erdos).len() >= 40);
    }

    #[test]
    fn every_paper_has_year_venue_and_author() {
        let o = generate_sp2b(&Sp2bConfig {
            articles: 50,
            inproceedings: 30,
            ..Default::default()
        });
        let creator = o.pred_by_name("creator").unwrap();
        let year = o.pred_by_name("year").unwrap();
        for n in o.node_ids() {
            let Some(t) = o.node_type(n) else { continue };
            let tname = o.type_str(t);
            if tname == "Article" || tname == "Inproceedings" {
                let preds: Vec<_> = o.out_edges(n).iter().map(|&e| o.edge(e).pred).collect();
                assert!(preds.contains(&creator), "{} lacks creator", o.value_str(n));
                assert!(preds.contains(&year), "{} lacks year", o.value_str(n));
                let venue = if tname == "Article" {
                    o.pred_by_name("journal").unwrap()
                } else {
                    o.pred_by_name("booktitle").unwrap()
                };
                assert!(preds.contains(&venue), "{} lacks venue", o.value_str(n));
            }
        }
    }

    #[test]
    fn invariants_hold() {
        let o = generate_sp2b(&Sp2bConfig::default());
        assert!(o.validate().is_ok());
    }
}
