//! The paper's running example: the publications world of Figure 1.
//!
//! Four explanation shapes over a `wb` ("written by") ontology:
//!
//! * `E1` — Alice's 3-paper co-authorship chain to Erdős (Erdős №3);
//! * `E2` — Carol's direct co-authorship with Erdős (Erdős №1);
//! * `E3` — Dave's direct co-authorship with Erdős;
//! * `E4` — Felix's 3-paper chain to Erdős.
//!
//! The ontology also holds enough extra structure (William's alternative
//! chain, solo papers) for the feedback examples of Section V to have
//! non-empty difference queries.

use questpro_graph::{ExampleSet, Explanation, Ontology};

/// Builds the running-example ontology, with `Author`/`Paper` types.
pub fn erdos_ontology() -> Ontology {
    let mut b = Ontology::builder();
    let chains: &[(&str, &str, &str)] = &[
        // E1: Alice — Bob — Carol — Erdos.
        ("paper1", "wb", "Alice"),
        ("paper1", "wb", "Bob"),
        ("paper2", "wb", "Bob"),
        ("paper2", "wb", "Carol"),
        ("paper3", "wb", "Carol"),
        ("paper3", "wb", "Erdos"),
        // E2 uses paper3 (Carol—Erdos); E3: Dave — Erdos.
        ("paper4", "wb", "Dave"),
        ("paper4", "wb", "Erdos"),
        // E4: Felix — Gina — Hank — Erdos.
        ("paper5", "wb", "Felix"),
        ("paper5", "wb", "Gina"),
        ("paper6", "wb", "Gina"),
        ("paper6", "wb", "Hank"),
        ("paper7", "wb", "Hank"),
        ("paper7", "wb", "Erdos"),
        // William: Erdos number 2 through a path avoiding Bob/Carol.
        ("paper8", "wb", "William"),
        ("paper8", "wb", "Xena"),
        ("paper9", "wb", "Xena"),
        ("paper9", "wb", "Erdos"),
        // Harry: another Erdos-1 author (E4-dis analog in Example 2.7).
        ("paper10", "wb", "Harry"),
        ("paper10", "wb", "Erdos"),
        // A solo paper, so diseq refinement has observable differences.
        ("paper11", "wb", "Solo"),
    ];
    for &(p, pred, a) in chains {
        b.edge(p, pred, a).expect("fixture edges are unique");
    }
    for a in [
        "Alice", "Bob", "Carol", "Erdos", "Dave", "Felix", "Gina", "Hank", "William", "Xena",
        "Harry", "Solo",
    ] {
        b.typed_node(a, "Author").expect("consistent types");
    }
    for p in 1..=11 {
        b.typed_node(&format!("paper{p}"), "Paper")
            .expect("consistent types");
    }
    b.build()
}

/// The four explanations of Figure 1 over [`erdos_ontology`].
pub fn erdos_example_set(ont: &Ontology) -> ExampleSet {
    let e1 = Explanation::from_triples(
        ont,
        &[
            ("paper1", "wb", "Alice"),
            ("paper1", "wb", "Bob"),
            ("paper2", "wb", "Bob"),
            ("paper2", "wb", "Carol"),
            ("paper3", "wb", "Carol"),
            ("paper3", "wb", "Erdos"),
        ],
        "Alice",
    )
    .expect("E1 is well-formed");
    let e2 = Explanation::from_triples(
        ont,
        &[("paper3", "wb", "Carol"), ("paper3", "wb", "Erdos")],
        "Carol",
    )
    .expect("E2 is well-formed");
    let e3 = Explanation::from_triples(
        ont,
        &[("paper4", "wb", "Dave"), ("paper4", "wb", "Erdos")],
        "Dave",
    )
    .expect("E3 is well-formed");
    let e4 = Explanation::from_triples(
        ont,
        &[
            ("paper5", "wb", "Felix"),
            ("paper5", "wb", "Gina"),
            ("paper6", "wb", "Gina"),
            ("paper6", "wb", "Hank"),
            ("paper7", "wb", "Hank"),
            ("paper7", "wb", "Erdos"),
        ],
        "Felix",
    )
    .expect("E4 is well-formed");
    ExampleSet::from_explanations(vec![e1, e2, e3, e4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_shape() {
        let o = erdos_ontology();
        assert_eq!(o.pred_count(), 1);
        assert!(o.node_by_value("Erdos").is_some());
        assert!(o.validate().is_ok());
        let erdos = o.node_by_value("Erdos").unwrap();
        // Erdos co-authored papers 3, 4, 7, 9, 10.
        assert_eq!(o.in_edges(erdos).len(), 5);
        let t = o.node_type(erdos).unwrap();
        assert_eq!(o.type_str(t), "Author");
    }

    #[test]
    fn example_set_matches_figure_1() {
        let o = erdos_ontology();
        let set = erdos_example_set(&o);
        assert_eq!(set.len(), 4);
        let sizes: Vec<usize> = set.iter().map(Explanation::edge_count).collect();
        assert_eq!(sizes, vec![6, 2, 2, 6]);
        let dis: Vec<&str> = set.iter().map(|e| o.value_str(e.distinguished())).collect();
        assert_eq!(dis, vec!["Alice", "Carol", "Dave", "Felix"]);
    }
}
