//! BSBM-like synthetic ontology: the Berlin SPARQL e-commerce world.
//!
//! Products carry a producer, one product type, and several features;
//! vendors (with countries) publish offers for products; reviewers (with
//! countries) write reviews with ratings. These are exactly the joins
//! the BSBM "explore" query mix exercises, so the workload analogs in
//! [`crate::workloads`] have the same structural envelope (1–12 edges,
//! multiple joins) as the queries the paper ran.

use questpro_graph::rng::{Rng, StdRng};

use questpro_graph::Ontology;

/// Scale parameters of the BSBM-like generator.
#[derive(Debug, Clone, Copy)]
pub struct BsbmConfig {
    /// Number of products.
    pub products: usize,
    /// Number of producers.
    pub producers: usize,
    /// Number of product types.
    pub types: usize,
    /// Number of product features.
    pub features: usize,
    /// Features attached per product (upper bound; at least 1).
    pub max_features_per_product: usize,
    /// Number of vendors.
    pub vendors: usize,
    /// Number of offers.
    pub offers: usize,
    /// Number of reviews.
    pub reviews: usize,
    /// Number of reviewers.
    pub reviewers: usize,
    /// Number of countries.
    pub countries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BsbmConfig {
    fn default() -> Self {
        Self {
            products: 250,
            producers: 20,
            types: 12,
            features: 40,
            max_features_per_product: 4,
            vendors: 15,
            offers: 450,
            reviews: 450,
            reviewers: 90,
            countries: 8,
            seed: 0xb5b1,
        }
    }
}

/// Generates the BSBM-like ontology.
pub fn generate_bsbm(cfg: &BsbmConfig) -> Ontology {
    assert!(cfg.products >= 4 && cfg.countries >= 2, "scale too small");
    let mut b = Ontology::builder();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    for c in 0..cfg.countries {
        b.typed_node(&format!("country_{c}"), "Country")
            .expect("fresh country");
    }
    // Producers and vendors take countries round-robin so every country
    // is guaranteed to host some of each (the workload queries anchor on
    // specific countries).
    for p in 0..cfg.producers {
        let name = format!("producer_{p}");
        b.typed_node(&name, "Producer").expect("fresh producer");
        let c = p % cfg.countries;
        b.edge(&name, "country", &format!("country_{c}"))
            .expect("producer country");
    }
    for t in 0..cfg.types {
        b.typed_node(&format!("ptype_{t}"), "ProductType")
            .expect("fresh type");
    }
    for f in 0..cfg.features {
        b.typed_node(&format!("feature_{f}"), "Feature")
            .expect("fresh feature");
    }
    for v in 0..cfg.vendors {
        let name = format!("vendor_{v}");
        b.typed_node(&name, "Vendor").expect("fresh vendor");
        let c = v % cfg.countries;
        b.edge(&name, "country", &format!("country_{c}"))
            .expect("vendor country");
    }
    for r in 0..cfg.reviewers {
        let name = format!("reviewer_{r}");
        b.typed_node(&name, "Person").expect("fresh reviewer");
        let c = rng.random_range(0..cfg.countries);
        b.edge(&name, "country", &format!("country_{c}"))
            .expect("reviewer country");
    }
    for r in 1..=5 {
        b.typed_node(&format!("rating_{r}"), "Rating")
            .expect("fresh rating");
    }

    for p in 0..cfg.products {
        let name = format!("product_{p}");
        b.typed_node(&name, "Product").expect("fresh product");
        let producer = rng.random_range(0..cfg.producers);
        b.edge(&name, "producer", &format!("producer_{producer}"))
            .expect("product producer");
        let t = rng.random_range(0..cfg.types);
        b.edge(&name, "ptype", &format!("ptype_{t}"))
            .expect("product type");
        let nf = rng.random_range(1..=cfg.max_features_per_product.max(1));
        for _ in 0..nf {
            let f = rng.random_range(0..cfg.features);
            let _ = b.edge_idempotent(&name, "feature", &format!("feature_{f}"));
        }
    }

    for o in 0..cfg.offers {
        let name = format!("offer_{o}");
        b.typed_node(&name, "Offer").expect("fresh offer");
        let p = rng.random_range(0..cfg.products);
        b.edge(&name, "offer_product", &format!("product_{p}"))
            .expect("offer product");
        let v = rng.random_range(0..cfg.vendors);
        b.edge(&name, "vendor", &format!("vendor_{v}"))
            .expect("offer vendor");
    }

    for r in 0..cfg.reviews {
        let name = format!("review_{r}");
        b.typed_node(&name, "Review").expect("fresh review");
        let p = rng.random_range(0..cfg.products);
        b.edge(&name, "review_product", &format!("product_{p}"))
            .expect("review product");
        let person = rng.random_range(0..cfg.reviewers);
        b.edge(&name, "reviewer", &format!("reviewer_{person}"))
            .expect("review author");
        let rating = rng.random_range(1..=5);
        b.edge(&name, "rating", &format!("rating_{rating}"))
            .expect("review rating");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = BsbmConfig::default();
        let a = generate_bsbm(&cfg);
        let b = generate_bsbm(&cfg);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn products_are_fully_described() {
        let o = generate_bsbm(&BsbmConfig {
            products: 40,
            ..Default::default()
        });
        let producer = o.pred_by_name("producer").unwrap();
        let ptype = o.pred_by_name("ptype").unwrap();
        let feature = o.pred_by_name("feature").unwrap();
        for n in o.node_ids() {
            let Some(t) = o.node_type(n) else { continue };
            if o.type_str(t) == "Product" {
                let preds: Vec<_> = o.out_edges(n).iter().map(|&e| o.edge(e).pred).collect();
                assert!(preds.contains(&producer));
                assert!(preds.contains(&ptype));
                assert!(preds.contains(&feature));
            }
        }
    }

    #[test]
    fn offers_and_reviews_link_products() {
        let o = generate_bsbm(&BsbmConfig::default());
        let offer_product = o.pred_by_name("offer_product").unwrap();
        let review_product = o.pred_by_name("review_product").unwrap();
        assert_eq!(o.edges_with_pred(offer_product).len(), 450);
        assert_eq!(o.edges_with_pred(review_product).len(), 450);
        assert!(o.validate().is_ok());
    }
}
