//! Copy-on-write batched updates for the persistent store.
//!
//! [`TripleStore::apply_update`] applies a [`TripleDelta`] (deletes
//! first, then inserts — the same semantics as
//! `questpro_graph::Ontology::apply_delta`) and returns a **new** store;
//! the original is untouched, so concurrent readers of the old version
//! keep a consistent image. The result is canonical: it is byte-identical
//! (snapshot-encodes equal) to a [`StoreBuilder`] fed the post-update
//! triple set from scratch, because ids are sorted-label ranks and the
//! merge below preserves exactly that order:
//!
//! * new labels are merged into the sorted dictionaries, producing a
//!   **monotone** old-id → new-id remap (componentwise monotone maps
//!   preserve lexicographic row order, so the surviving SPO rows stay
//!   sorted without re-sorting);
//! * deletes resolve by binary search over the SPO table; a miss (or a
//!   second delete of the same row in one batch) fails the whole batch
//!   with a named [`GraphError::MissingTriple`] and the store is not
//!   modified;
//! * inserts are validated against the surviving rows and against each
//!   other ([`GraphError::DuplicateEdge`]), then merged into the
//!   remapped survivor rows in one linear pass;
//! * the POS/OSP permutations are re-derived by sorting the new table's
//!   indexes — `O(m log m)` on the triple count, which keeps this the
//!   simple, obviously-correct path (the store update backs the CLI and
//!   persistence; the latency-critical in-memory path is the ontology
//!   delta in `questpro-graph`).
//!
//! Node labels are never removed: deleting the last triple touching a
//! node leaves its label in the dictionary (mirroring the graph layer,
//! where nodes are never deleted and ids stay stable). Predicate labels
//! *are* dropped when their last triple goes away — a canonical rebuild
//! interns predicates only through triples, so keeping a stranded pred
//! would make the incremental and scratch stores diverge byte-wise.

use questpro_graph::{GraphError, TripleDelta};

use crate::dict::Dict;
use crate::error::StoreError;
use crate::store::TripleStore;

/// A sorted dictionary merged with a sorted batch of new labels.
struct MergedDict {
    /// The merged dictionary.
    dict: Dict,
    /// Monotone map from old id to new id (`len == old.len()`).
    remap: Vec<u32>,
    /// New ids of the freshly inserted labels, aligned with the sorted
    /// `extra` slice passed to [`merge_dict`].
    new_ids: Vec<u32>,
}

/// Merges `extra` (strictly ascending, disjoint from `old`) into `old`,
/// returning the merged dictionary plus both id mappings.
fn merge_dict(old: &Dict, extra: &[&str], section: &'static str) -> Result<MergedDict, StoreError> {
    let mut remap = Vec::with_capacity(old.len());
    let mut new_ids = Vec::with_capacity(extra.len());
    let mut labels: Vec<&str> = Vec::with_capacity(old.len() + extra.len());
    let mut ei = 0usize;
    for oi in 0..old.len() {
        let label = old.label(oi as u32);
        while ei < extra.len() && extra[ei] < label {
            new_ids.push(labels.len() as u32);
            labels.push(extra[ei]);
            ei += 1;
        }
        remap.push(labels.len() as u32);
        labels.push(label);
    }
    while ei < extra.len() {
        new_ids.push(labels.len() as u32);
        labels.push(extra[ei]);
        ei += 1;
    }
    let dict = Dict::from_sorted(labels).ok_or(StoreError::BadSection {
        section,
        reason: "merged labels not strictly ascending".into(),
    })?;
    Ok(MergedDict {
        dict,
        remap,
        new_ids,
    })
}

impl TripleStore {
    /// Applies a batched update (deletes, then inserts) and returns the
    /// updated store. `self` is unchanged; on any validation error
    /// nothing at all is applied.
    ///
    /// The returned store is canonical — identical to rebuilding from
    /// the post-update triple set with [`crate::StoreBuilder`] — so its
    /// snapshot encoding is byte-stable across the incremental and
    /// from-scratch paths.
    ///
    /// # Errors
    /// * [`GraphError::MissingTriple`] (via [`StoreError::Graph`]) when
    ///   a delete names a triple that is not present, or the batch
    ///   deletes the same triple twice;
    /// * [`GraphError::DuplicateEdge`] when an insert duplicates a
    ///   surviving triple or another insert in the same batch.
    pub fn apply_update(&self, delta: &TripleDelta) -> Result<TripleStore, StoreError> {
        // --- resolve deletes against the old id space -----------------
        let mut deleted = vec![false; self.triples.len()];
        for [s, p, o] in &delta.deletes {
            let missing = || {
                StoreError::Graph(GraphError::MissingTriple {
                    src: s.clone(),
                    pred: p.clone(),
                    dst: o.clone(),
                })
            };
            let si = self.nodes.lookup(s).ok_or_else(missing)?;
            let pi = self.preds.lookup(p).ok_or_else(missing)?;
            let oi = self.nodes.lookup(o).ok_or_else(missing)?;
            let row = self
                .triples
                .binary_search(&[si, pi, oi])
                .map_err(|_| missing())?;
            if deleted[row] {
                return Err(missing());
            }
            deleted[row] = true;
        }

        // --- collect labels the inserts introduce ---------------------
        let mut extra_nodes: Vec<&str> = Vec::new();
        let mut extra_preds: Vec<&str> = Vec::new();
        for [s, p, o] in &delta.inserts {
            if self.nodes.lookup(s).is_none() {
                extra_nodes.push(s);
            }
            if self.preds.lookup(p).is_none() {
                extra_preds.push(p);
            }
            if self.nodes.lookup(o).is_none() {
                extra_nodes.push(o);
            }
        }
        extra_nodes.sort_unstable();
        extra_nodes.dedup();
        extra_preds.sort_unstable();
        extra_preds.dedup();

        let nodes = merge_dict(&self.nodes, &extra_nodes, "nodes")?;
        let preds = merge_dict(&self.preds, &extra_preds, "preds")?;
        let node_id = |label: &str| -> u32 {
            match self.nodes.lookup(label) {
                Some(old) => nodes.remap[old as usize],
                None => {
                    let i = extra_nodes
                        .binary_search(&label)
                        .expect("collected just above");
                    nodes.new_ids[i]
                }
            }
        };
        let pred_id = |label: &str| -> u32 {
            match self.preds.lookup(label) {
                Some(old) => preds.remap[old as usize],
                None => {
                    let i = extra_preds
                        .binary_search(&label)
                        .expect("collected just above");
                    preds.new_ids[i]
                }
            }
        };

        // --- validate inserts, resolve them in the new id space -------
        let mut ins_rows: Vec<[u32; 3]> = Vec::with_capacity(delta.inserts.len());
        for [s, p, o] in &delta.inserts {
            let dup = || {
                StoreError::Graph(GraphError::DuplicateEdge {
                    src: s.clone(),
                    pred: p.clone(),
                    dst: o.clone(),
                })
            };
            // Duplicate of a *surviving* old row? (A deleted-then-
            // reinserted triple is fine.)
            if let (Some(si), Some(pi), Some(oi)) = (
                self.nodes.lookup(s),
                self.preds.lookup(p),
                self.nodes.lookup(o),
            ) {
                if let Ok(row) = self.triples.binary_search(&[si, pi, oi]) {
                    if !deleted[row] {
                        return Err(dup());
                    }
                }
            }
            let row = [node_id(s), pred_id(p), node_id(o)];
            ins_rows.push(row);
        }
        // Duplicate inside the batch? Sort a copy with back-pointers so
        // the error can name the offending labels.
        let mut order: Vec<u32> = (0..ins_rows.len() as u32).collect();
        order.sort_unstable_by_key(|&i| ins_rows[i as usize]);
        for w in order.windows(2) {
            if ins_rows[w[0] as usize] == ins_rows[w[1] as usize] {
                let [s, p, o] = &delta.inserts[w[1] as usize];
                return Err(StoreError::Graph(GraphError::DuplicateEdge {
                    src: s.clone(),
                    pred: p.clone(),
                    dst: o.clone(),
                }));
            }
        }

        // --- merge surviving rows (remapped) with the sorted inserts --
        let survivors = self.triples.len() - delta.deletes.len();
        let mut triples: Vec<[u32; 3]> = Vec::with_capacity(survivors + ins_rows.len());
        let mut next_ins = 0usize;
        for (i, t) in self.triples.iter().enumerate() {
            if deleted[i] {
                continue;
            }
            let row = [
                nodes.remap[t[0] as usize],
                preds.remap[t[1] as usize],
                nodes.remap[t[2] as usize],
            ];
            while next_ins < order.len() && ins_rows[order[next_ins] as usize] < row {
                triples.push(ins_rows[order[next_ins] as usize]);
                next_ins += 1;
            }
            triples.push(row);
        }
        while next_ins < order.len() {
            triples.push(ins_rows[order[next_ins] as usize]);
            next_ins += 1;
        }
        debug_assert!(triples.windows(2).all(|w| w[0] < w[1]));

        // --- compact predicates stranded by the deletes ---------------
        // A pred label exists only through its triples (canonical scratch
        // builds intern preds via `add_triple`), so deleting the last
        // `p`-triple must drop `p` from the dictionary or the incremental
        // and from-scratch stores would diverge byte-wise. The compaction
        // remap is monotone, so SPO row order is preserved.
        let mut used = vec![false; preds.dict.len()];
        for t in &triples {
            used[t[1] as usize] = true;
        }
        let preds_dict = if used.iter().all(|&u| u) {
            preds.dict
        } else {
            let mut compact = vec![0u32; used.len()];
            let mut kept: Vec<&str> = Vec::new();
            for (p, u) in used.iter().enumerate() {
                if *u {
                    compact[p] = kept.len() as u32;
                    kept.push(preds.dict.label(p as u32));
                }
            }
            for t in &mut triples {
                t[1] = compact[t[1] as usize];
            }
            Dict::from_sorted(kept).ok_or(StoreError::BadSection {
                section: "preds",
                reason: "compacted labels not strictly ascending".into(),
            })?
        };
        debug_assert!(triples.windows(2).all(|w| w[0] < w[1]));

        // --- carry types and re-derive the permutations ---------------
        let node_types: Vec<[u32; 2]> = self
            .node_types
            .iter()
            .map(|r| [nodes.remap[r[0] as usize], r[1]])
            .collect();
        debug_assert!(node_types.windows(2).all(|w| w[0][0] < w[1][0]));

        let mut pos: Vec<u32> = (0..triples.len() as u32).collect();
        pos.sort_unstable_by_key(|&e| {
            let t = triples[e as usize];
            [t[1], t[2], t[0]]
        });
        let mut osp: Vec<u32> = (0..triples.len() as u32).collect();
        osp.sort_unstable_by_key(|&e| {
            let t = triples[e as usize];
            [t[2], t[1], t[0]]
        });

        Ok(TripleStore {
            nodes: nodes.dict,
            preds: preds_dict,
            types: self.types.clone(),
            triples,
            node_types,
            pos,
            osp,
        })
    }
}

#[cfg(test)]
mod tests {
    use questpro_graph::TripleDelta;

    use crate::error::StoreError;
    use crate::store::{StoreBuilder, TripleStore};
    use questpro_graph::GraphError;

    fn seed() -> TripleStore {
        let mut b = StoreBuilder::new();
        b.add_triple("paper1", "writtenBy", "alice");
        b.add_triple("paper1", "cites", "paper2");
        b.add_triple("paper2", "writtenBy", "bob");
        b.add_type("paper1", "Paper").unwrap();
        b.add_type("alice", "Author").unwrap();
        b.build().unwrap()
    }

    fn t(s: &str, p: &str, o: &str) -> [String; 3] {
        [s.into(), p.into(), o.into()]
    }

    /// Renders triple row `row` back to its labels.
    fn labels_of(store: &TripleStore, row: usize) -> [String; 3] {
        let t = store.triples()[row];
        [
            store.nodes().label(t[0]).to_string(),
            store.preds().label(t[1]).to_string(),
            store.nodes().label(t[2]).to_string(),
        ]
    }

    /// Rebuilds the expected post-update store from scratch.
    fn scratch_after(store: &TripleStore, delta: &TripleDelta) -> TripleStore {
        let next = store.to_ontology().unwrap().apply_delta(delta).unwrap().0;
        TripleStore::from_ontology(&next).unwrap()
    }

    #[test]
    fn insert_only_update_matches_scratch_rebuild_byte_for_byte() {
        let s = seed();
        let delta = TripleDelta {
            inserts: vec![
                t("paper3", "cites", "paper1"),
                t("paper1", "cites", "paper3"),
            ],
            deletes: vec![],
        };
        let inc = s.apply_update(&delta).unwrap();
        let scratch = scratch_after(&s, &delta);
        assert_eq!(inc, scratch);
        assert_eq!(
            crate::snapshot::encode(&inc),
            crate::snapshot::encode(&scratch)
        );
        // The original is untouched (copy-on-write).
        assert_eq!(s.stats().triples, 3);
    }

    #[test]
    fn delete_and_reinsert_keeps_the_table_canonical() {
        let s = seed();
        let delta = TripleDelta {
            inserts: vec![t("paper1", "cites", "paper2")],
            deletes: vec![
                t("paper1", "cites", "paper2"),
                t("paper2", "writtenBy", "bob"),
            ],
        };
        let inc = s.apply_update(&delta).unwrap();
        let scratch = scratch_after(&s, &delta);
        assert_eq!(inc, scratch);
        // bob's label survives even though his last triple is gone.
        assert!(inc.nodes().lookup("bob").is_some());
    }

    #[test]
    fn missing_and_double_deletes_fail_without_mutating() {
        let s = seed();
        let miss = TripleDelta {
            inserts: vec![],
            deletes: vec![t("paper1", "cites", "nowhere")],
        };
        match s.apply_update(&miss) {
            Err(StoreError::Graph(GraphError::MissingTriple { dst, .. })) => {
                assert_eq!(dst, "nowhere");
            }
            other => panic!("expected MissingTriple, got {other:?}"),
        }
        let double = TripleDelta {
            inserts: vec![],
            deletes: vec![
                t("paper1", "cites", "paper2"),
                t("paper1", "cites", "paper2"),
            ],
        };
        assert!(matches!(
            s.apply_update(&double),
            Err(StoreError::Graph(GraphError::MissingTriple { .. }))
        ));
    }

    #[test]
    fn duplicate_inserts_fail_against_survivors_and_within_the_batch() {
        let s = seed();
        let existing = TripleDelta {
            inserts: vec![t("paper1", "cites", "paper2")],
            deletes: vec![],
        };
        assert!(matches!(
            s.apply_update(&existing),
            Err(StoreError::Graph(GraphError::DuplicateEdge { .. }))
        ));
        let batch = TripleDelta {
            inserts: vec![t("x", "p", "y"), t("x", "p", "y")],
            deletes: vec![],
        };
        assert!(matches!(
            s.apply_update(&batch),
            Err(StoreError::Graph(GraphError::DuplicateEdge { .. }))
        ));
    }

    #[test]
    fn randomized_update_sequences_match_scratch_builds() {
        use questpro_graph::rng::{Rng, SplitMix64};
        let mut rng = SplitMix64::seed_from_u64(0xfeed_5eed);
        let mut store = seed();
        for round in 0..40 {
            let mut inserts = Vec::new();
            let mut deletes = Vec::new();
            // Delete up to two random existing triples (distinct rows).
            let mut picked = Vec::new();
            for _ in 0..(rng.next_u64() % 3) {
                if store.triple_count() == 0 {
                    break;
                }
                let row = (rng.next_u64() % store.triple_count() as u64) as usize;
                if picked.contains(&row) {
                    continue;
                }
                picked.push(row);
                deletes.push(labels_of(&store, row));
            }
            // Insert a few fresh triples (new labels guarantee no dups).
            for k in 0..(rng.next_u64() % 3 + 1) {
                inserts.push([
                    format!("n{round}_{k}"),
                    format!("p{}", rng.next_u64() % 4),
                    format!("m{round}_{k}"),
                ]);
            }
            let delta = TripleDelta { inserts, deletes };
            let inc = store.apply_update(&delta).unwrap();
            let scratch = scratch_after(&store, &delta);
            assert_eq!(inc, scratch, "divergence at round {round}");
            assert_eq!(
                crate::snapshot::encode(&inc),
                crate::snapshot::encode(&scratch),
                "snapshot bytes diverged at round {round}"
            );
            store = inc;
        }
    }
}
