//! The versioned, checksummed binary snapshot format (`.qps`).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "QPST"
//! 4       4     format version (currently 1)
//! 8       4     CRC-32 of bytes 16 .. start of the pos section
//! 12      4     section count (exactly 7 in version 1)
//! 16      140   section table: 7 x { id: u32, offset: u64, len: u64 }
//! 156     ...   section payloads, contiguous, in table order
//! ```
//!
//! Version-1 sections, in required id order:
//!
//! | id | name       | payload                                          |
//! |----|------------|--------------------------------------------------|
//! | 1  | nodes      | dict: count, (count+1) u32 offsets, UTF-8 arena   |
//! | 2  | preds      | dict (same shape)                                 |
//! | 3  | types      | dict (same shape)                                 |
//! | 4  | triples    | count, then count x [s, p, o] u32 rows (SPO order)|
//! | 5  | node_types | count, then count x [node, type] u32 rows         |
//! | 6  | pos        | count, then count u32 triple indexes ((p,o,s) order)|
//! | 7  | osp        | count, then count u32 triple indexes ((o,p,s) order)|
//!
//! **Versioning policy**: any change to this byte layout — new sections,
//! reordered fields, different sort contracts — must bump
//! [`FORMAT_VERSION`]; decoders reject versions they do not speak with
//! [`StoreError::UnsupportedVersion`] rather than guessing. The golden
//! test `tests/store_format.rs` pins the version-1 bytes so accidental
//! drift fails CI.
//!
//! **Decoding is strict**: snapshot bytes are untrusted (files, upload
//! bodies). Every field is bounds-checked, the checksum is verified
//! before any payload is trusted, dictionaries must be strictly
//! ascending valid UTF-8, triple rows strictly ascending with in-range
//! ids, and the POS/OSP columns must be order-correct permutations.
//! Violations return named [`StoreError`]s; decoding never panics. On
//! valid input the hot path is bulk copies plus linear monotonicity
//! scans — no hashing, no sorting — which is what makes snapshot
//! cold-starts milliseconds instead of seconds.
//!
//! The checksum deliberately stops at the pos section: the permutation
//! sections are *fully self-validating*. A byte that decodes at all
//! yields some index array, and the only index array that passes the
//! strict-ascent + range + length checks is the unique sort
//! permutation of the (checksummed) triples — so any corruption there
//! is caught structurally, and the cold-start checksum pass skips the
//! two largest fixed-width sections.

use crate::crc32::crc32;
use crate::dict::Dict;
use crate::error::StoreError;
use crate::store::TripleStore;

/// First four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"QPST";
/// The format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed byte size of the snapshot header (before the section table).
const HEADER_LEN: usize = 16;
/// Version-1 section ids, in required order.
const SECTION_IDS: [u32; 7] = [1, 2, 3, 4, 5, 6, 7];
/// Human names for the sections, indexed as `SECTION_IDS`.
const SECTION_NAMES: [&str; 7] = [
    "nodes",
    "preds",
    "types",
    "triples",
    "node_types",
    "pos",
    "osp",
];
/// Bytes per section-table entry: id u32 + offset u64 + len u64.
const TABLE_ENTRY_LEN: usize = 20;

/// One section-table row, as reported by [`sections`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section {
    /// Section id (1-based, see the module docs).
    pub id: u32,
    /// Human-readable section name.
    pub name: &'static str,
    /// Absolute byte offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
}

fn u32_at(bytes: &[u8], at: usize, what: &'static str) -> Result<u32, StoreError> {
    let b = bytes
        .get(at..at + 4)
        .ok_or(StoreError::Truncated { what })?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn u64_at(bytes: &[u8], at: usize, what: &'static str) -> Result<u64, StoreError> {
    let b = bytes
        .get(at..at + 8)
        .ok_or(StoreError::Truncated { what })?;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

/// Parses and validates the header + section table, returning the
/// sections without touching payloads (also used by `store inspect`).
///
/// # Errors
/// Any malformed header/table field yields its named error.
pub fn sections(bytes: &[u8]) -> Result<[Section; 7], StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated { what: "header" });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32_at(bytes, 4, "header")?;
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let count = u32_at(bytes, 12, "header")?;
    if count as usize != SECTION_IDS.len() {
        return Err(StoreError::BadSectionTable {
            reason: format!("expected {} sections, found {count}", SECTION_IDS.len()),
        });
    }
    let table_end = HEADER_LEN + SECTION_IDS.len() * TABLE_ENTRY_LEN;
    if bytes.len() < table_end {
        return Err(StoreError::Truncated {
            what: "section table",
        });
    }
    let mut out = [Section {
        id: 0,
        name: "",
        offset: 0,
        len: 0,
    }; 7];
    let mut cursor = table_end as u64;
    for (i, slot) in out.iter_mut().enumerate() {
        let at = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let id = u32_at(bytes, at, "section table")?;
        let offset = u64_at(bytes, at + 4, "section table")?;
        let len = u64_at(bytes, at + 12, "section table")?;
        if id != SECTION_IDS[i] {
            return Err(StoreError::BadSectionTable {
                reason: format!("entry {i}: expected id {}, found {id}", SECTION_IDS[i]),
            });
        }
        if offset != cursor {
            return Err(StoreError::BadSectionTable {
                reason: format!(
                    "section {}: expected contiguous offset {cursor}, found {offset}",
                    SECTION_NAMES[i]
                ),
            });
        }
        let end = offset.checked_add(len).ok_or(StoreError::BadSectionTable {
            reason: format!("section {}: offset + len overflows", SECTION_NAMES[i]),
        })?;
        if end > bytes.len() as u64 {
            return Err(StoreError::BadSectionTable {
                reason: format!("section {} extends past end of file", SECTION_NAMES[i]),
            });
        }
        cursor = end;
        *slot = Section {
            id,
            name: SECTION_NAMES[i],
            offset,
            len,
        };
    }
    if cursor != bytes.len() as u64 {
        return Err(StoreError::BadSectionTable {
            reason: format!(
                "{} trailing bytes after last section",
                bytes.len() as u64 - cursor
            ),
        });
    }
    // Checksum last: the region ends where the self-validating
    // permutation sections begin, so the table must parse first to
    // locate it. The table itself is inside the region.
    let expected_crc = u32_at(bytes, 8, "header")?;
    let actual_crc = crc32(&bytes[HEADER_LEN..out[5].offset as usize]);
    if expected_crc != actual_crc {
        return Err(StoreError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    Ok(out)
}

/// Reads the leading `count` field and returns `(count, payload rest)`.
fn section_count<'a>(section: &'static str, b: &'a [u8]) -> Result<(usize, &'a [u8]), StoreError> {
    if b.len() < 4 {
        return Err(StoreError::Truncated { what: section });
    }
    let count = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
    Ok((count, &b[4..]))
}

fn read_u32s(b: &[u8]) -> Vec<u32> {
    b.chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

fn decode_dict(section: &'static str, b: &[u8]) -> Result<Dict, StoreError> {
    let (count, rest) = section_count(section, b)?;
    let offsets_len = (count as u64 + 1) * 4;
    if (rest.len() as u64) < offsets_len {
        return Err(StoreError::BadSection {
            section,
            reason: "offset column extends past section".into(),
        });
    }
    let offsets = read_u32s(&rest[..offsets_len as usize]);
    if offsets[0] != 0 {
        return Err(StoreError::BadSection {
            section,
            reason: "first offset is not 0".into(),
        });
    }
    let blob_bytes = &rest[offsets_len as usize..];
    let blob_len = *offsets.last().expect("count + 1 >= 1 offsets") as u64;
    if blob_len != blob_bytes.len() as u64 {
        return Err(StoreError::BadSection {
            section,
            reason: format!(
                "arena length {} does not match final offset {blob_len}",
                blob_bytes.len()
            ),
        });
    }
    let blob = std::str::from_utf8(blob_bytes).map_err(|_| StoreError::BadSection {
        section,
        reason: "label arena is not valid UTF-8".into(),
    })?;
    // One fused pass over the offsets checks monotonicity, UTF-8
    // boundaries, and strictly ascending labels together: a backwards
    // or mid-character offset makes `get` return None, and each label
    // is compared to its predecessor as it is sliced.
    let mut prev: Option<&str> = None;
    for w in offsets.windows(2) {
        let label =
            blob.get(w[0] as usize..w[1] as usize)
                .ok_or_else(|| StoreError::BadSection {
                    section,
                    reason: "offsets are not monotone char boundaries".into(),
                })?;
        if let Some(prev) = prev {
            if prev >= label {
                return Err(StoreError::BadSection {
                    section,
                    reason: "labels are not strictly ascending".into(),
                });
            }
        }
        prev = Some(label);
    }
    Ok(Dict::from_validated_parts(blob.to_string(), offsets))
}

fn decode_rows<const K: usize>(
    section: &'static str,
    b: &[u8],
) -> Result<Vec<[u32; K]>, StoreError> {
    let (count, rest) = section_count(section, b)?;
    let need = (count as u64) * (K as u64) * 4;
    if need != rest.len() as u64 {
        return Err(StoreError::BadSection {
            section,
            reason: format!("payload is {} bytes, expected {need}", rest.len()),
        });
    }
    Ok(rest
        .chunks_exact(K * 4)
        .map(|row| {
            let mut out = [0u32; K];
            for (i, c) in row.chunks_exact(4).enumerate() {
                out[i] = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            }
            out
        })
        .collect())
}

fn decode_perm(
    section: &'static str,
    b: &[u8],
    triples: &[[u32; 3]],
) -> Result<Vec<u32>, StoreError> {
    let (count, rest) = section_count(section, b)?;
    if count != triples.len() {
        return Err(StoreError::BadSection {
            section,
            reason: format!("length {count} differs from triple count {}", triples.len()),
        });
    }
    let need = (count as u64) * 4;
    if need != rest.len() as u64 {
        return Err(StoreError::BadSection {
            section,
            reason: format!("payload is {} bytes, expected {need}", rest.len()),
        });
    }
    Ok(read_u32s(rest))
}

/// Decodes the triples section, checking id ranges and strict SPO
/// ascent block by block: each 512-row block is validated right after
/// it is copied out of the payload, while it is still cache-hot, so
/// the million-row table streams through the cache once, not twice.
fn decode_triples(b: &[u8], n: u32, p: u32) -> Result<Vec<[u32; 3]>, StoreError> {
    let section = "triples";
    let (count, rest) = section_count(section, b)?;
    let need = (count as u64) * 12;
    if need != rest.len() as u64 {
        return Err(StoreError::BadSection {
            section,
            reason: format!("payload is {} bytes, expected {need}", rest.len()),
        });
    }
    let mut out: Vec<[u32; 3]> = Vec::with_capacity(count);
    let mut prev: Option<(u64, u32)> = None;
    for block in rest.chunks(12 * 512) {
        let start = out.len();
        out.extend(block.chunks_exact(12).map(|row| {
            // Two word loads per row beat twelve byte loads.
            let sp = u64::from_le_bytes([
                row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[7],
            ]);
            let o = u32::from_le_bytes([row[8], row[9], row[10], row[11]]);
            [sp as u32, (sp >> 32) as u32, o]
        }));
        for t in &out[start..] {
            if t[0] >= n || t[2] >= n {
                return Err(StoreError::BadSection {
                    section,
                    reason: format!("node id out of range in [{}, {}, {}]", t[0], t[1], t[2]),
                });
            }
            if t[1] >= p {
                return Err(StoreError::BadSection {
                    section,
                    reason: format!("pred id {} out of range", t[1]),
                });
            }
            // Lexicographic SPO compares as ((s << 32) | p, o).
            let k = ((u64::from(t[0]) << 32) | u64::from(t[1]), t[2]);
            if let Some(prev) = prev {
                if prev >= k {
                    return Err(StoreError::BadSection {
                        section,
                        reason: "rows are not strictly ascending SPO".into(),
                    });
                }
            }
            prev = Some(k);
        }
    }
    Ok(out)
}

/// Validates both permutations against the triples.
///
/// Strictly ascending keys over unique triples imply the entries are
/// distinct and, with the range checks, make each a true permutation —
/// exactly the sort permutation the encoder wrote.
///
/// The check is a random gather per entry — the most expensive part
/// of decoding. Both permutations gather from the row table in the
/// same blocked loop: each is an independent stream of cache misses,
/// Validates both permutations against the triples: every index in
/// range and the gathered sort keys strictly ascending. The check is a
/// random gather per entry — the most expensive part of decoding — so
/// the hot path is a branchless multi-stream pass that only answers
/// valid/invalid; the sequential checker reruns on failure to name
/// exactly what is wrong (failure is cold, so the second pass is free).
fn validate_perms(pos: &[u32], osp: &[u32], triples: &[[u32; 3]]) -> Result<(), StoreError> {
    if triples.is_empty() {
        return Ok(()); // Lengths were already checked against 0.
    }
    if triples.len() >= 4 && validate_perms_fast(pos, osp, triples) {
        return Ok(());
    }
    validate_perm_precise("pos", pos, triples, pack_pos)?;
    validate_perm_precise("osp", osp, triples, pack_osp)
}

// Lexicographic (a, b, c) compares as the packed pair
// ((a << 32) | b, c): one u64 comparison usually decides.
fn pack_pos(t: &[u32; 3]) -> (u64, u32) {
    ((u64::from(t[1]) << 32) | u64::from(t[2]), t[0])
}
fn pack_osp(t: &[u32; 3]) -> (u64, u32) {
    ((u64::from(t[2]) << 32) | u64::from(t[1]), t[0])
}

/// Branchless eight-stream gather pass behind [`validate_perms`].
///
/// The gathers are random and latency-bound, so concurrent misses are
/// the whole game: each permutation is split into four segments whose
/// strict-ascent checks advance as independent load streams in one
/// lockstep loop (eight streams total), with the segment boundaries
/// compared afterwards. Out-of-range indexes are clamped so the loads
/// stay branch-free; the range violation itself still flips `bad`.
fn validate_perms_fast(pos: &[u32], osp: &[u32], triples: &[[u32; 3]]) -> bool {
    let n = triples.len();
    let m = n / 4;
    let last = n - 1;
    let (p0, r) = pos.split_at(m);
    let (p1, r) = r.split_at(m);
    let (p2, p3) = r.split_at(m);
    let (o0, r) = osp.split_at(m);
    let (o1, r) = r.split_at(m);
    let (o2, o3) = r.split_at(m);
    let segs_p = [p0, p1, p2, &p3[..m]];
    let segs_o = [o0, o1, o2, &o3[..m]];
    let mut bad = false;
    let mut prev_p = [(0u64, 0u32); 4];
    let mut prev_o = [(0u64, 0u32); 4];
    let mut first_p = [(0u64, 0u32); 4];
    let mut first_o = [(0u64, 0u32); 4];
    for s in 0..4 {
        let (ep, eo) = (segs_p[s][0], segs_o[s][0]);
        bad |= (ep as usize > last) | (eo as usize > last);
        first_p[s] = pack_pos(&triples[(ep as usize).min(last)]);
        first_o[s] = pack_osp(&triples[(eo as usize).min(last)]);
        prev_p[s] = first_p[s];
        prev_o[s] = first_o[s];
    }
    for j in 1..m {
        for s in 0..4 {
            let (ep, eo) = (segs_p[s][j], segs_o[s][j]);
            bad |= (ep as usize > last) | (eo as usize > last);
            let kp = pack_pos(&triples[(ep as usize).min(last)]);
            let ko = pack_osp(&triples[(eo as usize).min(last)]);
            bad |= (prev_p[s] >= kp) | (prev_o[s] >= ko);
            prev_p[s] = kp;
            prev_o[s] = ko;
        }
    }
    for (&ep, &eo) in p3[m..].iter().zip(&o3[m..]) {
        bad |= (ep as usize > last) | (eo as usize > last);
        let kp = pack_pos(&triples[(ep as usize).min(last)]);
        let ko = pack_osp(&triples[(eo as usize).min(last)]);
        bad |= (prev_p[3] >= kp) | (prev_o[3] >= ko);
        prev_p[3] = kp;
        prev_o[3] = ko;
    }
    for s in 0..3 {
        bad |= (prev_p[s] >= first_p[s + 1]) | (prev_o[s] >= first_o[s + 1]);
    }
    !bad
}

/// Sequential single-permutation check: small inputs and the cold
/// naming pass after [`validate_perms_fast`] rejects.
fn validate_perm_precise(
    section: &'static str,
    perm: &[u32],
    triples: &[[u32; 3]],
    pack: fn(&[u32; 3]) -> (u64, u32),
) -> Result<(), StoreError> {
    let mut prev: Option<(u64, u32)> = None;
    for &e in perm {
        let Some(t) = triples.get(e as usize) else {
            return Err(StoreError::BadSection {
                section,
                reason: format!("index {e} out of range"),
            });
        };
        let k = pack(t);
        if let Some(p) = prev {
            if p >= k {
                return Err(StoreError::BadSection {
                    section,
                    reason: "indexes are not in ascending key order".into(),
                });
            }
        }
        prev = Some(k);
    }
    Ok(())
}

/// Serializes a store to snapshot bytes. Deterministic: the same store
/// always encodes to the same bytes (the golden-test contract).
pub fn encode(store: &TripleStore) -> Vec<u8> {
    fn dict_payload(d: &Dict) -> Vec<u8> {
        let (blob, offsets) = d.parts();
        let mut out = Vec::with_capacity(4 + offsets.len() * 4 + blob.len());
        out.extend_from_slice(&(d.len() as u32).to_le_bytes());
        for &o in offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(blob.as_bytes());
        out
    }
    fn rows_payload<const K: usize>(rows: &[[u32; K]]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + rows.len() * K * 4);
        out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
        for row in rows {
            for v in row {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }
    fn perm_payload(perm: &[u32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + perm.len() * 4);
        out.extend_from_slice(&(perm.len() as u32).to_le_bytes());
        for v in perm {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
    let payloads: [Vec<u8>; 7] = [
        dict_payload(&store.nodes),
        dict_payload(&store.preds),
        dict_payload(&store.types),
        rows_payload(&store.triples),
        rows_payload(&store.node_types),
        perm_payload(&store.pos),
        perm_payload(&store.osp),
    ];
    let table_end = HEADER_LEN + SECTION_IDS.len() * TABLE_ENTRY_LEN;
    let total: usize = table_end + payloads.iter().map(Vec::len).sum::<usize>();
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder, patched below.
    out.extend_from_slice(&(SECTION_IDS.len() as u32).to_le_bytes());
    let mut offset = table_end as u64;
    for (i, p) in payloads.iter().enumerate() {
        out.extend_from_slice(&SECTION_IDS[i].to_le_bytes());
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        offset += p.len() as u64;
    }
    for p in &payloads {
        out.extend_from_slice(p);
    }
    let pos_offset = out.len() - payloads[5].len() - payloads[6].len();
    let crc = crc32(&out[HEADER_LEN..pos_offset]);
    out[8..12].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Deserializes and fully validates snapshot bytes.
///
/// # Errors
/// Every malformed input — truncation, wrong magic/version, checksum
/// mismatch, table or section violations — returns its named
/// [`StoreError`]; this function never panics on untrusted bytes.
pub fn decode(bytes: &[u8]) -> Result<TripleStore, StoreError> {
    let table = sections(bytes)?;
    let payload =
        |i: usize| &bytes[table[i].offset as usize..(table[i].offset + table[i].len) as usize];

    let nodes = decode_dict("nodes", payload(0))?;
    let preds = decode_dict("preds", payload(1))?;
    let types = decode_dict("types", payload(2))?;

    let (n, p) = (nodes.len() as u32, preds.len() as u32);
    let triples = decode_triples(payload(3), n, p)?;

    let node_types: Vec<[u32; 2]> = decode_rows("node_types", payload(4))?;
    let ty_count = types.len() as u32;
    let mut prev_node: Option<u32> = None;
    for r in &node_types {
        if r[0] >= n {
            return Err(StoreError::BadSection {
                section: "node_types",
                reason: format!("node id {} out of range", r[0]),
            });
        }
        if r[1] >= ty_count {
            return Err(StoreError::BadSection {
                section: "node_types",
                reason: format!("type id {} out of range", r[1]),
            });
        }
        if prev_node >= Some(r[0]) {
            return Err(StoreError::BadSection {
                section: "node_types",
                reason: "rows are not strictly ascending by node".into(),
            });
        }
        prev_node = Some(r[0]);
    }

    let pos = decode_perm("pos", payload(5), &triples)?;
    let osp = decode_perm("osp", payload(6), &triples)?;
    validate_perms(&pos, &osp, &triples)?;

    Ok(TripleStore::from_validated_parts(
        nodes, preds, types, triples, node_types, pos, osp,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreBuilder;

    fn tiny() -> TripleStore {
        let mut b = StoreBuilder::new();
        b.add_triple("paper1", "wb", "Alice");
        b.add_triple("paper1", "wb", "Bob");
        b.add_triple("paper2", "wb", "Bob");
        b.add_triple("paper2", "cites", "paper1");
        b.add_type("Alice", "Author").unwrap();
        b.add_type("paper1", "Paper").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn encode_decode_round_trips() {
        let s = tiny();
        let bytes = encode(&s);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, s);
        // Determinism: encoding the decoded store is byte-identical.
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn empty_store_round_trips() {
        let s = StoreBuilder::new().build().unwrap();
        let bytes = encode(&s);
        assert_eq!(decode(&bytes).unwrap(), s);
    }

    #[test]
    fn sections_report_the_layout() {
        let bytes = encode(&tiny());
        let table = sections(&bytes).unwrap();
        assert_eq!(table[0].name, "nodes");
        assert_eq!(table[0].offset, 156);
        assert_eq!(
            table[6].offset + table[6].len,
            bytes.len() as u64,
            "sections must tile the file"
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&tiny());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(StoreError::BadMagic));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode(&tiny());
        bytes[4] = 9;
        assert_eq!(
            decode(&bytes),
            Err(StoreError::UnsupportedVersion { found: 9 })
        );
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let bytes = encode(&tiny());
        let table = sections(&bytes).unwrap();
        // A flip inside the checksummed region (the nodes arena).
        let mut m = bytes.clone();
        m[table[0].offset as usize + 6] ^= 0xFF;
        assert!(matches!(
            decode(&m),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        // A flip past the checksummed region (the osp permutation) is
        // caught structurally instead: the perms are self-validating.
        let mut m = bytes;
        let last = m.len() - 1;
        m[last] ^= 0xFF;
        assert!(matches!(
            decode(&m),
            Err(StoreError::BadSection { section: "osp", .. })
        ));
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let bytes = encode(&tiny());
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).expect_err("truncated input must fail");
            // Any named error is fine; reaching here proves no panic.
            let _ = err.to_string();
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = encode(&tiny());
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0x01;
            assert!(decode(&m).is_err(), "flip at byte {i} must not decode");
        }
    }

    #[test]
    fn post_checksum_structure_violations_are_named() {
        // Rebuild valid snapshots with one surgical corruption each,
        // re-patching the CRC so validation reaches the section logic.
        let good = encode(&tiny());
        let table = sections(&good).unwrap();
        // None of the corruptions below move the pos section, so the
        // checksummed region's end is the one from the intact table.
        let pos_off = table[5].offset as usize;
        let repatch = |mut bytes: Vec<u8>| -> Vec<u8> {
            let crc = crate::crc32::crc32(&bytes[16..pos_off]);
            bytes[8..12].copy_from_slice(&crc.to_le_bytes());
            bytes
        };

        // Swap two bytes inside the nodes arena: labels out of order.
        let nodes = &table[0];
        let arena_start = nodes.offset as usize + nodes.len as usize - 2;
        let mut m = good.clone();
        m.swap(arena_start, arena_start + 1);
        let err = decode(&repatch(m)).unwrap_err();
        assert!(matches!(err, StoreError::BadSection { .. }));

        // Point a triple at a node id past the dictionary.
        let triples = &table[3];
        let first_row = triples.offset as usize + 4;
        let mut m = good.clone();
        m[first_row..first_row + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&repatch(m)).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::BadSection {
                    section: "triples",
                    ..
                }
            ),
            "{err}"
        );

        // Corrupt the POS permutation's first index.
        let pos = &table[5];
        let first = pos.offset as usize + 4;
        let mut m = good.clone();
        m[first..first + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode(&repatch(m)).unwrap_err();
        assert!(
            matches!(err, StoreError::BadSection { section: "pos", .. }),
            "{err}"
        );

        // Break section contiguity in the table.
        let mut m = good.clone();
        let off_field = 16 + 4; // first entry's offset field
        m[off_field] ^= 0x01;
        let err = decode(&repatch(m)).unwrap_err();
        assert!(matches!(err, StoreError::BadSectionTable { .. }), "{err}");
    }

    #[test]
    fn unicode_labels_survive_and_validate() {
        let mut b = StoreBuilder::new();
        b.add_triple("héllo", "práed", "wörld");
        b.add_type("héllo", "Tüp").unwrap();
        let s = b.build().unwrap();
        let bytes = encode(&s);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.nodes().lookup("héllo"), s.nodes().lookup("héllo"));
    }
}
