//! Named errors for store construction and snapshot decoding.
//!
//! Snapshot bytes are an untrusted input surface (files on disk, upload
//! bodies): every malformed input must surface as one of these variants,
//! never as a panic. The fuzz surface `store` and the committed corpus
//! under `tests/corpus/store/` hold that line.

use std::fmt;

use questpro_graph::GraphError;

/// Errors raised while building a [`TripleStore`](crate::TripleStore) or
/// decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The input ended before a complete header/field could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
    },
    /// The first four bytes are not the snapshot magic `QPST`.
    BadMagic,
    /// The header declares a format version this decoder does not speak.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The payload checksum does not match the header CRC-32.
    ChecksumMismatch {
        /// CRC-32 recorded in the header.
        expected: u32,
        /// CRC-32 of the actual payload bytes.
        actual: u32,
    },
    /// The section table is malformed (wrong ids, order, bounds, gaps).
    BadSectionTable {
        /// Description of the problem.
        reason: String,
    },
    /// A section payload failed validation.
    BadSection {
        /// Section name (e.g. `"nodes"`, `"triples"`, `"pos"`).
        section: &'static str,
        /// Description of the problem.
        reason: String,
    },
    /// A node was fed to the builder with two different types.
    ConflictingType {
        /// The node label.
        node: String,
        /// The type it already has.
        existing: String,
        /// The conflicting new type.
        requested: String,
    },
    /// A table outgrew the u32 id space.
    TooLarge {
        /// Which table overflowed.
        what: &'static str,
    },
    /// Assembling an `Ontology` from the store failed.
    Graph(GraphError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { what } => {
                write!(f, "truncated snapshot: unexpected end of input in {what}")
            }
            StoreError::BadMagic => write!(f, "bad magic: not a questpro store snapshot"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            StoreError::ChecksumMismatch { expected, actual } => write!(
                f,
                "checksum mismatch: header says {expected:#010x}, payload is {actual:#010x}"
            ),
            StoreError::BadSectionTable { reason } => {
                write!(f, "bad section table: {reason}")
            }
            StoreError::BadSection { section, reason } => {
                write!(f, "bad {section} section: {reason}")
            }
            StoreError::ConflictingType {
                node,
                existing,
                requested,
            } => write!(
                f,
                "node {node:?} already typed {existing:?}, cannot retype as {requested:?}"
            ),
            StoreError::TooLarge { what } => {
                write!(f, "store too large: {what} exceeds the u32 id space")
            }
            StoreError::Graph(e) => write!(f, "store -> ontology: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<GraphError> for StoreError {
    fn from(e: GraphError) -> Self {
        StoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_failure() {
        assert!(StoreError::BadMagic.to_string().contains("bad magic"));
        assert!(StoreError::Truncated { what: "header" }
            .to_string()
            .contains("truncated"));
        assert!(StoreError::UnsupportedVersion { found: 9 }
            .to_string()
            .contains("version 9"));
        let e = StoreError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("checksum mismatch"));
        let e = StoreError::BadSection {
            section: "triples",
            reason: "not sorted".into(),
        };
        assert!(e.to_string().contains("triples"));
        assert!(e.to_string().contains("not sorted"));
    }
}
