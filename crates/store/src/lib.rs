//! Persistent dictionary-encoded triple store for QuestPro-RS.
//!
//! Every other crate in the workspace treats an ontology as an in-memory
//! interned graph rebuilt from triple *text* on each load. That caps data
//! sizes far below the "millions of users" north star: re-parsing a
//! million-triple ontology costs seconds of hashing and allocation before
//! the first query can run. This crate is the scale unlock:
//!
//! * [`TripleStore`] — a dictionary-encoded columnar image of an
//!   ontology. Labels live in three sorted dictionaries ([`Dict`]) that
//!   assign **stable** dense u32 ids (ids depend only on the label set,
//!   never on insertion order, so two builds of the same data are
//!   byte-identical and snapshots are diffable). Triples are a flat
//!   `[u32; 3]` table in SPO order plus POS/OSP permutations, the same
//!   orientations `questpro-graph::columnar` serves to the matcher.
//! * [`StoreBuilder`] — streaming construction: feed it triples one at a
//!   time (e.g. from the `questpro-data` scale generators) without ever
//!   materializing the full text form.
//! * [`snapshot`] — a versioned, checksummed binary format (magic +
//!   format version + section table + CRC-32). Decoding is strict
//!   validation with named [`StoreError`]s and never panics on untrusted
//!   bytes; on trusted bytes it is a handful of bulk copies, so
//!   `questpro serve` cold-starts multi-million-triple ontologies in
//!   milliseconds.
//! * [`TripleStore::to_ontology`] — hands the store's arrays directly to
//!   `Ontology::assemble` / `ColumnarIndexes::from_sorted_parts`, so the
//!   engine-facing graph is assembled without re-interning or re-sorting.

pub mod crc32;
pub mod dict;
pub mod error;
pub mod snapshot;
pub mod store;
pub mod update;

pub use dict::Dict;
pub use error::StoreError;
pub use snapshot::{decode, encode, FORMAT_VERSION, MAGIC};
pub use store::{StoreBuilder, StoreStats, TripleStore};
