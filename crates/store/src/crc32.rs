//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! Snapshot decoding checksums the payload before trusting it, so the
//! checksum sits on the cold-start critical path. A plain
//! byte-at-a-time table CRC tops out around 400 MB/s; two tricks stack
//! to run several times faster while still producing the standard
//! CRC-32 any external tool can verify:
//!
//! * **Slice-by-N folding** — each stream folds eight (tail) or
//!   sixteen (stripes) bytes per table round, lookups whose chains the
//!   CPU overlaps.
//! * **Four-way striping** — one running CRC serializes at about one
//!   table lookup per cycle because every round depends on the last.
//!   Large inputs are split into four contiguous stripes whose CRCs
//!   advance independently in the same loop (filling both load ports),
//!   then merged with the standard GF(2) zero-extension operator
//!   (`combine`), which appends `len` zero bytes to a CRC in
//!   `O(log len)` 32x32 bit-matrix squarings.
//!
//! The thirty-two 256-entry tables (slice-by-16 across four streams
//! needs all of them) are computed at compile time.

const POLY: u32 = 0xEDB8_8320;

static TABLES: [[u32; 256]; 32] = build_tables();

const fn build_tables() -> [[u32; 256]; 32] {
    let mut t = [[0u32; 256]; 32];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut s = 1;
    while s < 32 {
        let mut i = 0;
        while i < 256 {
            let prev = t[s - 1][i];
            t[s][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        s += 1;
    }
    t
}

fn word(c: &[u8]) -> u64 {
    u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
}

/// One slice-by-16 round: folds 16 bytes into a running raw CRC.
fn fold16(crc: u32, c: &[u8]) -> u32 {
    let x = word(&c[0..8]) ^ u64::from(crc);
    let y = word(&c[8..16]);
    TABLES[15][(x & 0xFF) as usize]
        ^ TABLES[14][((x >> 8) & 0xFF) as usize]
        ^ TABLES[13][((x >> 16) & 0xFF) as usize]
        ^ TABLES[12][((x >> 24) & 0xFF) as usize]
        ^ TABLES[11][((x >> 32) & 0xFF) as usize]
        ^ TABLES[10][((x >> 40) & 0xFF) as usize]
        ^ TABLES[9][((x >> 48) & 0xFF) as usize]
        ^ TABLES[8][(x >> 56) as usize]
        ^ TABLES[7][(y & 0xFF) as usize]
        ^ TABLES[6][((y >> 8) & 0xFF) as usize]
        ^ TABLES[5][((y >> 16) & 0xFF) as usize]
        ^ TABLES[4][((y >> 24) & 0xFF) as usize]
        ^ TABLES[3][((y >> 32) & 0xFF) as usize]
        ^ TABLES[2][((y >> 40) & 0xFF) as usize]
        ^ TABLES[1][((y >> 48) & 0xFF) as usize]
        ^ TABLES[0][(y >> 56) as usize]
}

/// One slice-by-8 round: folds 8 bytes into a running raw CRC.
fn fold8(crc: u32, c: &[u8]) -> u32 {
    let x = word(c) ^ u64::from(crc);
    TABLES[7][(x & 0xFF) as usize]
        ^ TABLES[6][((x >> 8) & 0xFF) as usize]
        ^ TABLES[5][((x >> 16) & 0xFF) as usize]
        ^ TABLES[4][((x >> 24) & 0xFF) as usize]
        ^ TABLES[3][((x >> 32) & 0xFF) as usize]
        ^ TABLES[2][((x >> 40) & 0xFF) as usize]
        ^ TABLES[1][((x >> 48) & 0xFF) as usize]
        ^ TABLES[0][(x >> 56) as usize]
}

/// Raw (pre-init already applied, no final xor) CRC of `bytes`.
fn raw(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(32);
    for c in chunks.by_ref() {
        // Four dependent rounds per iteration amortize loop overhead.
        crc = fold8(crc, &c[0..8]);
        crc = fold8(crc, &c[8..16]);
        crc = fold8(crc, &c[16..24]);
        crc = fold8(crc, &c[24..32]);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc
}

/// Multiplies the GF(2) 32x32 matrix `mat` by the bit-vector `vec`.
fn gf2_times(mat: &[u32; 32], mut vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while vec != 0 {
        if vec & 1 != 0 {
            sum ^= mat[i];
        }
        vec >>= 1;
        i += 1;
    }
    sum
}

/// Squares a GF(2) matrix: `sq = mat * mat`.
fn gf2_square(sq: &mut [u32; 32], mat: &[u32; 32]) {
    for n in 0..32 {
        sq[n] = gf2_times(mat, mat[n]);
    }
}

/// CRC of `A || B` given `crc(A)`, `crc(B)`, and `len(B)` — zlib's
/// `crc32_combine`: advance `crc1` past `len2` zero bytes with repeated
/// operator squarings, then xor in `crc2`.
fn combine(mut crc1: u32, crc2: u32, mut len2: u64) -> u32 {
    if len2 == 0 {
        return crc1;
    }
    let mut even = [0u32; 32];
    let mut odd = [0u32; 32];
    // Operator for one zero bit (reflected).
    odd[0] = POLY;
    let mut row = 1u32;
    for slot in odd.iter_mut().skip(1) {
        *slot = row;
        row <<= 1;
    }
    gf2_square(&mut even, &odd); // two bits
    gf2_square(&mut odd, &even); // four bits
    loop {
        gf2_square(&mut even, &odd); // first pass: one zero byte
        if len2 & 1 != 0 {
            crc1 = gf2_times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        gf2_square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = gf2_times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

/// Below this the striping + combine overhead outweighs the ILP win.
const STRIPE_THRESHOLD: usize = 4096;

/// CRC-32 of `bytes` (standard init/final xor of `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    if bytes.len() < STRIPE_THRESHOLD {
        return !raw(!0u32, bytes);
    }
    // Four contiguous stripes; the first three share one 16-byte-aligned
    // length so the hot loop needs no per-stripe bounds logic.
    let l = (bytes.len() / 4) & !15;
    let (a, rest) = bytes.split_at(l);
    let (b, rest) = rest.split_at(l);
    let (c, d) = rest.split_at(l);
    let (mut ca, mut cb, mut cc, mut cd) = (!0u32, 0, 0, 0);
    for i in (0..l).step_by(16) {
        ca = fold16(ca, &a[i..i + 16]);
        cb = fold16(cb, &b[i..i + 16]);
        cc = fold16(cc, &c[i..i + 16]);
        cd = fold16(cd, &d[i..i + 16]);
    }
    let crc = combine(ca, cb, l as u64);
    let crc = combine(crc, cc, l as u64);
    let crc = combine(crc, raw(cd, &d[l..]), d.len() as u64);
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference byte-at-a-time implementation over the same table.
    fn reference(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        !crc
    }

    fn noise(len: usize) -> Vec<u8> {
        let mut data = Vec::with_capacity(len);
        let mut x = 0x9E37_79B9u32;
        for _ in 0..len {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            data.push((x >> 24) as u8);
        }
        data
    }

    #[test]
    fn matches_the_ieee_check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn short_path_agrees_with_bytewise_reference() {
        let data = noise(4099);
        for len in [0, 1, 7, 8, 9, 31, 32, 33, 255, 1024, 4095] {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn striped_path_agrees_with_bytewise_reference() {
        // Cover the stripe threshold and awkward remainders.
        for len in [4096, 4097, 4103, 8192, 20000, 65543] {
            let data = noise(len);
            assert_eq!(crc32(&data), reference(&data), "len {len}");
        }
    }

    #[test]
    fn combine_splices_crcs_exactly() {
        let data = noise(10007);
        let whole = crc32(&data);
        for split in [0, 1, 8, 4096, 5000, 10006, 10007] {
            let (a, b) = data.split_at(split);
            let got = combine(crc32(a), crc32(b), b.len() as u64);
            assert_eq!(got, whole, "split {split}");
        }
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"questpro"), crc32(b"questprO"));
    }
}
