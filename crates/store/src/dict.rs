//! Sorted label dictionaries with stable dense ids.
//!
//! A [`Dict`] maps label strings to dense `u32` ids and back. Unlike the
//! insertion-ordered `Interner` in `questpro-graph`, ids here are the
//! **rank of the label in sorted order**. That buys two properties the
//! persistent store needs:
//!
//! * **Stable ids** — the id of a label depends only on the label *set*,
//!   not on the order triples were fed in, so two builds over the same
//!   data produce byte-identical snapshots (diffable, golden-testable).
//! * **No decode-time hashing** — label→id lookup is a binary search
//!   over the sorted table, so loading a snapshot never has to populate
//!   a hash map before the store is queryable.
//!
//! Labels are stored as one contiguous UTF-8 arena plus an offset
//! column. Decoding a snapshot dictionary is therefore two bulk copies,
//! not one allocation per label.

/// An immutable sorted dictionary: id `i` is the `i`-th smallest label.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dict {
    /// All labels concatenated in ascending order.
    blob: String,
    /// `len() + 1` offsets into `blob`; label `i` is
    /// `blob[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
}

impl Dict {
    /// Builds a dictionary from labels that are already **strictly
    /// ascending** (sorted and deduplicated). Returns `None` otherwise,
    /// or when the arena would overflow the u32 offset space.
    pub fn from_sorted<I, S>(labels: I) -> Option<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut blob = String::new();
        let mut offsets = vec![0u32];
        let mut prev_start = usize::MAX;
        for label in labels {
            let label = label.as_ref();
            if prev_start != usize::MAX {
                let prev = &blob[prev_start..];
                if prev >= label {
                    return None;
                }
            }
            prev_start = blob.len();
            blob.push_str(label);
            offsets.push(u32::try_from(blob.len()).ok()?);
        }
        u32::try_from(offsets.len() - 1).ok()?;
        Some(Self { blob, offsets })
    }

    /// Assembles a dictionary from a pre-validated arena + offset column
    /// (the snapshot decoder's zero-rebuild path). The caller must have
    /// checked: `offsets` starts at 0, is monotone, ends at `blob.len()`,
    /// every cut is a char boundary, and labels strictly ascend.
    pub(crate) fn from_validated_parts(blob: String, offsets: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().expect("nonempty") as usize, blob.len());
        Self { blob, offsets }
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the dictionary holds no labels.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// The label with id `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn label(&self, i: u32) -> &str {
        let lo = self.offsets[i as usize] as usize;
        let hi = self.offsets[i as usize + 1] as usize;
        &self.blob[lo..hi]
    }

    /// The label with id `i`, if in range.
    pub fn try_label(&self, i: u32) -> Option<&str> {
        if (i as usize) < self.len() {
            Some(self.label(i))
        } else {
            None
        }
    }

    /// The id of `label`, by binary search over the sorted table.
    pub fn lookup(&self, label: &str) -> Option<u32> {
        let mut lo = 0usize;
        let mut hi = self.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.label(mid as u32).cmp(label) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Some(mid as u32),
            }
        }
        None
    }

    /// Iterates labels in id (= sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        (0..self.len() as u32).map(|i| self.label(i))
    }

    /// The raw arena and offset column (for snapshot encoding).
    pub(crate) fn parts(&self) -> (&str, &[u32]) {
        (&self.blob, &self.offsets)
    }

    /// Total arena bytes (for `store inspect` size reporting).
    pub fn arena_bytes(&self) -> usize {
        self.blob.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_assigns_rank_ids() {
        let d = Dict::from_sorted(["Alice", "Bob", "paper1"]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.label(0), "Alice");
        assert_eq!(d.label(2), "paper1");
        assert_eq!(d.lookup("Bob"), Some(1));
        assert_eq!(d.lookup("Carol"), None);
        assert_eq!(d.try_label(3), None);
        let labels: Vec<_> = d.iter().collect();
        assert_eq!(labels, vec!["Alice", "Bob", "paper1"]);
    }

    #[test]
    fn rejects_unsorted_and_duplicate_labels() {
        assert!(Dict::from_sorted(["b", "a"]).is_none());
        assert!(Dict::from_sorted(["a", "a"]).is_none());
    }

    #[test]
    fn empty_dict_is_fine() {
        let d = Dict::from_sorted(Vec::<&str>::new()).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.lookup("x"), None);
    }

    #[test]
    fn lookup_hits_every_label_in_a_large_dict() {
        let labels: Vec<String> = (0..1000).map(|i| format!("label_{i:04}")).collect();
        let d = Dict::from_sorted(&labels).unwrap();
        for (i, l) in labels.iter().enumerate() {
            assert_eq!(d.lookup(l), Some(i as u32));
        }
    }
}
