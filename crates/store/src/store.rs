//! The dictionary-encoded triple store and its streaming builder.
//!
//! A [`TripleStore`] is the persistent, id-encoded image of an ontology:
//! three sorted label dictionaries (nodes, predicates, types), a triple
//! table `[s, p, o]` in ascending **SPO** order, and two permutation
//! columns giving the same triples in **POS** and **OSP** order. Those
//! are exactly the orientations the matcher's candidate filtering needs
//! ("outgoing `p`-edges of `s`", "incoming `p`-edges of `o`", "all
//! `p`-triples"), each answerable by binary search over a contiguous
//! span — and they map 1:1 onto `questpro-graph`'s columnar CSR arrays,
//! so [`TripleStore::to_ontology`] assembles a full engine-facing
//! `Ontology` without re-sorting anything.
//!
//! Id assignment is **stable**: ids are sorted-label ranks (see
//! [`Dict`]), so the encoded form depends only on the triple *set*.
//! Feeding the same data in any order yields byte-identical snapshots.

use questpro_graph::fxhash::FxHashMap;
use questpro_graph::{
    ColumnarIndexes, EdgeData, EdgeId, Interner, NodeData, NodeId, Ontology, PredId, PredStats,
    TypeId, ValueId,
};

use crate::dict::Dict;
use crate::error::StoreError;

/// Sentinel in the builder's per-node type column: "no type declared".
const NO_TYPE: u32 = u32::MAX;

/// Size/count summary printed by `questpro store inspect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct node labels.
    pub nodes: usize,
    /// Distinct predicate labels.
    pub preds: usize,
    /// Distinct type labels.
    pub types: usize,
    /// Triples (edges).
    pub triples: usize,
    /// Nodes carrying a type declaration.
    pub typed_nodes: usize,
    /// Total bytes of label text across the three dictionaries.
    pub label_bytes: usize,
}

/// An immutable dictionary-encoded triple store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TripleStore {
    pub(crate) nodes: Dict,
    pub(crate) preds: Dict,
    pub(crate) types: Dict,
    /// `[s, p, o]` rows in strictly ascending lexicographic order.
    pub(crate) triples: Vec<[u32; 3]>,
    /// `[node, type]` rows, strictly ascending by node (one type each).
    pub(crate) node_types: Vec<[u32; 2]>,
    /// Triple indexes in ascending `(p, o, s)` order.
    pub(crate) pos: Vec<u32>,
    /// Triple indexes in ascending `(o, p, s)` order.
    pub(crate) osp: Vec<u32>,
}

impl TripleStore {
    /// The node-label dictionary.
    pub fn nodes(&self) -> &Dict {
        &self.nodes
    }

    /// The predicate-label dictionary.
    pub fn preds(&self) -> &Dict {
        &self.preds
    }

    /// The type-label dictionary.
    pub fn types(&self) -> &Dict {
        &self.types
    }

    /// The SPO-ordered triple table.
    pub fn triples(&self) -> &[[u32; 3]] {
        &self.triples
    }

    /// `[node, type]` declarations, ascending by node id.
    pub fn node_types(&self) -> &[[u32; 2]] {
        &self.node_types
    }

    /// Triple indexes in `(p, o, s)` order.
    pub fn pos(&self) -> &[u32] {
        &self.pos
    }

    /// Triple indexes in `(o, p, s)` order.
    pub fn osp(&self) -> &[u32] {
        &self.osp
    }

    /// Number of triples.
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }

    /// Count/size summary for `store inspect`.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            nodes: self.nodes.len(),
            preds: self.preds.len(),
            types: self.types.len(),
            triples: self.triples.len(),
            typed_nodes: self.node_types.len(),
            label_bytes: self.nodes.arena_bytes()
                + self.preds.arena_bytes()
                + self.types.arena_bytes(),
        }
    }

    /// All triples `(s, p, *)` — the matcher's "outgoing `p`-edges of
    /// `s`" question — as a contiguous SPO span found by binary search.
    pub fn out_span(&self, s: u32, p: u32) -> &[[u32; 3]] {
        let lo = self.triples.partition_point(|t| (t[0], t[1]) < (s, p));
        let hi = self.triples.partition_point(|t| (t[0], t[1]) <= (s, p));
        &self.triples[lo..hi]
    }

    /// All triples `(*, p, o)` — "incoming `p`-edges of `o`" — via the
    /// OSP permutation, in ascending subject order.
    pub fn in_span(&self, o: u32, p: u32) -> impl Iterator<Item = [u32; 3]> + '_ {
        let key = move |e: u32| {
            let t = self.triples[e as usize];
            (t[2], t[1])
        };
        let lo = self.osp.partition_point(|&e| key(e) < (o, p));
        let hi = self.osp.partition_point(|&e| key(e) <= (o, p));
        self.osp[lo..hi].iter().map(|&e| self.triples[e as usize])
    }

    /// Number of `p`-triples, from the POS permutation span.
    pub fn pred_cardinality(&self, p: u32) -> usize {
        let key = |e: u32| self.triples[e as usize][1];
        let lo = self.pos.partition_point(|&e| key(e) < p);
        let hi = self.pos.partition_point(|&e| key(e) <= p);
        hi - lo
    }

    /// The declared type of node `n`, if any.
    pub fn node_type(&self, n: u32) -> Option<u32> {
        let i = self.node_types.partition_point(|r| r[0] < n);
        match self.node_types.get(i) {
            Some(&[node, ty]) if node == n => Some(ty),
            _ => None,
        }
    }

    /// Encodes an existing interned ontology into a store.
    ///
    /// # Errors
    /// Fails only if the ontology outgrows the u32 id space.
    pub fn from_ontology(o: &Ontology) -> Result<Self, StoreError> {
        let mut b = StoreBuilder::new();
        for n in o.node_ids() {
            b.add_node(o.value_str(n));
            if let Some(t) = o.node_type(n) {
                b.add_type(o.value_str(n), o.type_str(t))?;
            }
        }
        for e in o.edge_ids() {
            let d = o.edge(e);
            b.add_triple(o.value_str(d.src), o.pred_str(d.pred), o.value_str(d.dst));
        }
        b.build()
    }

    /// Assembles a full engine-facing [`Ontology`] from the store.
    ///
    /// This is the snapshot fast path: the SPO table *is* the edge table
    /// (edge id = SPO rank), so the columnar out-columns are an identity
    /// mapping and the in-columns are the OSP permutation; per-predicate
    /// statistics fall out of two linear run-length scans. Nothing is
    /// re-sorted and no label is hashed: the sorted dictionaries hand
    /// their arenas to [`Interner::from_sorted_labels`] in one copy.
    ///
    /// # Errors
    /// Fails only on invariant violations, which validated stores
    /// (builder- or snapshot-produced) cannot exhibit.
    pub fn to_ontology(&self) -> Result<Ontology, StoreError> {
        let values = Interner::from_sorted_labels(self.nodes.iter(), self.nodes.arena_bytes())
            .ok_or(StoreError::BadSection {
                section: "nodes",
                reason: "labels not strictly ascending".into(),
            })?;
        let preds = Interner::from_sorted_labels(self.preds.iter(), self.preds.arena_bytes())
            .ok_or(StoreError::BadSection {
                section: "preds",
                reason: "labels not strictly ascending".into(),
            })?;
        let types = Interner::from_sorted_labels(self.types.iter(), self.types.arena_bytes())
            .ok_or(StoreError::BadSection {
                section: "types",
                reason: "labels not strictly ascending".into(),
            })?;
        let n = self.nodes.len();
        let m = self.triples.len();

        let mut nodes: Vec<NodeData> = (0..n as u32)
            .map(|i| NodeData {
                value: ValueId::new(i),
                ty: None,
            })
            .collect();
        for &[node, ty] in &self.node_types {
            nodes[node as usize].ty = Some(TypeId::new(ty));
        }
        let edges: Vec<EdgeData> = self
            .triples
            .iter()
            .map(|t| EdgeData {
                src: NodeId::new(t[0]),
                dst: NodeId::new(t[2]),
                pred: PredId::new(t[1]),
            })
            .collect();

        // Out-columns: SPO order groups edges by subject and sorts each
        // span by (pred, object) = (pred, edge id). Identity mapping.
        let mut out_off = vec![0u32; n + 1];
        for t in &self.triples {
            out_off[t[0] as usize + 1] += 1;
        }
        for i in 0..n {
            out_off[i + 1] += out_off[i];
        }
        let out_sorted: Vec<EdgeId> = (0..m as u32).map(EdgeId::new).collect();
        let out_preds: Vec<PredId> = self.triples.iter().map(|t| PredId::new(t[1])).collect();

        // In-columns: OSP order groups by object, sorts by (pred, subj)
        // = (pred, edge id). The permutation is the column.
        let mut in_off = vec![0u32; n + 1];
        for t in &self.triples {
            in_off[t[2] as usize + 1] += 1;
        }
        for i in 0..n {
            in_off[i + 1] += in_off[i];
        }
        let in_sorted: Vec<EdgeId> = self.osp.iter().map(|&e| EdgeId::new(e)).collect();
        let in_preds: Vec<PredId> = self
            .osp
            .iter()
            .map(|&e| PredId::new(self.triples[e as usize][1]))
            .collect();

        // Stats: (s, p) runs are contiguous in SPO, (p, o) runs in POS.
        let mut stats = vec![PredStats::default(); self.preds.len()];
        let mut prev_sp: Option<(u32, u32)> = None;
        for t in &self.triples {
            let st = &mut stats[t[1] as usize];
            st.cardinality += 1;
            if prev_sp != Some((t[0], t[1])) {
                st.distinct_subjects += 1;
                prev_sp = Some((t[0], t[1]));
            }
        }
        let mut prev_po: Option<(u32, u32)> = None;
        for &e in &self.pos {
            let t = self.triples[e as usize];
            if prev_po != Some((t[1], t[2])) {
                stats[t[1] as usize].distinct_objects += 1;
                prev_po = Some((t[1], t[2]));
            }
        }

        let columnar = ColumnarIndexes::from_sorted_parts(
            out_sorted, out_preds, out_off, in_sorted, in_preds, in_off, stats,
        );
        Ontology::assemble(values, preds, types, nodes, edges, Some(columnar))
            .map_err(StoreError::Graph)
    }

    /// Internal constructor for the snapshot decoder; every field must
    /// already satisfy the store invariants.
    pub(crate) fn from_validated_parts(
        nodes: Dict,
        preds: Dict,
        types: Dict,
        triples: Vec<[u32; 3]>,
        node_types: Vec<[u32; 2]>,
        pos: Vec<u32>,
        osp: Vec<u32>,
    ) -> Self {
        Self {
            nodes,
            preds,
            types,
            triples,
            node_types,
            pos,
            osp,
        }
    }
}

/// Streaming construction of a [`TripleStore`].
///
/// Labels are interned with provisional insertion-order ids; [`build`]
/// remaps everything to stable sorted-rank ids, sorts and deduplicates
/// the triple table, and derives the POS/OSP permutations. Feed order is
/// therefore irrelevant to the output — the property the scale
/// generators and snapshot diffing rely on.
///
/// [`build`]: StoreBuilder::build
#[derive(Debug, Default)]
pub struct StoreBuilder {
    node_ids: FxHashMap<Box<str>, u32>,
    node_labels: Vec<Box<str>>,
    node_type: Vec<u32>,
    pred_ids: FxHashMap<Box<str>, u32>,
    pred_labels: Vec<Box<str>>,
    type_ids: FxHashMap<Box<str>, u32>,
    type_labels: Vec<Box<str>>,
    triples: Vec<[u32; 3]>,
}

fn intern(ids: &mut FxHashMap<Box<str>, u32>, labels: &mut Vec<Box<str>>, s: &str) -> u32 {
    if let Some(&i) = ids.get(s) {
        return i;
    }
    // One below the NO_TYPE sentinel so the type column stays unambiguous.
    let i = u32::try_from(labels.len()).expect("store dictionary overflow");
    assert!(i < NO_TYPE, "store dictionary overflow");
    let boxed: Box<str> = s.into();
    labels.push(boxed.clone());
    ids.insert(boxed, i);
    i
}

impl StoreBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `label` as a node (needed explicitly only for isolated
    /// nodes; triple endpoints are added automatically).
    pub fn add_node(&mut self, label: &str) -> u32 {
        let i = intern(&mut self.node_ids, &mut self.node_labels, label);
        if self.node_type.len() <= i as usize {
            self.node_type.push(NO_TYPE);
        }
        i
    }

    /// Adds the triple `(s, p, o)`; duplicates are deduplicated at
    /// [`build`](StoreBuilder::build) time.
    pub fn add_triple(&mut self, s: &str, p: &str, o: &str) {
        let si = self.add_node(s);
        let oi = self.add_node(o);
        let pi = intern(&mut self.pred_ids, &mut self.pred_labels, p);
        self.triples.push([si, pi, oi]);
    }

    /// Declares `node` to have type `ty`.
    ///
    /// # Errors
    /// Fails if the node already carries a different type.
    pub fn add_type(&mut self, node: &str, ty: &str) -> Result<(), StoreError> {
        let n = self.add_node(node);
        let t = intern(&mut self.type_ids, &mut self.type_labels, ty);
        match self.node_type[n as usize] {
            NO_TYPE => {
                self.node_type[n as usize] = t;
                Ok(())
            }
            existing if existing == t => Ok(()),
            existing => Err(StoreError::ConflictingType {
                node: node.to_string(),
                existing: self.type_labels[existing as usize].to_string(),
                requested: ty.to_string(),
            }),
        }
    }

    /// Triples fed so far (before deduplication).
    pub fn triple_count(&self) -> usize {
        self.triples.len()
    }

    /// Finalizes the store: remaps to sorted-rank ids, sorts and
    /// deduplicates the triple table, derives POS/OSP.
    ///
    /// # Errors
    /// Fails if the triple table outgrows the u32 index space.
    pub fn build(self) -> Result<TripleStore, StoreError> {
        fn rank_map(labels: &[Box<str>]) -> (Vec<u32>, Vec<&str>) {
            let mut perm: Vec<u32> = (0..labels.len() as u32).collect();
            perm.sort_unstable_by(|&a, &b| labels[a as usize].cmp(&labels[b as usize]));
            let mut rank = vec![0u32; labels.len()];
            let mut sorted = Vec::with_capacity(labels.len());
            for (new, &old) in perm.iter().enumerate() {
                rank[old as usize] = new as u32;
                sorted.push(&*labels[old as usize]);
            }
            (rank, sorted)
        }
        let (node_rank, node_sorted) = rank_map(&self.node_labels);
        let (pred_rank, pred_sorted) = rank_map(&self.pred_labels);
        let (type_rank, type_sorted) = rank_map(&self.type_labels);
        let nodes = Dict::from_sorted(node_sorted).ok_or(StoreError::TooLarge {
            what: "node dictionary",
        })?;
        let preds = Dict::from_sorted(pred_sorted).ok_or(StoreError::TooLarge {
            what: "predicate dictionary",
        })?;
        let types = Dict::from_sorted(type_sorted).ok_or(StoreError::TooLarge {
            what: "type dictionary",
        })?;

        let mut triples: Vec<[u32; 3]> = self
            .triples
            .iter()
            .map(|t| {
                [
                    node_rank[t[0] as usize],
                    pred_rank[t[1] as usize],
                    node_rank[t[2] as usize],
                ]
            })
            .collect();
        triples.sort_unstable();
        triples.dedup();
        let m = u32::try_from(triples.len()).map_err(|_| StoreError::TooLarge {
            what: "triple table",
        })?;

        let mut node_types: Vec<[u32; 2]> = self
            .node_type
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != NO_TYPE)
            .map(|(n, &t)| [node_rank[n], type_rank[t as usize]])
            .collect();
        node_types.sort_unstable();

        let mut pos: Vec<u32> = (0..m).collect();
        pos.sort_unstable_by_key(|&e| {
            let t = triples[e as usize];
            (t[1], t[2], t[0])
        });
        let mut osp: Vec<u32> = (0..m).collect();
        osp.sort_unstable_by_key(|&e| {
            let t = triples[e as usize];
            (t[2], t[1], t[0])
        });

        Ok(TripleStore {
            nodes,
            preds,
            types,
            triples,
            node_types,
            pos,
            osp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TripleStore {
        let mut b = StoreBuilder::new();
        b.add_triple("paper1", "wb", "Alice");
        b.add_triple("paper1", "wb", "Bob");
        b.add_triple("paper2", "wb", "Bob");
        b.add_triple("paper2", "cites", "paper1");
        b.add_type("Alice", "Author").unwrap();
        b.add_type("paper1", "Paper").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn ids_are_stable_under_insertion_order() {
        let a = tiny();
        let mut b = StoreBuilder::new();
        // Same data, different feed order, plus a duplicate triple.
        b.add_type("paper1", "Paper").unwrap();
        b.add_triple("paper2", "cites", "paper1");
        b.add_triple("paper2", "wb", "Bob");
        b.add_triple("paper1", "wb", "Bob");
        b.add_triple("paper1", "wb", "Alice");
        b.add_triple("paper1", "wb", "Alice");
        b.add_type("Alice", "Author").unwrap();
        let b = b.build().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn triples_are_sorted_and_permutations_cover() {
        let s = tiny();
        assert!(s.triples.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.pos.len(), s.triples.len());
        assert_eq!(s.osp.len(), s.triples.len());
        let key_pos = |e: u32| {
            let t = s.triples[e as usize];
            (t[1], t[2], t[0])
        };
        assert!(s.pos.windows(2).all(|w| key_pos(w[0]) < key_pos(w[1])));
        let key_osp = |e: u32| {
            let t = s.triples[e as usize];
            (t[2], t[1], t[0])
        };
        assert!(s.osp.windows(2).all(|w| key_osp(w[0]) < key_osp(w[1])));
    }

    #[test]
    fn spans_answer_the_matcher_questions() {
        let s = tiny();
        let paper1 = s.nodes.lookup("paper1").unwrap();
        let bob = s.nodes.lookup("Bob").unwrap();
        let wb = s.preds.lookup("wb").unwrap();
        let cites = s.preds.lookup("cites").unwrap();
        assert_eq!(s.out_span(paper1, wb).len(), 2);
        assert_eq!(s.out_span(paper1, cites).len(), 0);
        assert_eq!(s.in_span(bob, wb).count(), 2);
        assert_eq!(s.in_span(paper1, cites).count(), 1);
        assert_eq!(s.pred_cardinality(wb), 3);
        assert_eq!(s.pred_cardinality(cites), 1);
        let alice = s.nodes.lookup("Alice").unwrap();
        let author = s.types.lookup("Author").unwrap();
        assert_eq!(s.node_type(alice), Some(author));
        assert_eq!(s.node_type(bob), None);
    }

    #[test]
    fn conflicting_types_are_rejected() {
        let mut b = StoreBuilder::new();
        b.add_type("Alice", "Author").unwrap();
        b.add_type("Alice", "Author").unwrap();
        let err = b.add_type("Alice", "Paper").unwrap_err();
        assert!(matches!(err, StoreError::ConflictingType { .. }));
    }

    #[test]
    fn ontology_round_trip_preserves_structure() {
        let mut b = Ontology::builder();
        b.edge("paper1", "wb", "Alice").unwrap();
        b.edge("paper1", "wb", "Bob").unwrap();
        b.edge("paper2", "cites", "paper1").unwrap();
        b.typed_node("Alice", "Author").unwrap();
        b.node("lonely");
        let o = b.build();
        let s = TripleStore::from_ontology(&o).unwrap();
        let o2 = s.to_ontology().unwrap();
        assert_eq!(o2.node_count(), o.node_count());
        assert_eq!(o2.edge_count(), o.edge_count());
        assert!(o2.validate().is_ok());
        // Isolated nodes and types survive.
        assert!(o2.node_by_value("lonely").is_some());
        let alice = o2.node_by_value("Alice").unwrap();
        assert_eq!(o2.type_str(o2.node_type(alice).unwrap()), "Author");
        // Re-encoding the assembled ontology reproduces the same store.
        assert_eq!(TripleStore::from_ontology(&o2).unwrap(), s);
    }

    #[test]
    fn to_ontology_columnar_matches_rebuilt_columnar() {
        let s = tiny();
        let o = s.to_ontology().unwrap();
        // The handed-over columns must agree with a from-scratch build.
        let rebuilt = o.rebuild_columnar();
        for n in o.node_ids() {
            for p in 0..o.pred_count() {
                let p = PredId::from_usize(p);
                assert_eq!(o.out_edges_with_pred(n, p), rebuilt.out_with_pred(n, p));
                assert_eq!(o.in_edges_with_pred(n, p), rebuilt.in_with_pred(n, p));
            }
        }
        for p in 0..o.pred_count() {
            let p = PredId::from_usize(p);
            assert_eq!(o.pred_stats(p), rebuilt.pred_stats(p));
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let s = StoreBuilder::new().build().unwrap();
        assert_eq!(s.triple_count(), 0);
        let o = s.to_ontology().unwrap();
        assert_eq!(o.node_count(), 0);
        assert_eq!(o.edge_count(), 0);
    }

    #[test]
    fn stats_summarize_counts() {
        let st = tiny().stats();
        assert_eq!(st.nodes, 4);
        assert_eq!(st.preds, 2);
        assert_eq!(st.types, 2);
        assert_eq!(st.triples, 4);
        assert_eq!(st.typed_nodes, 2);
        assert!(st.label_bytes > 0);
    }
}
