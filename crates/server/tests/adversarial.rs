//! Adversarial socket battery.
//!
//! Every test here plays a hostile or broken client against a live
//! server over raw `TcpStream`s: slow-loris trickles, mid-request
//! disconnects, deep pipelines, oversized heads, and silent idlers.
//! The contract under test is uniform — each abuse ends in a *named*
//! 4xx or a classified timeout close, the connection slot is
//! reclaimed, and the server keeps answering `/healthz` afterwards.
//! Nothing here may panic the process or wedge the event loop.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use questpro_server::{start, ServerConfig, ServerHandle};

/// A server with deliberately twitchy timeouts so loris/idle tests
/// run in milliseconds, not the production five seconds.
fn boot_twitchy() -> ServerHandle {
    start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue: 16,
        max_body: 64 * 1024,
        read_timeout_ms: 300,
        write_timeout_ms: 1_000,
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port")
}

/// One request on a fresh connection; returns `(status, body)`.
fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: adv\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("writing the request");
    read_response(&mut BufReader::new(stream)).expect("a parseable response")
}

/// Parses one `(status, body)` response off the reader; `None` when
/// the peer closed before a status line arrived.
fn read_response(reader: &mut impl BufRead) -> Option<(u16, String)> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).ok()?;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().ok()?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).ok()?;
    Some((status, String::from_utf8(body).ok()?))
}

/// The server must still answer cleanly on a *fresh* connection —
/// the after-every-abuse invariant.
fn assert_healthy(addr: SocketAddr) {
    let (status, body) = call(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "server must stay healthy, got {body}");
}

/// Scrapes one counter/gauge value off `/metrics`.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, scrape) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    scrape
        .lines()
        .find_map(|l| l.strip_prefix(name)?.trim().parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from scrape"))
}

/// Polls a metric until it reaches at least `want` (event-loop ticks
/// run every 50ms; deadlines are not instant).
fn await_metric_at_least(addr: SocketAddr, name: &str, want: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let got = metric(addr, name);
        if got >= want || Instant::now() > deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn slow_loris_gets_a_named_408_not_a_held_slot() {
    let server = boot_twitchy();
    let addr = server.addr();
    let before = metric(addr, "questpro_http_request_timeouts_total");

    // Trickle a valid request one byte at a time, always staying
    // inside the per-byte pace a naive "reset on every byte" timeout
    // would tolerate. The deadline is pinned to the *first* byte, so
    // the trickle must still die with a named 408.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = b"GET /healthz HTTP/1.1\r\nHost: loris\r\n";
    let started = Instant::now();
    let mut sent_all = true;
    for &b in head.iter() {
        if stream.write_all(&[b]).is_err() {
            sent_all = false; // server already gave up on us — fine
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
        if started.elapsed() > Duration::from_secs(5) {
            break; // safety valve; the 300ms deadline fired long ago
        }
    }
    let response = read_response(&mut BufReader::new(&mut stream));
    if let Some((status, body)) = response {
        assert_eq!(status, 408, "a loris earns a named timeout: {body}");
        assert!(body.contains("timed out"), "{body}");
    } else {
        // The 408 write can race the close; the RST eating the
        // response is acceptable only if the timeout was counted.
        assert!(!sent_all || started.elapsed() > Duration::from_millis(300));
    }
    let after = await_metric_at_least(addr, "questpro_http_request_timeouts_total", before + 1);
    assert!(after > before, "the loris must hit the 408 counter");
    assert_healthy(addr);
    server.shutdown();
    server.join();
}

#[test]
fn mid_request_disconnect_reclaims_the_connection() {
    let server = boot_twitchy();
    let addr = server.addr();

    for _ in 0..8 {
        // Half a request head, then vanish. Repeatedly, so a leaked
        // slot or a panicking reaper would compound and show up.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /infer HTTP/1.1\r\nContent-Length: 5000\r\n\r\npartial")
            .unwrap();
        stream.shutdown(Shutdown::Both).unwrap();
        drop(stream);
    }
    // Every aborted connection must be reclaimed: the open-connection
    // gauge converges to just the scraping connection itself.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = metric(addr, "questpro_http_connections_open");
        if open <= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "aborted connections leaked: {open} still open"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_healthy(addr);
    server.shutdown();
    server.join();
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let server = boot_twitchy();
    let addr = server.addr();

    // Ten requests in one write, no waiting: responses must come back
    // strictly in request order, on the same connection, including an
    // inline route sandwiched between pooled ones.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut burst = String::new();
    for i in 0..10 {
        let path = if i % 2 == 0 {
            "/healthz"
        } else {
            "/ontologies"
        };
        burst.push_str(&format!("GET {path} HTTP/1.1\r\nHost: pipe\r\n\r\n"));
    }
    stream.write_all(burst.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    for i in 0..10 {
        let (status, body) = read_response(&mut reader).expect("one response per request");
        assert_eq!(status, 200, "pipelined response {i}");
        if i % 2 == 0 {
            assert!(body.contains("ok"), "response {i} out of order: {body}");
        } else {
            assert!(
                body.contains("ontologies"),
                "response {i} out of order: {body}"
            );
        }
    }
    assert_healthy(addr);
    server.shutdown();
    server.join();
}

#[test]
fn oversized_head_is_rejected_with_431() {
    let server = boot_twitchy();
    let addr = server.addr();

    // A single header far past MAX_HEAD_BYTES (16 KiB). The server
    // must refuse with a named 431 without buffering forever — and it
    // may close mid-upload, so the client must tolerate a broken pipe.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let huge = format!(
        "GET /healthz HTTP/1.1\r\nHost: big\r\nX-Flood: {}\r\n\r\n",
        "a".repeat(64 * 1024)
    );
    match stream.write_all(huge.as_bytes()) {
        Ok(()) => {}
        Err(e) if matches!(e.kind(), ErrorKind::BrokenPipe | ErrorKind::ConnectionReset) => {}
        Err(e) => panic!("unexpected write error: {e}"),
    }
    if let Some((status, body)) = read_response(&mut BufReader::new(stream)) {
        assert_eq!(status, 431, "{body}");
        assert!(body.contains("head too large"), "{body}");
    }
    assert_healthy(addr);
    server.shutdown();
    server.join();
}

#[test]
fn oversized_body_is_rejected_with_413() {
    let server = boot_twitchy();
    let addr = server.addr();
    // Declared length over max_body: rejected from the *header* alone,
    // before any body bytes arrive.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /infer HTTP/1.1\r\nHost: big\r\nContent-Length: 10000000\r\n\r\n")
        .unwrap();
    let (status, body) =
        read_response(&mut BufReader::new(stream)).expect("a rejection, not a hang");
    assert_eq!(status, 413, "{body}");
    assert_healthy(addr);
    server.shutdown();
    server.join();
}

#[test]
fn idle_keepalive_connections_are_silently_expired() {
    let server = boot_twitchy();
    let addr = server.addr();
    let before = metric(addr, "questpro_http_keepalive_timeouts_total");

    // Connect-and-say-nothing, five times over. Idle expiry is
    // *silent*: the socket just closes, with no response bytes — an
    // idle peer has no outstanding request to answer.
    let mut idlers: Vec<TcpStream> = (0..5)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    for s in &mut idlers {
        let mut buf = Vec::new();
        s.read_to_end(&mut buf)
            .expect("a clean close, not an error");
        assert!(buf.is_empty(), "idle close must not write bytes: {buf:?}");
    }
    let after = await_metric_at_least(addr, "questpro_http_keepalive_timeouts_total", before + 5);
    assert!(
        after >= before + 5,
        "all five idlers must hit the keepalive counter ({before} -> {after})"
    );
    assert_healthy(addr);
    server.shutdown();
    server.join();
}

#[test]
fn garbage_bytes_get_a_400_and_never_crash() {
    let server = boot_twitchy();
    let addr = server.addr();
    for garbage in [
        &b"\x00\x01\x02\x03\x04garbage\r\n\r\n"[..],
        &b"GET\r\n\r\n"[..],
        &b"GET /healthz HTTP/9.9\r\n\r\n"[..],
        &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
    ] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream.write_all(garbage).unwrap();
        let (status, _) =
            read_response(&mut BufReader::new(stream)).expect("a named rejection, not a hang");
        assert_eq!(status, 400, "garbage {garbage:?}");
    }
    assert_healthy(addr);
    server.shutdown();
    server.join();
}

#[test]
fn connection_cap_sheds_with_503_and_recovers() {
    let server = start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue: 16,
        max_conns: 8,
        read_timeout_ms: 60_000, // idlers must survive the test window
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = server.addr();

    // Fill the table with idle keep-alive connections, then one more:
    // the surplus connection gets an eager 503 and a close instead of
    // an accept — shed at the door, not queued into oblivion.
    let held: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut shed = 0;
    for _ in 0..5 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        if let Some((status, _)) = read_response(&mut BufReader::new(&mut s)) {
            assert_eq!(status, 503, "over-cap connections are shed with 503");
            shed += 1;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(shed >= 1, "at least one over-cap connection must see a 503");
    // Releasing capacity must make the server reachable again.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n");
        if let Some((200, _)) = read_response(&mut BufReader::new(s)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never recovered from shed"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown();
    server.join();
}

/// Gate for the multi-loop battery: with a single host CPU two event
/// loops never actually interleave, so the tests below would pass
/// vacuously. Report the skip honestly (the same policy as bench.sh's
/// monotone-speedup assert) instead of pretending coverage.
fn host_has_two_cpus() -> bool {
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cpus < 2 {
        eprintln!(
            "skip — the two-event-loop battery needs >1 CPU (host has {cpus}); \
             rerun on a multi-core host for real multi-loop coverage"
        );
        return false;
    }
    true
}

#[test]
fn pipelined_requests_answer_in_order_on_two_event_loops() {
    if !host_has_two_cpus() {
        return;
    }
    let server = start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue: 16,
        event_loops: 2,
        read_timeout_ms: 10_000,
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = server.addr();

    // Four concurrent connections: round-robin dealing spreads them
    // across both loops, so ordering is exercised on each loop while
    // the other is busy. Each connection fires a ten-deep pipeline in
    // one write and must get its responses back strictly in order.
    let handles: Vec<_> = (0..4)
        .map(|conn| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut burst = String::new();
                for i in 0..10 {
                    let path = if i % 2 == 0 {
                        "/healthz"
                    } else {
                        "/ontologies"
                    };
                    burst.push_str(&format!("GET {path} HTTP/1.1\r\nHost: pipe2\r\n\r\n"));
                }
                stream.write_all(burst.as_bytes()).unwrap();
                let mut reader = BufReader::new(stream);
                for i in 0..10 {
                    let (status, body) =
                        read_response(&mut reader).expect("one response per request");
                    assert_eq!(status, 200, "conn {conn} pipelined response {i}");
                    if i % 2 == 0 {
                        assert!(body.contains("ok"), "conn {conn} response {i}: {body}");
                    } else {
                        assert!(
                            body.contains("ontologies"),
                            "conn {conn} response {i} out of order: {body}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("pipeline thread");
    }
    assert_healthy(addr);
    server.shutdown();
    server.join();
}

#[test]
fn connection_cap_sheds_with_503_on_two_event_loops() {
    if !host_has_two_cpus() {
        return;
    }
    // With two loops the global cap is dealt per loop
    // (ceil(8 / 2) = 4 each), so the shed must trigger no matter which
    // loop the surplus connection lands on.
    let server = start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue: 16,
        max_conns: 8,
        event_loops: 2,
        read_timeout_ms: 60_000, // idlers must survive the test window
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = server.addr();

    let held: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut shed = 0;
    for _ in 0..6 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        if let Some((status, _)) = read_response(&mut BufReader::new(&mut s)) {
            assert_eq!(status, 503, "over-cap connections are shed with 503");
            shed += 1;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(shed >= 1, "at least one over-cap connection must see a 503");
    // Releasing capacity must make *both* loops reachable again: drain
    // well past one loop's share of fresh connections.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut recovered = 0;
    while recovered < 6 {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n");
        if let Some((200, _)) = read_response(&mut BufReader::new(s)) {
            recovered += 1;
        } else {
            assert!(
                Instant::now() < deadline,
                "server never recovered from shed (got {recovered} healthy answers)"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    server.shutdown();
    server.join();
}
