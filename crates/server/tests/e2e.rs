//! End-to-end tests over real sockets.
//!
//! Everything here talks to a live `questpro-server` through
//! `TcpStream` — no handler is called directly — so the full stack
//! (accept loop, pool, HTTP parser, router, session manager) is under
//! test. The two core claims of the server: its answers are
//! byte-identical to the library one-shot path the CLI uses, and no
//! malformed input can take the process down.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use questpro_feedback::{InteractiveSession, SessionConfig};
use questpro_query::sparql;
use questpro_server::{start, ServerConfig, ServerHandle};
use questpro_wire::Json;

fn boot() -> ServerHandle {
    start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue: 32,
        max_body: 64 * 1024,
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port")
}

/// One request on a fresh connection; returns `(status, body)`.
fn call(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to the server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("writing the request");
    read_response(&mut BufReader::new(stream))
}

fn read_response(reader: &mut impl BufRead) -> (u16, String) {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("reading the status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .expect("a status code")
        .parse()
        .expect("a numeric status");
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("reading a header");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some(v) = trimmed
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
        {
            content_length = v.parse().expect("a numeric content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("reading the body");
    (status, String::from_utf8(body).expect("a UTF-8 body"))
}

fn erdos_examples_text() -> String {
    let ont = questpro_data::erdos_ontology();
    let examples = questpro_data::erdos_example_set(&ont);
    questpro_graph::exformat::serialize_examples(&ont, &examples)
}

fn json(body: &str) -> Json {
    questpro_wire::parse(body).expect("a JSON response body")
}

#[test]
fn health_metrics_and_unknown_routes() {
    let server = boot();
    let addr = server.addr();
    assert_eq!(call(addr, "GET", "/healthz", None), (200, "ok\n".into()));

    let (status, scrape) = call(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(scrape.contains("questpro_http_requests_total"));
    assert!(scrape.contains("questpro_sessions_live 0"));

    assert_eq!(call(addr, "GET", "/no/such/route", None).0, 404);
    assert_eq!(call(addr, "DELETE", "/healthz", None).0, 405);

    // The scrape counters are cumulative across requests.
    let first = json_metric(&scrape, "questpro_http_requests_total");
    let (_, scrape2) = call(addr, "GET", "/metrics", None);
    let second = json_metric(&scrape2, "questpro_http_requests_total");
    assert!(second > first, "request counter must be monotonic");
    server.join();
}

fn json_metric(scrape: &str, name: &str) -> u64 {
    scrape
        .lines()
        .find(|l| l.starts_with(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing"))
}

#[test]
fn interactive_session_over_http_matches_the_library_path() {
    let server = boot();
    let addr = server.addr();
    let examples = erdos_examples_text();

    // Reference: the in-process session the CLI `session` command uses,
    // answering `true` to every question.
    let ont = questpro_data::erdos_ontology();
    let example_set = questpro_data::erdos_example_set(&ont);
    let cfg = SessionConfig {
        refine: true,
        ..SessionConfig::default()
    };
    let mut reference =
        InteractiveSession::start(&ont, &example_set, &cfg, 7).expect("reference session");
    while !reference.is_done() {
        reference
            .answer(&ont, true)
            .expect("answering the reference");
    }
    let want_final = sparql::format_union(reference.final_query().expect("a final query"));

    // The same dialogue over HTTP: create, then feed back `true` until
    // the phase reaches `done`.
    let body = Json::obj([
        ("ontology", Json::str("erdos")),
        ("examples", Json::str(examples)),
        ("seed", Json::from(7u64)),
        ("refine", Json::Bool(true)),
    ])
    .to_text();
    let (status, created) = call(addr, "POST", "/sessions", Some(&body));
    assert_eq!(status, 201, "create failed: {created}");
    let created = json(&created);
    let id = created.get("id").and_then(Json::as_u64).expect("an id");

    let mut rounds = 0;
    loop {
        let (status, state) = call(addr, "POST", &format!("/sessions/{id}/infer"), Some("{}"));
        assert_eq!(status, 200, "infer failed: {state}");
        let state = json(&state);
        let phase = state.get("phase").and_then(Json::as_str).expect("a phase");
        if phase == "done" {
            let got_final = state
                .get("final")
                .and_then(Json::as_str)
                .expect("a final query");
            assert_eq!(got_final, want_final, "HTTP and library answers diverge");
            break;
        }
        let pending = state.get("pending").expect("a pending question");
        assert!(
            pending.get("provenance").is_some(),
            "questions carry provenance: {state:?}"
        );
        let (status, after) = call(
            addr,
            "POST",
            &format!("/sessions/{id}/feedback"),
            Some("{\"answer\": true}"),
        );
        assert_eq!(status, 200, "feedback failed: {after}");
        rounds += 1;
        assert!(rounds < 200, "session must converge");
    }

    // The snapshot endpoint round-trips through the library restore.
    let (status, snap) = call(addr, "GET", &format!("/sessions/{id}/snapshot"), None);
    assert_eq!(status, 200);
    let restored = InteractiveSession::restore(&ont, &json(&snap)).expect("a restorable snapshot");
    assert_eq!(
        sparql::format_union(restored.final_query().expect("final in snapshot")),
        want_final
    );

    // Feedback after completion is a clean conflict, not a panic.
    let (status, _) = call(
        addr,
        "POST",
        &format!("/sessions/{id}/feedback"),
        Some("{\"answer\": true}"),
    );
    assert_eq!(status, 409);

    assert_eq!(
        call(addr, "DELETE", &format!("/sessions/{id}"), None).0,
        204
    );
    assert_eq!(call(addr, "GET", &format!("/sessions/{id}"), None).0, 404);
    server.join();
}

#[test]
fn concurrent_clients_get_identical_one_shot_answers() {
    let server = boot();
    let addr = server.addr();
    let examples = erdos_examples_text();

    let ont = questpro_data::erdos_ontology();
    let example_set = questpro_data::erdos_example_set(&ont);
    let (reference, _) =
        questpro_core::infer_top_k(&ont, &example_set, &questpro_core::TopKConfig::default());
    let want: Vec<String> = reference.iter().map(sparql::format_union).collect();

    let body = Json::obj([
        ("ontology", Json::str("erdos")),
        ("examples", Json::str(examples)),
    ])
    .to_text();
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || call(addr, "POST", "/infer", Some(&body)))
        })
        .collect();
    for c in clients {
        let (status, resp) = c.join().expect("client thread");
        assert_eq!(status, 200, "infer failed: {resp}");
        let got: Vec<String> = json(&resp)
            .get("candidates")
            .and_then(|c| c.as_arr().map(|a| a.to_vec()))
            .expect("candidates")
            .iter()
            .map(|c| {
                c.get("query")
                    .and_then(Json::as_str)
                    .expect("a query text")
                    .to_string()
            })
            .collect();
        assert_eq!(got, want, "every client must see the one-shot answer");
    }
    server.join();
}

#[test]
fn malformed_input_yields_4xx_never_a_crash() {
    let server = boot();
    let addr = server.addr();

    // Truncated JSON body.
    assert_eq!(
        call(addr, "POST", "/infer", Some("{\"ontology\": \"er")).0,
        400
    );
    // Wrong shape.
    assert_eq!(call(addr, "POST", "/infer", Some("{}")).0, 422);
    assert_eq!(call(addr, "POST", "/sessions", Some("[1, 2]")).0, 422);
    // Unknown world.
    assert_eq!(
        call(
            addr,
            "POST",
            "/infer",
            Some("{\"ontology\": \"narnia\", \"examples\": \"x\"}")
        )
        .0,
        404
    );
    // Unparsable examples.
    assert_eq!(
        call(
            addr,
            "POST",
            "/infer",
            Some("{\"ontology\": \"erdos\", \"examples\": \"not an example block\"}")
        )
        .0,
        422
    );
    // Oversized body (server cap is 64 KiB here).
    let huge = format!(
        "{{\"ontology\": \"erdos\", \"examples\": \"{}\"}}",
        "x".repeat(80 * 1024)
    );
    assert_eq!(call(addr, "POST", "/infer", Some(&huge)).0, 413);
    // Garbage on the wire.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write!(s, "NOT-HTTP\r\n\r\n").unwrap();
        let mut buf = String::new();
        let _ = s.read_to_string(&mut buf);
        assert!(buf.starts_with("HTTP/1.1 400"), "got: {buf:?}");
    }
    // Bad session ids.
    assert_eq!(call(addr, "GET", "/sessions/not-a-number", None).0, 404);
    assert_eq!(call(addr, "GET", "/sessions/999999", None).0, 404);

    // After all of that the server still answers.
    assert_eq!(call(addr, "GET", "/healthz", None).0, 200);
    server.join();
}

#[test]
fn user_posted_worlds_and_eval_round_trip() {
    let server = boot();
    let addr = server.addr();
    let body = Json::obj([
        ("name", Json::str("tiny")),
        ("triples", Json::str("a knows b\nb knows c\n")),
    ])
    .to_text();
    let (status, created) = call(addr, "POST", "/ontologies", Some(&body));
    assert_eq!(status, 201, "create failed: {created}");
    assert_eq!(json(&created).get("nodes").and_then(Json::as_u64), Some(3));
    // Duplicate names collide loudly.
    assert_eq!(call(addr, "POST", "/ontologies", Some(&body)).0, 409);

    let eval = Json::obj([
        ("ontology", Json::str("tiny")),
        ("query", Json::str("SELECT ?x WHERE { ?x :knows ?y . }")),
    ])
    .to_text();
    let (status, resp) = call(addr, "POST", "/eval", Some(&eval));
    assert_eq!(status, 200, "eval failed: {resp}");
    let results: Vec<String> = json(&resp)
        .get("results")
        .and_then(|r| r.as_arr().map(|a| a.to_vec()))
        .expect("results")
        .iter()
        .map(|v| v.as_str().expect("a value").to_string())
        .collect();
    assert_eq!(results, ["a", "b"]);
    server.join();
}

#[test]
fn post_shutdown_drains_gracefully() {
    let server = boot();
    let addr = server.addr();
    let (status, body) = call(addr, "POST", "/shutdown", None);
    assert_eq!(status, 200);
    assert!(body.contains("shutting down"));
    // join() returns promptly because the accept loop saw the flag.
    server.join();
    // And the port stops answering new work.
    let gone = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_millis(300)))
                .unwrap();
            let _ = write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
            let mut buf = [0u8; 1];
            !matches!(s.read(&mut buf), Ok(n) if n > 0)
        }
    };
    assert!(gone, "a shut-down server must not serve new requests");
}

/// Like [`call`], but also returns the response headers (lower-cased
/// names) so tests can assert on them.
fn call_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to the server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: e2e\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("writing the request");
    parse_response_with_headers(BufReader::new(stream))
}

/// Writes `raw` verbatim on a fresh connection — for requests that are
/// deliberately not valid HTTP — and parses whatever comes back.
fn raw_call_with_headers(addr: SocketAddr, raw: &str) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connecting to the server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("writing raw bytes");
    parse_response_with_headers(BufReader::new(stream))
}

fn parse_response_with_headers(
    mut reader: BufReader<TcpStream>,
) -> (u16, Vec<(String, String)>, String) {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("reading the status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .expect("a status code")
        .parse()
        .expect("a numeric status");
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        line.clear();
        reader.read_line(&mut line).expect("reading a header");
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let (name, value) = trimmed.split_once(':').expect("a `Name: value` header");
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().expect("a numeric content-length");
        }
        headers.push((name, value));
    }
    let mut resp_body = vec![0u8; content_length];
    reader.read_exact(&mut resp_body).expect("reading the body");
    (
        status,
        headers,
        String::from_utf8(resp_body).expect("a UTF-8 body"),
    )
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

#[test]
fn every_response_carries_a_trace_id_resolvable_in_debug_traces() {
    let server = boot();
    let addr = server.addr();

    // 200s and 404s alike are traced and echo the trace ID.
    let (status, headers, _) = call_with_headers(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    let id: u64 = header_value(&headers, "x-questpro-trace-id")
        .expect("a trace ID header on every traced response")
        .parse()
        .expect("a numeric trace ID");
    let (status, headers, _) = call_with_headers(addr, "GET", "/no/such/route", None);
    assert_eq!(status, 404);
    let not_found_id: u64 = header_value(&headers, "x-questpro-trace-id")
        .expect("error responses are traced too")
        .parse()
        .expect("a numeric trace ID");
    assert_ne!(id, not_found_id, "every request gets its own trace");

    // The trace named by the header is already in the registry (the
    // server publishes before writing the response).
    let (status, body) = call(addr, "GET", "/debug/traces?limit=64", None);
    assert_eq!(status, 200);
    let doc = json(&body);
    assert_eq!(doc.get("enabled").and_then(Json::as_bool), Some(true));
    let traces = doc
        .get("traces")
        .and_then(Json::as_arr)
        .expect("a traces array");
    let find = |want: u64| {
        traces
            .iter()
            .find(|t| t.get("id").and_then(Json::as_u64) == Some(want))
    };
    let healthz = find(id).expect("the /healthz trace is retained");
    assert_eq!(
        healthz.get("label").and_then(Json::as_str),
        Some("GET /healthz")
    );
    assert!(
        healthz.get("total_ns").and_then(Json::as_u64).is_some(),
        "traces carry a wall-clock total"
    );
    assert!(find(not_found_id).is_some(), "404 traces are retained");

    server.join();
}

/// Extracts the value of the first sample line starting with `prefix`.
/// Unlike [`json_metric`], handles labeled names with spaces inside the
/// label value (e.g. `..._count{route="POST /eval"} 3`).
fn labeled_metric(scrape: &str, prefix: &str) -> u64 {
    scrape
        .lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {prefix} missing"))
}

#[test]
fn one_id_joins_access_log_trace_and_route_metrics() {
    let server = boot();
    let addr = server.addr();

    let route_count = "questpro_route_duration_ns_count{route=\"POST /eval\"}";
    let (_, scrape) = call(addr, "GET", "/metrics", None);
    let count_before = labeled_metric(&scrape, route_count);

    // A world plus one /eval against it; the response names its trace.
    let world = Json::obj([
        ("name", Json::str("joinworld")),
        ("triples", Json::str("a knows b\nb knows c\n")),
    ])
    .to_text();
    assert_eq!(call(addr, "POST", "/ontologies", Some(&world)).0, 201);
    let eval = Json::obj([
        ("ontology", Json::str("joinworld")),
        ("query", Json::str("SELECT ?x WHERE { ?x :knows ?y . }")),
    ])
    .to_text();
    let (status, headers, _) = call_with_headers(addr, "POST", "/eval", Some(&eval));
    assert_eq!(status, 200);
    let id: u64 = header_value(&headers, "x-questpro-trace-id")
        .expect("a trace ID header")
        .parse()
        .expect("a numeric trace ID");

    // Pillar 1: the access log carries the same ID.
    let (status, body) = call(addr, "GET", "/debug/logs?limit=1024", None);
    assert_eq!(status, 200);
    let doc = json(&body);
    assert_eq!(doc.get("enabled").and_then(Json::as_bool), Some(true));
    let events = doc
        .get("events")
        .and_then(Json::as_arr)
        .expect("an events array");
    let access = events
        .iter()
        .find(|e| {
            e.get("trace_id").and_then(Json::as_u64) == Some(id)
                && e.get("target").and_then(Json::as_str) == Some("server.access")
        })
        .expect("the /eval access-log event, joined by trace ID");
    assert_eq!(access.get("msg").and_then(Json::as_str), Some("POST /eval"));
    let fields = access.get("fields").expect("access-log fields");
    assert_eq!(
        fields.get("route").and_then(Json::as_str),
        Some("POST /eval")
    );
    assert_eq!(fields.get("status").and_then(Json::as_u64), Some(200));
    assert!(fields.get("latency_ns").and_then(Json::as_u64).is_some());
    assert!(fields.get("bytes").and_then(Json::as_u64).is_some());

    // Pillar 2: the trace registry resolves the same ID.
    let (status, body) = call(addr, "GET", "/debug/traces?limit=1024", None);
    assert_eq!(status, 200);
    let traces = json(&body);
    let trace = traces
        .get("traces")
        .and_then(Json::as_arr)
        .expect("a traces array")
        .iter()
        .find(|t| t.get("id").and_then(Json::as_u64) == Some(id))
        .cloned()
        .expect("the /eval trace, joined by trace ID");
    assert_eq!(
        trace.get("label").and_then(Json::as_str),
        Some("POST /eval")
    );

    // Pillar 3: the per-route histogram counted the same request.
    let (_, scrape) = call(addr, "GET", "/metrics", None);
    let count_after = labeled_metric(&scrape, route_count);
    assert!(
        count_after > count_before,
        "route histogram must count the /eval ({count_before} -> {count_after})"
    );
    server.join();
}

#[test]
fn malformed_debug_logs_params_are_rejected_without_panic() {
    let server = boot();
    let addr = server.addr();

    for bad in [
        "/debug/logs?limit=abc",
        "/debug/logs?limit=+5",
        "/debug/logs?limit=0",
        "/debug/logs?limit=99999",
        "/debug/logs?level=loud",
        "/debug/logs?level=",
    ] {
        let (status, body) = call(addr, "GET", bad, None);
        assert_eq!(status, 400, "{bad} must be a client error, got {body}");
        assert!(
            json(&body).get("error").is_some(),
            "{bad} must carry a JSON error envelope"
        );
    }
    assert_eq!(call(addr, "POST", "/debug/logs", None).0, 405);
    assert_eq!(call(addr, "GET", "/debug/logs?level=WARN", None).0, 200);
    assert_eq!(call(addr, "GET", "/healthz", None).0, 200);
    server.join();
}

#[test]
fn overload_sheds_and_keepalive_timeouts_hit_their_counters() {
    // One worker, a queue of one: of a simultaneous burst of CPU-bound
    // /infer requests, one runs, one queues, and the event loop sheds
    // the rest with 503 (the pool refused them). Idle connections are a
    // separate fate entirely — the loop closes them silently at the
    // read timeout without ever involving the pool, which is the point
    // of the readiness architecture: idle sockets cost no worker.
    let server = start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue: 1,
        read_timeout_ms: 300,
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = server.addr();

    // Phase 1: overload. A barrier lines the clients up so their
    // requests land while the single worker is still busy.
    let body = Json::obj([
        ("ontology", Json::str("erdos")),
        ("examples", Json::str(erdos_examples_text())),
    ])
    .to_text();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(12));
    let clients: Vec<_> = (0..12)
        .map(|_| {
            let body = body.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                call(addr, "POST", "/infer", Some(&body))
            })
        })
        .collect();
    let mut shed = 0u64;
    for c in clients {
        let (status, resp) = c.join().expect("client thread");
        match status {
            200 => {}
            503 => shed += 1,
            other => panic!("unexpected status under overload: {other} {resp}"),
        }
    }
    assert!(shed >= 1, "at least one request must be shed with 503");

    // Phase 2: idle keep-alive connections are reclaimed silently at
    // the read timeout (no 4xx, no response bytes at all).
    let conns: Vec<TcpStream> = (0..5)
        .map(|_| TcpStream::connect(addr).expect("connecting"))
        .collect();
    let mut closed_idle = 0u64;
    for mut c in conns {
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = String::new();
        if c.read_to_string(&mut buf).is_ok() && buf.is_empty() {
            closed_idle += 1;
        }
    }
    assert!(
        closed_idle >= 1,
        "at least one idle connection must be timed out"
    );

    // Both fates are first-class counters now.
    let (status, scrape) = call(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        json_metric(&scrape, "questpro_http_overload_rejections_total") >= shed,
        "all observed 503s must be counted: {scrape}"
    );
    assert!(
        json_metric(&scrape, "questpro_http_keepalive_timeouts_total") >= closed_idle,
        "all observed idle closures must be counted"
    );
    server.join();
}

#[test]
fn malformed_debug_traces_limits_are_rejected_without_panic() {
    let server = boot();
    let addr = server.addr();

    for bad in [
        "/debug/traces?limit=abc",
        "/debug/traces?limit=",
        "/debug/traces?limit=0",
        "/debug/traces?limit=99999",
        "/debug/traces?limit=-3",
    ] {
        let (status, body) = call(addr, "GET", bad, None);
        assert_eq!(status, 400, "{bad} must be a client error, got {body}");
        assert!(
            json(&body).get("error").is_some(),
            "{bad} must carry a JSON error envelope"
        );
    }
    // Wrong method on the route is a 405, and the server is still up.
    assert_eq!(call(addr, "POST", "/debug/traces", None).0, 405);
    assert_eq!(call(addr, "GET", "/healthz", None).0, 200);

    server.join();
}

#[test]
fn serves_from_a_preloaded_snapshot_and_accepts_snapshot_uploads() {
    // Build a small snapshot on disk the way `questpro store build` does.
    let ont = questpro_graph::triples::parse(
        "paper1 wb alice\npaper1 wb bob\npaper2 wb bob\n@type alice Author\n@type bob Author\n",
    )
    .unwrap();
    let store = questpro_store::TripleStore::from_ontology(&ont).unwrap();
    let bytes = questpro_store::encode(&store);
    let path = std::env::temp_dir().join("questpro-e2e-preload.qps");
    std::fs::write(&path, &bytes).unwrap();

    let server = start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue: 8,
        stores: vec![path.to_string_lossy().into_owned()],
        ..ServerConfig::default()
    })
    .expect("binding with a snapshot preload");
    let addr = server.addr();

    // The preloaded world is registered under its file stem, already
    // materialized, and evaluable.
    let (status, body) = call(addr, "GET", "/ontologies", None);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("questpro-e2e-preload"), "{body}");
    let (status, body) = call(
        addr,
        "POST",
        "/eval",
        Some(
            &Json::obj([
                ("ontology", Json::str("questpro-e2e-preload")),
                (
                    "query",
                    Json::str("SELECT ?x WHERE { ?p :wb ?x . ?p :wb :bob . }"),
                ),
            ])
            .to_text(),
        ),
    );
    assert_eq!(status, 200, "{body}");
    let results = json(&body);
    let names: Vec<&str> = results
        .get("results")
        .and_then(|r| match r {
            Json::Arr(items) => Some(items.iter().filter_map(Json::as_str).collect()),
            _ => None,
        })
        .unwrap_or_default();
    assert!(names.contains(&"alice") && names.contains(&"bob"), "{body}");

    // Uploading the same snapshot as base64 registers a second world...
    let b64 = questpro_wire::base64::encode(&bytes);
    let (status, body) = call(
        addr,
        "POST",
        "/ontologies",
        Some(
            &Json::obj([
                ("name", Json::str("uploaded")),
                ("snapshot_b64", Json::str(b64.clone())),
            ])
            .to_text(),
        ),
    );
    assert_eq!(status, 201, "{body}");
    let desc = json(&body);
    assert_eq!(desc.get("edges").and_then(Json::as_u64), Some(3), "{body}");

    // ...while corrupted bytes and bad base64 are rejected with named
    // errors, and the server stays healthy.
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 1;
    let (status, body) = call(
        addr,
        "POST",
        "/ontologies",
        Some(
            &Json::obj([
                ("name", Json::str("corrupt")),
                (
                    "snapshot_b64",
                    Json::str(questpro_wire::base64::encode(&corrupt)),
                ),
            ])
            .to_text(),
        ),
    );
    assert_eq!(status, 409, "{body}");
    // A last-byte flip lands in the osp permutation, validated
    // structurally (the snapshot checksum deliberately stops at the
    // pos section); either named rejection is a correct refusal.
    assert!(
        body.contains("checksum mismatch") || body.contains("bad osp section"),
        "{body}"
    );
    let (status, body) = call(
        addr,
        "POST",
        "/ontologies",
        Some(
            &Json::obj([
                ("name", Json::str("badb64")),
                ("snapshot_b64", Json::str("not base64!")),
            ])
            .to_text(),
        ),
    );
    assert_eq!(status, 422, "{body}");
    assert_eq!(call(addr, "GET", "/healthz", None).0, 200);

    server.join();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn startup_fails_loudly_on_a_bad_snapshot_preload() {
    let path = std::env::temp_dir().join("questpro-e2e-bad-preload.qps");
    std::fs::write(&path, b"QPSTgarbage").unwrap();
    let err = match start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        stores: vec![path.to_string_lossy().into_owned()],
        ..ServerConfig::default()
    }) {
        Ok(server) => {
            server.join();
            panic!("a corrupt preload must refuse to start");
        }
        Err(e) => e,
    };
    assert!(err.to_string().contains("bad-preload"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn eval_is_byte_identical_under_keepalive_concurrency() {
    // The equivalence claim at scale: with 100+ keep-alive connections
    // hammering `/eval` concurrently through the event loop and worker
    // pool, every response body is byte-for-byte the reference answer.
    // The queue is sized above the connection count so nothing sheds —
    // shedding is exercised elsewhere; this test isolates equivalence.
    let server = start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue: 1024,
        max_body: 64 * 1024,
        ..ServerConfig::default()
    })
    .expect("binding an ephemeral port");
    let addr = server.addr();

    let world = Json::obj([
        ("name", Json::str("diffworld")),
        ("triples", Json::str("a knows b\nb knows c\nc knows a\n")),
    ])
    .to_text();
    assert_eq!(call(addr, "POST", "/ontologies", Some(&world)).0, 201);
    let eval = Json::obj([
        ("ontology", Json::str("diffworld")),
        ("query", Json::str("SELECT ?x WHERE { ?x :knows ?y . }")),
    ])
    .to_text();
    let (status, reference) = call(addr, "POST", "/eval", Some(&eval));
    assert_eq!(status, 200, "reference eval failed: {reference}");

    const CONNS: usize = 104;
    const REQS_PER_CONN: usize = 3;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(CONNS));
    let workers: Vec<_> = (0..CONNS)
        .map(|_| {
            let eval = eval.clone();
            let reference = reference.clone();
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connecting");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .unwrap();
                // All connections are open before any request flows:
                // the server genuinely holds CONNS sockets at once.
                barrier.wait();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for i in 0..REQS_PER_CONN {
                    write!(
                        stream,
                        "POST /eval HTTP/1.1\r\nHost: diff\r\nContent-Length: {}\r\n\r\n{eval}",
                        eval.len()
                    )
                    .expect("writing a keep-alive request");
                    let (status, body) = read_response(&mut reader);
                    assert_eq!(status, 200, "request {i}: {body}");
                    assert_eq!(body, reference, "request {i} diverged from reference");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("no client thread may panic");
    }

    // The scrape proves the load was real: every connection accepted,
    // every request answered.
    let (status, scrape) = call(addr, "GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(
        json_metric(&scrape, "questpro_http_connections_accepted_total") >= CONNS as u64,
        "all keep-alive connections must be accepted"
    );
    server.join();
}

#[test]
fn live_updates_version_worlds_and_count_rejections() {
    let server = boot();
    let addr = server.addr();
    let body = Json::obj([
        ("name", Json::str("live")),
        ("triples", Json::str("a knows b\nb knows c\n")),
    ])
    .to_text();
    assert_eq!(call(addr, "POST", "/ontologies", Some(&body)).0, 201);
    let (_, desc) = call(addr, "GET", "/ontologies/live", None);
    assert_eq!(json(&desc).get("version").and_then(Json::as_u64), Some(1));

    // A batched insert installs a new head version; eval sees it.
    let batch = r#"{"insert": [["c", "knows", "a"]]}"#;
    let (status, updated) = call(addr, "POST", "/ontologies/live/update", Some(batch));
    assert_eq!(status, 200, "update failed: {updated}");
    let updated = json(&updated);
    assert_eq!(updated.get("version").and_then(Json::as_u64), Some(2));
    assert_eq!(updated.get("inserted").and_then(Json::as_u64), Some(1));
    assert_eq!(
        updated.get("edge_ids_stable").and_then(Json::as_bool),
        Some(true)
    );
    let eval = Json::obj([
        ("ontology", Json::str("live")),
        ("query", Json::str("SELECT ?x WHERE { ?x :knows ?y . }")),
    ])
    .to_text();
    let (_, resp) = call(addr, "POST", "/eval", Some(&eval));
    let results: Vec<String> = json(&resp)
        .get("results")
        .and_then(Json::as_arr)
        .expect("results")
        .iter()
        .filter_map(Json::as_str)
        .map(str::to_string)
        .collect();
    assert_eq!(results, ["a", "b", "c"], "eval must see the new head");

    // Every malformed or impossible batch is a named 4xx, never a 500,
    // and the head stays where the last good update put it.
    for (path, bad, want) in [
        (
            "/ontologies/live/update",
            r#"{"delete": [["x", "y", "z"]]}"#,
            409,
        ),
        (
            "/ontologies/live/update",
            r#"{"insert": [["c", "knows", "a"]]}"#,
            409,
        ),
        ("/ontologies/live/update", r#"{}"#, 422),
        (
            "/ontologies/live/update",
            r#"{"insert": [["a", "b"]]}"#,
            422,
        ),
        ("/ontologies/live/update", "not json", 400),
        (
            "/ontologies/ghost/update",
            r#"{"insert": [["a", "b", "c"]]}"#,
            404,
        ),
    ] {
        let (status, resp) = call(addr, "POST", path, Some(bad));
        assert_eq!(status, want, "{bad} -> {resp}");
    }
    let (_, desc) = call(addr, "GET", "/ontologies/live", None);
    assert_eq!(json(&desc).get("version").and_then(Json::as_u64), Some(2));

    // The scrape reflects exactly what happened above.
    let (_, scrape) = call(addr, "GET", "/metrics", None);
    assert_eq!(json_metric(&scrape, "questpro_ontology_updates_total"), 1);
    assert_eq!(
        json_metric(&scrape, "questpro_ontology_update_rejections_total"),
        6
    );
    assert!(json_metric(&scrape, "questpro_ontology_versions_open") >= 2);
    server.join();
}

#[test]
fn sessions_stay_pinned_across_updates_and_evicted_pins_fail_named() {
    let server = boot();
    let addr = server.addr();
    let create = Json::obj([
        ("ontology", Json::str("erdos")),
        ("examples", Json::str(erdos_examples_text())),
        ("seed", Json::from(7u64)),
    ])
    .to_text();
    let (status, created) = call(addr, "POST", "/sessions", Some(&create));
    assert_eq!(status, 201, "create failed: {created}");
    let created = json(&created);
    let id = created.get("id").and_then(Json::as_u64).expect("an id");
    assert_eq!(
        created.get("ontology_version").and_then(Json::as_u64),
        Some(1),
        "sessions pin the version they start on"
    );
    let (status, snap_v1) = call(addr, "GET", &format!("/sessions/{id}/snapshot"), None);
    assert_eq!(status, 200);
    assert_eq!(
        json(&snap_v1)
            .get("ontology_version")
            .and_then(Json::as_u64),
        Some(1),
        "snapshots carry the pin"
    );

    // One update: the pinned session keeps answering from version 1.
    let batch = |i: usize| format!(r#"{{"insert": [["zz_{i}", "zz_knows", "zz_other_{i}"]]}}"#);
    assert_eq!(
        call(addr, "POST", "/ontologies/erdos/update", Some(&batch(0))).0,
        200
    );
    let (status, state) = call(addr, "GET", &format!("/sessions/{id}"), None);
    assert_eq!(status, 200, "pinned session must survive a head update");
    assert_eq!(
        json(&state).get("ontology_version").and_then(Json::as_u64),
        Some(1)
    );

    // Enough further updates to push version 1 off the bounded history:
    // now every request against the session is a named 410, and so is
    // restoring its snapshot — never a silent answer from version 5.
    for i in 1..questpro_server::registry::HISTORY {
        assert_eq!(
            call(addr, "POST", "/ontologies/erdos/update", Some(&batch(i))).0,
            200
        );
    }
    for path in [
        format!("/sessions/{id}"),
        format!("/sessions/{id}/candidates"),
        format!("/sessions/{id}/snapshot"),
    ] {
        let (status, resp) = call(addr, "GET", &path, None);
        assert_eq!(status, 410, "{path}: {resp}");
        assert!(
            resp.contains("version 1") && resp.contains("evicted"),
            "the failure must name the stale pin: {resp}"
        );
    }
    let (status, resp) = call(addr, "POST", "/sessions/restore", Some(&snap_v1));
    assert_eq!(status, 410, "restore of an evicted pin: {resp}");
    assert!(
        resp.contains("snapshot") && resp.contains("evicted"),
        "{resp}"
    );

    // A fresh session pins the current head, and its snapshot restores
    // into a *new* session that picks up exactly where it left off.
    let (status, created) = call(addr, "POST", "/sessions", Some(&create));
    assert_eq!(status, 201, "create at head failed: {created}");
    let created = json(&created);
    let head_id = created.get("id").and_then(Json::as_u64).expect("an id");
    let head_version = created
        .get("ontology_version")
        .and_then(Json::as_u64)
        .expect("a version");
    assert_eq!(head_version, 1 + questpro_server::registry::HISTORY as u64);
    let (_, head_snap) = call(addr, "GET", &format!("/sessions/{head_id}/snapshot"), None);
    let (status, restored) = call(addr, "POST", "/sessions/restore", Some(&head_snap));
    assert_eq!(status, 201, "restore failed: {restored}");
    let restored = json(&restored);
    assert_ne!(
        restored.get("id").and_then(Json::as_u64),
        Some(head_id),
        "restore creates a new session"
    );
    assert_eq!(
        restored.get("ontology_version").and_then(Json::as_u64),
        Some(head_version)
    );
    assert_eq!(
        restored.get("phase").and_then(Json::as_str),
        json(&head_snap).get("phase").and_then(Json::as_str)
    );

    // Malformed restores are named 4xx, never a panic.
    for (bad, want) in [
        (r#"{"ontology_version": 1}"#.to_string(), 422),
        (r#"{"ontology": "erdos"}"#.to_string(), 422),
        (
            r#"{"ontology": "erdos", "ontology_version": 99}"#.to_string(),
            404,
        ),
        (
            r#"{"ontology": "ghost", "ontology_version": 1}"#.to_string(),
            404,
        ),
        (
            format!(r#"{{"ontology": "erdos", "ontology_version": {head_version}}}"#),
            422,
        ),
    ] {
        let (status, resp) = call(addr, "POST", "/sessions/restore", Some(&bad));
        assert_eq!(status, want, "{bad} -> {resp}");
    }
    server.join();
}

#[test]
fn error_responses_echo_a_trace_id_on_every_reject_path() {
    let server = boot();
    let addr = server.addr();
    let trace_id = |headers: &[(String, String)], what: &str| -> u64 {
        header_value(headers, "x-questpro-trace-id")
            .unwrap_or_else(|| panic!("{what} must echo X-Questpro-Trace-Id"))
            .parse()
            .expect("a numeric trace ID")
    };
    let mut seen = Vec::new();

    // 400: bytes that never parse into a request.
    let (status, headers, _) = raw_call_with_headers(addr, "NOT-HTTP\r\n\r\n");
    assert_eq!(status, 400);
    seen.push(trace_id(&headers, "400"));

    // 404: a routed miss.
    let (status, headers, _) = call_with_headers(addr, "GET", "/no/such/route", None);
    assert_eq!(status, 404);
    seen.push(trace_id(&headers, "404"));

    // 413: an oversized body, rejected before routing.
    let huge = format!(
        "{{\"ontology\": \"erdos\", \"examples\": \"{}\"}}",
        "x".repeat(80 * 1024)
    );
    let (status, headers, _) = call_with_headers(addr, "POST", "/infer", Some(&huge));
    assert_eq!(status, 413);
    seen.push(trace_id(&headers, "413"));

    // 410: a session whose pinned version fell off the history.
    let create = Json::obj([
        ("ontology", Json::str("erdos")),
        ("examples", Json::str(erdos_examples_text())),
    ])
    .to_text();
    let (status, created) = call(addr, "POST", "/sessions", Some(&create));
    assert_eq!(status, 201, "create failed: {created}");
    let id = json(&created)
        .get("id")
        .and_then(Json::as_u64)
        .expect("an id");
    for i in 0..questpro_server::registry::HISTORY {
        let batch = format!(r#"{{"insert": [["zz_{i}", "zz_knows", "zz_other_{i}"]]}}"#);
        assert_eq!(
            call(addr, "POST", "/ontologies/erdos/update", Some(&batch)).0,
            200
        );
    }
    let (status, headers, _) = call_with_headers(addr, "GET", &format!("/sessions/{id}"), None);
    assert_eq!(status, 410);
    seen.push(trace_id(&headers, "410"));

    // 503: a dedicated single-loop server with a cap of one connection
    // sheds the second concurrent connection at accept time, before any
    // request parses.
    let tiny = start(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue: 8,
        event_loops: 1,
        max_conns: 1,
        ..ServerConfig::default()
    })
    .expect("binding the capped server");
    let held = TcpStream::connect(tiny.addr()).expect("holding a connection open");
    // The held connection counts only once the loop sees the accept;
    // poll until the overflow connection is refused.
    let mut shed = None;
    for _ in 0..100 {
        let (status, headers, _) = call_with_headers(tiny.addr(), "GET", "/healthz", None);
        if status == 503 {
            shed = Some(headers);
            break;
        }
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(10));
    }
    let headers = shed.expect("the connection cap must shed with 503");
    seen.push(trace_id(&headers, "503"));
    drop(held);
    tiny.join();

    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 5, "every rejection gets its own trace ID");
    server.join();
}

#[test]
fn debug_sessions_exposes_lifecycle_telemetry_and_metrics_marginals() {
    let server = boot();
    let addr = server.addr();
    let create = Json::obj([
        ("ontology", Json::str("erdos")),
        ("examples", Json::str(erdos_examples_text())),
        ("seed", Json::from(7u64)),
    ])
    .to_text();

    // One session driven to convergence...
    let (status, created) = call(addr, "POST", "/sessions", Some(&create));
    assert_eq!(status, 201, "create failed: {created}");
    let id = json(&created)
        .get("id")
        .and_then(Json::as_u64)
        .expect("an id");
    let mut rounds = 0u64;
    loop {
        let (status, state) = call(addr, "GET", &format!("/sessions/{id}"), None);
        assert_eq!(status, 200, "state failed: {state}");
        if json(&state).get("phase").and_then(Json::as_str) == Some("done") {
            break;
        }
        let (status, after) = call(
            addr,
            "POST",
            &format!("/sessions/{id}/feedback"),
            Some("{\"answer\": true}"),
        );
        assert_eq!(status, 200, "feedback failed: {after}");
        rounds += 1;
        assert!(rounds < 200, "session must converge");
    }
    // ...and one deleted mid-flight.
    let (status, created) = call(addr, "POST", "/sessions", Some(&create));
    assert_eq!(status, 201);
    let doomed = json(&created)
        .get("id")
        .and_then(Json::as_u64)
        .expect("an id");
    assert_eq!(
        call(addr, "DELETE", &format!("/sessions/{doomed}"), None).0,
        204
    );

    let (status, body) = call(addr, "GET", "/debug/sessions?limit=16", None);
    assert_eq!(status, 200, "{body}");
    let doc = json(&body);
    assert_eq!(doc.get("enabled").and_then(Json::as_bool), Some(true));
    assert!(
        doc.get("records_total").and_then(Json::as_u64) >= Some(2),
        "both sessions recorded: {body}"
    );
    let sessions = doc
        .get("sessions")
        .and_then(Json::as_arr)
        .expect("a sessions array");
    let by_outcome = |want: &str| {
        sessions
            .iter()
            .find(|s| s.get("outcome").and_then(Json::as_str) == Some(want))
            .unwrap_or_else(|| panic!("no {want} record in {body}"))
    };
    let converged = by_outcome("converged");
    assert_eq!(
        converged.get("ontology").and_then(Json::as_str),
        Some("erdos")
    );
    assert_eq!(converged.get("rounds").and_then(Json::as_u64), Some(rounds));
    assert_eq!(converged.get("yes").and_then(Json::as_u64), Some(rounds));
    assert_eq!(converged.get("no").and_then(Json::as_u64), Some(0));
    assert_eq!(
        converged
            .get("pool_sizes")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(rounds as usize),
        "one pool size per answered round"
    );
    assert!(
        converged.get("trace_id").and_then(Json::as_u64) > Some(0),
        "session telemetry joins back to traces"
    );
    let abandoned = by_outcome("abandoned");
    assert!(abandoned.get("wall_ns").and_then(Json::as_u64).is_some());

    // The outcome filter narrows; the marginals reach /metrics.
    let (status, body) = call(addr, "GET", "/debug/sessions?outcome=abandoned", None);
    assert_eq!(status, 200);
    let only = json(&body);
    let only = only
        .get("sessions")
        .and_then(Json::as_arr)
        .expect("sessions");
    assert!(!only.is_empty());
    assert!(only
        .iter()
        .all(|s| s.get("outcome").and_then(Json::as_str) == Some("abandoned")));
    assert_eq!(call(addr, "GET", "/debug/sessions?limit=0", None).0, 400);
    assert_eq!(
        call(addr, "GET", "/debug/sessions?outcome=bogus", None).0,
        400
    );

    let (_, scrape) = call(addr, "GET", "/metrics", None);
    assert!(
        labeled_metric(
            &scrape,
            "questpro_session_outcomes_total{outcome=\"converged\"}"
        ) >= 1
    );
    assert!(
        labeled_metric(
            &scrape,
            "questpro_session_outcomes_total{outcome=\"abandoned\"}"
        ) >= 1
    );
    assert!(
        labeled_metric(&scrape, "questpro_session_records_total") >= 2,
        "record counters reach the scrape"
    );
    assert!(
        labeled_metric(
            &scrape,
            "questpro_session_rounds_bucket{outcome=\"converged\",le=\"+Inf\"}"
        ) >= 1,
        "convergence rounds land in the histogram"
    );
    server.join();
}
