//! Per-user interactive inference sessions.
//!
//! Each HTTP client drives one [`InteractiveSession`] over many
//! requests. The manager owns them behind two lock levels:
//!
//! * one manager-wide mutex over the id map, held only for lookups,
//!   inserts, and eviction sweeps — never while inference runs;
//! * one mutex per session, held for the duration of a single
//!   inference step (answering a question can trigger query
//!   evaluations), so concurrent requests against *different* sessions
//!   never serialize on each other, while concurrent requests against
//!   the *same* session are applied one at a time.
//!
//! Sessions that have not been touched for the configured idle window
//! are evicted by the sweep that runs on every create/list — a server
//! abandoned by its clients converges back to an empty map without a
//! background reaper thread.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use questpro_feedback::InteractiveSession;

/// One live session plus its bookkeeping.
pub struct SessionEntry {
    /// The inference state machine.
    pub session: InteractiveSession,
    /// Name of the registry ontology the session runs against.
    pub ontology: String,
    /// Seed the session was started with (reported back to clients).
    pub seed: u64,
    /// Last time a request touched this session.
    pub last_used: Instant,
}

/// Concurrent owner of all live sessions; see the module docs.
pub struct SessionManager {
    inner: Mutex<HashMap<u64, Arc<Mutex<SessionEntry>>>>,
    next_id: AtomicU64,
    idle: Duration,
    max_sessions: usize,
}

impl SessionManager {
    /// A manager evicting sessions idle for `idle`, holding at most
    /// `max_sessions` at once.
    pub fn new(idle: Duration, max_sessions: usize) -> SessionManager {
        SessionManager {
            inner: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            idle,
            max_sessions: max_sessions.max(1),
        }
    }

    /// Registers a new session and returns its id.
    ///
    /// # Errors
    /// A displayable message when the (post-eviction) session count is
    /// at capacity.
    pub fn create(
        &self,
        session: InteractiveSession,
        ontology: String,
        seed: u64,
    ) -> Result<u64, String> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(Mutex::new(SessionEntry {
            session,
            ontology,
            seed,
            last_used: Instant::now(),
        }));
        let mut map = lock(&self.inner);
        Self::evict_locked(&mut map, self.idle);
        if map.len() >= self.max_sessions {
            return Err(format!(
                "session capacity reached ({} live)",
                self.max_sessions
            ));
        }
        map.insert(id, entry);
        Ok(id)
    }

    /// The session with this id, with its idle clock reset.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<SessionEntry>>> {
        let entry = lock(&self.inner).get(&id).cloned()?;
        lock(&entry).last_used = Instant::now();
        Some(entry)
    }

    /// Deletes a session; `false` when the id is unknown.
    pub fn remove(&self, id: u64) -> bool {
        lock(&self.inner).remove(&id).is_some()
    }

    /// Live `(id, entry)` pairs, oldest id first, after an eviction
    /// sweep.
    pub fn list(&self) -> Vec<(u64, Arc<Mutex<SessionEntry>>)> {
        let mut map = lock(&self.inner);
        Self::evict_locked(&mut map, self.idle);
        let mut items: Vec<_> = map.iter().map(|(&id, e)| (id, Arc::clone(e))).collect();
        items.sort_by_key(|(id, _)| *id);
        items
    }

    /// Number of live sessions (without sweeping).
    pub fn count(&self) -> usize {
        lock(&self.inner).len()
    }

    fn evict_locked(map: &mut HashMap<u64, Arc<Mutex<SessionEntry>>>, idle: Duration) {
        map.retain(|_, entry| lock(entry).last_used.elapsed() < idle);
    }
}

/// Poison-tolerant lock (see `registry::lock`): a panicked request
/// leaves the session in its last coherent pre-step state.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_data::{erdos_example_set, erdos_ontology};
    use questpro_feedback::SessionConfig;

    fn a_session() -> InteractiveSession {
        let ont = erdos_ontology();
        let examples = erdos_example_set(&ont);
        InteractiveSession::start(&ont, &examples, &SessionConfig::default(), 7).unwrap()
    }

    #[test]
    fn create_get_remove_lifecycle() {
        let mgr = SessionManager::new(Duration::from_secs(60), 8);
        let id = mgr.create(a_session(), "erdos".into(), 7).unwrap();
        assert!(mgr.get(id).is_some());
        assert_eq!(mgr.list().len(), 1);
        assert!(mgr.remove(id));
        assert!(!mgr.remove(id));
        assert!(mgr.get(id).is_none());
        assert_eq!(mgr.count(), 0);
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let mgr = SessionManager::new(Duration::from_millis(1), 8);
        let id = mgr.create(a_session(), "erdos".into(), 7).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(mgr.list().is_empty(), "idle session must be swept");
        assert!(mgr.get(id).is_none());
    }

    #[test]
    fn capacity_is_enforced_after_sweeping() {
        let mgr = SessionManager::new(Duration::from_secs(60), 1);
        mgr.create(a_session(), "erdos".into(), 1).unwrap();
        assert!(mgr.create(a_session(), "erdos".into(), 2).is_err());
    }
}
