//! Per-user interactive inference sessions.
//!
//! Each HTTP client drives one [`InteractiveSession`] over many
//! requests. The manager owns them behind two lock levels:
//!
//! * the id map is **sharded** by `id % SHARDS`: a lookup, insert, or
//!   removal locks only its own shard, so the per-request hot path
//!   (`get`) of unrelated sessions never serializes on one map mutex
//!   even with thousands of concurrent connections. Shard mutexes are
//!   held only for map operations — never while inference runs;
//! * one mutex per session, held for the duration of a single
//!   inference step (answering a question can trigger query
//!   evaluations), so concurrent requests against *different* sessions
//!   never serialize on each other, while concurrent requests against
//!   the *same* session are applied one at a time.
//!
//! `create` and `list` are the cold paths: they sweep every shard for
//! idle eviction (and, for `create`, the global capacity check), so a
//! server abandoned by its clients converges back to empty without a
//! background reaper thread — same semantics as the unsharded manager,
//! just with the contention moved off the hot path.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use questpro_feedback::InteractiveSession;
use questpro_telemetry::Outcome;

/// One live session plus its bookkeeping.
pub struct SessionEntry {
    /// The inference state machine.
    pub session: InteractiveSession,
    /// Name of the registry ontology the session runs against.
    pub ontology: String,
    /// Registry **version** of that ontology the session is pinned to.
    /// All of the session's cached state — candidate queries, pending
    /// provenance, transcript — references node/edge ids of this exact
    /// version; answering against any other version would silently
    /// misattribute ids. Requests resolve the pin through
    /// `Registry::get_version` and fail with a named error when live
    /// updates have evicted it.
    pub version: u64,
    /// Seed the session was started with (reported back to clients).
    pub seed: u64,
    /// Last time a request touched this session.
    pub last_used: Instant,
    /// Trace ID minted at creation, joining this session's telemetry
    /// record and summary log back to `/debug/traces` entries.
    pub trace_id: u64,
    /// One-shot telemetry latch: set by the first [`SessionEntry::finish`].
    recorded: bool,
}

impl SessionEntry {
    /// Records this session's terminal outcome into the process-wide
    /// telemetry aggregator, exactly once per entry: convergence,
    /// explicit delete, idle eviction, and the pinned-version `410` all
    /// race to this latch, and only the first one counts.
    pub fn finish(&mut self, outcome: Outcome) {
        if self.recorded {
            return;
        }
        self.recorded = true;
        questpro_telemetry::record(self.session.telemetry_record(
            &self.ontology,
            self.version,
            outcome,
            self.trace_id,
        ));
    }
}

/// Shard count; a power of two so `id % SHARDS` is a mask. Sixteen is
/// far beyond the worker-pool width, so two workers touching different
/// sessions almost never contend on a shard mutex.
const SHARDS: usize = 16;

/// Concurrent owner of all live sessions; see the module docs.
pub struct SessionManager {
    shards: Vec<Mutex<HashMap<u64, Arc<Mutex<SessionEntry>>>>>,
    next_id: AtomicU64,
    idle: Duration,
    max_sessions: usize,
}

impl SessionManager {
    /// A manager evicting sessions idle for `idle`, holding at most
    /// `max_sessions` at once.
    pub fn new(idle: Duration, max_sessions: usize) -> SessionManager {
        SessionManager {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            idle,
            max_sessions: max_sessions.max(1),
        }
    }

    fn shard(&self, id: u64) -> &Mutex<HashMap<u64, Arc<Mutex<SessionEntry>>>> {
        &self.shards[(id as usize) % self.shards.len()]
    }

    /// Registers a new session and returns its id.
    ///
    /// # Errors
    /// A displayable message when the (post-eviction) session count is
    /// at capacity.
    pub fn create(
        &self,
        session: InteractiveSession,
        ontology: String,
        version: u64,
        seed: u64,
    ) -> Result<u64, String> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(Mutex::new(SessionEntry {
            session,
            ontology,
            version,
            seed,
            last_used: Instant::now(),
            // Minted from the same monotonic source as request traces,
            // so it never collides with a registry entry's ID.
            trace_id: questpro_trace::mint_id(),
            recorded: false,
        }));
        // The cold path sweeps everything: the capacity bound is global,
        // so the check must see the post-eviction total. Shards are
        // locked one at a time — the count can be momentarily stale
        // against a racing create, which the old single-mutex manager
        // prevented; the bound is a soft resource cap, not an invariant
        // handlers rely on, so an off-by-one under a create race is an
        // accepted trade for an uncontended hot path.
        let mut live = 0;
        for shard in &self.shards {
            let mut map = lock(shard);
            Self::evict_locked(&mut map, self.idle);
            live += map.len();
        }
        if live >= self.max_sessions {
            return Err(format!(
                "session capacity reached ({} live)",
                self.max_sessions
            ));
        }
        lock(self.shard(id)).insert(id, entry);
        Ok(id)
    }

    /// The session with this id, with its idle clock reset. The hot
    /// path: locks exactly one shard, briefly.
    pub fn get(&self, id: u64) -> Option<Arc<Mutex<SessionEntry>>> {
        let entry = lock(self.shard(id)).get(&id).cloned()?;
        lock(&entry).last_used = Instant::now();
        Some(entry)
    }

    /// Deletes a session, returning the removed entry (so the caller
    /// can record its terminal outcome); `None` when the id is unknown.
    pub fn remove(&self, id: u64) -> Option<Arc<Mutex<SessionEntry>>> {
        lock(self.shard(id)).remove(&id)
    }

    /// Live `(id, entry)` pairs, oldest id first, after an eviction
    /// sweep.
    pub fn list(&self) -> Vec<(u64, Arc<Mutex<SessionEntry>>)> {
        let mut items = Vec::new();
        for shard in &self.shards {
            let mut map = lock(shard);
            Self::evict_locked(&mut map, self.idle);
            items.extend(map.iter().map(|(&id, e)| (id, Arc::clone(e))));
        }
        items.sort_by_key(|(id, _)| *id);
        items
    }

    /// Number of live sessions (without sweeping).
    pub fn count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    fn evict_locked(map: &mut HashMap<u64, Arc<Mutex<SessionEntry>>>, idle: Duration) {
        map.retain(|_, entry| {
            let mut e = lock(entry);
            if e.last_used.elapsed() < idle {
                return true;
            }
            // A converged session already latched its outcome; anything
            // else swept here was walked away from.
            e.finish(Outcome::Abandoned);
            false
        });
    }
}

/// Poison-tolerant lock (see `registry::lock`): a panicked request
/// leaves the session in its last coherent pre-step state.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use questpro_data::{erdos_example_set, erdos_ontology};
    use questpro_feedback::SessionConfig;

    fn a_session() -> InteractiveSession {
        let ont = erdos_ontology();
        let examples = erdos_example_set(&ont);
        InteractiveSession::start(&ont, &examples, &SessionConfig::default(), 7).unwrap()
    }

    #[test]
    fn create_get_remove_lifecycle() {
        let mgr = SessionManager::new(Duration::from_secs(60), 8);
        let id = mgr.create(a_session(), "erdos".into(), 1, 7).unwrap();
        assert!(mgr.get(id).is_some());
        assert_eq!(mgr.list().len(), 1);
        assert!(mgr.remove(id).is_some());
        assert!(mgr.remove(id).is_none());
        assert!(mgr.get(id).is_none());
        assert_eq!(mgr.count(), 0);
    }

    #[test]
    fn idle_sessions_are_evicted() {
        let mgr = SessionManager::new(Duration::from_millis(1), 8);
        let id = mgr.create(a_session(), "erdos".into(), 1, 7).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(mgr.list().is_empty(), "idle session must be swept");
        assert!(mgr.get(id).is_none());
    }

    #[test]
    fn eviction_records_one_abandoned_outcome_per_session() {
        questpro_telemetry::set_enabled(true);
        // A name unique to this test keeps the assertion immune to
        // other tests recording into the shared global aggregator.
        let world = "sessions-latch-test";
        let mgr = SessionManager::new(Duration::from_millis(1), 8);
        let id = mgr.create(a_session(), world.into(), 1, 7).unwrap();
        let entry = mgr.get(id).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        assert!(mgr.list().is_empty(), "idle session must be swept");
        // The sweep latched the outcome; a later explicit finish on the
        // same (still-referenced) entry must not double-count.
        lock(&entry).finish(Outcome::Converged);
        let snap = questpro_telemetry::snapshot();
        let per_outcome: Vec<(Outcome, u64)> = snap
            .keys
            .iter()
            .filter(|k| k.ontology == world)
            .map(|k| (k.outcome, k.sessions))
            .collect();
        assert_eq!(
            per_outcome,
            vec![(Outcome::Abandoned, 1)],
            "exactly one record, under the first outcome to latch"
        );
    }

    #[test]
    fn capacity_is_enforced_after_sweeping() {
        let mgr = SessionManager::new(Duration::from_secs(60), 1);
        mgr.create(a_session(), "erdos".into(), 1, 1).unwrap();
        assert!(mgr.create(a_session(), "erdos".into(), 1, 2).is_err());
    }

    #[test]
    fn sessions_spread_across_shards_and_stay_reachable() {
        // More sessions than shards: every one must remain reachable by
        // id through the sharded lookup, and list() must see them all
        // in id order.
        let mgr = SessionManager::new(Duration::from_secs(60), 64);
        let ids: Vec<u64> = (0..(SHARDS as u64 * 2))
            .map(|i| mgr.create(a_session(), "erdos".into(), 1, i).unwrap())
            .collect();
        assert_eq!(mgr.count(), ids.len());
        for &id in &ids {
            assert!(mgr.get(id).is_some(), "session {id} lost by sharding");
        }
        let listed: Vec<u64> = mgr.list().iter().map(|(id, _)| *id).collect();
        assert_eq!(listed, ids, "list() must be complete and id-ordered");
        let populated = mgr.shards.iter().filter(|s| !lock(s).is_empty()).count();
        assert!(populated > 1, "consecutive ids must hit multiple shards");
        for &id in &ids {
            assert!(mgr.remove(id).is_some());
        }
        assert_eq!(mgr.count(), 0);
    }
}
