//! A fixed-size worker thread pool with a bounded job queue.
//!
//! `std::sync::mpsc::sync_channel` provides the bound: submissions
//! beyond `queue` pending jobs fail fast with [`PoolFull`] instead of
//! accumulating unbounded connection state — the accept loop turns that
//! into an HTTP 503 so overload degrades loudly rather than by OOM.
//!
//! Jobs run under `catch_unwind`: a panicking job poisons nothing and
//! kills neither its worker nor the process (workspace lints forbid
//! `unsafe`, and all session state lives behind poison-tolerant locks).
//! Dropping the pool closes the channel; workers drain the queue and
//! exit, and `join` waits for them — the graceful-shutdown path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The queue is full: the pool did not accept the job.
#[derive(Debug)]
pub struct PoolFull;

/// A fixed-size thread pool; see the module docs.
pub struct ThreadPool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `workers` threads sharing a queue of at most `queue`
    /// pending jobs (both clamped to ≥ 1).
    pub fn new(workers: usize, queue: usize) -> ThreadPool {
        let (tx, rx) = sync_channel::<Job>(queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        // A failed spawn (thread exhaustion) degrades capacity instead
        // of panicking: with zero workers every submit eventually
        // reports PoolFull and the caller sheds load with 503s — the
        // process keeps serving what it can.
        let workers = (0..workers.max(1))
            .filter_map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("questpro-worker-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .ok()
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Queues a job; fails fast with [`PoolFull`] when the bounded queue
    /// is at capacity (the caller owns the rejection response).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolFull> {
        // `tx` is only None mid-drop; submit cannot race that (&self vs
        // &mut self), but degrade to a rejection rather than assert.
        let Some(tx) = self.tx.as_ref() else {
            return Err(PoolFull);
        };
        match tx.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => Err(PoolFull),
        }
    }

    /// Closes the queue and waits for the workers to drain it — every
    /// already-accepted job still runs to completion.
    pub fn join(mut self) {
        self.tx = None; // close the channel: workers exit after draining
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only to take one job; a poisoned lock
        // (another worker panicked while holding it — impossible here,
        // recv happens inside the guard, but stay defensive) degrades to
        // its inner state.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match job {
            Ok(job) => {
                // A panicking job must not take the worker down with it.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return, // channel closed: drain complete
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_submitted_jobs_and_drains_on_join() {
        let pool = ThreadPool::new(4, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn rejects_when_queue_is_full() {
        // One blocked worker + queue of one: the third submission that
        // cannot be picked up must be rejected, not buffered.
        let pool = ThreadPool::new(1, 1);
        let (block_tx, block_rx) = std::sync::mpsc::channel::<()>();
        pool.submit(move || {
            let _ = block_rx.recv_timeout(Duration::from_secs(5));
        })
        .unwrap();
        // Wait for the worker to pick the blocker up, then fill the queue.
        std::thread::sleep(Duration::from_millis(50));
        pool.submit(|| {}).unwrap();
        let mut rejected = false;
        for _ in 0..8 {
            if pool.submit(|| {}).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "a bounded queue must reject overload");
        block_tx.send(()).unwrap();
        pool.join();
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        let pool = ThreadPool::new(1, 4);
        pool.submit(|| panic!("boom")).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
