//! Per-connection state for the event loop.
//!
//! A [`Conn`] owns one nonblocking [`TcpStream`] plus the byte buffers
//! and flags that turn readiness events into HTTP/1.1 keep-alive
//! exchanges:
//!
//! * bytes arrive into `rbuf` on readable events; the incremental
//!   parser ([`crate::http::parse_request`]) carves complete requests
//!   off its front, leaving pipelined followers in place;
//! * while a request is **in flight** (dispatched to the worker pool)
//!   the loop drops read interest — unread bytes stay in the kernel
//!   socket buffer, which is TCP backpressure for free — and no
//!   timeout runs, so a legitimately slow inference never kills its
//!   connection;
//! * responses serialize into `wbuf` and drain on writable events;
//!   responses are queued strictly in request order, so pipelining
//!   cannot reorder.
//!
//! Timeouts are classified rather than uniform (the adversarial battery
//! pins each one):
//!
//! * **idle** — an empty connection between requests outlives the read
//!   timeout: closed silently and counted as a keep-alive timeout,
//!   exactly like the blocking server did;
//! * **partial** — a request started but its bytes stalled (slow-loris):
//!   a named `408` response, counted separately. The clock runs from
//!   the *first* byte of the request, not the latest one, so trickling
//!   one header byte per interval cannot hold a connection open. For a
//!   pipelined tail buffered behind an in-flight request the clock
//!   re-bases when that request completes — time spent waiting on our
//!   own worker pool is never charged to the peer;
//! * **write-stall** — the peer stopped draining our response: closed
//!   silently once the write timeout elapses.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::http::{encode_response, parse_request, ReadError, Request, Response};
use crate::sys::Interest;

/// Bytes read from the socket per readable event, to bound the time one
/// connection can monopolize the loop. Level-triggered polling re-reports
/// any leftover immediately, so fairness costs no correctness.
const READ_BURST: usize = 64 * 1024;

/// Which timeout a [`Conn::deadline`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineKind {
    /// Idle keep-alive connection between requests → silent close.
    Idle,
    /// A request's bytes stalled mid-parse → named `408`.
    Partial,
    /// The peer stopped draining our response → silent close.
    WriteStall,
}

/// What a readable event produced.
#[derive(Debug, Clone, Copy)]
pub struct ReadStatus {
    /// Bytes appended to the read buffer.
    pub bytes: usize,
    /// The peer half-closed (or closed) its sending side.
    pub eof: bool,
}

/// One live connection; see the module docs.
pub struct Conn {
    /// The nonblocking socket (owned: dropping the `Conn` closes it).
    pub stream: TcpStream,
    /// Received-but-unparsed bytes (partial request + pipelined tail).
    rbuf: Vec<u8>,
    /// Serialized-but-unsent response bytes.
    wbuf: Vec<u8>,
    /// How much of `wbuf` has already been written.
    wpos: usize,
    /// A request from this connection is dispatched to the worker pool.
    pub in_flight: bool,
    /// Close once `wbuf` fully drains.
    pub close_after_write: bool,
    /// The peer's sending side reported EOF.
    pub peer_closed: bool,
    /// When the connection last became idle (created, or finished an
    /// exchange with nothing buffered).
    idle_since: Instant,
    /// When `rbuf` last went from empty to non-empty — the start of the
    /// current request's arrival, never reset by later bytes.
    request_started: Option<Instant>,
    /// When the current `wbuf` backlog started draining.
    write_started: Option<Instant>,
}

impl Conn {
    /// Wraps a freshly accepted (already nonblocking) socket.
    pub fn new(stream: TcpStream, now: Instant) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            in_flight: false,
            close_after_write: false,
            peer_closed: false,
            idle_since: now,
            request_started: None,
            write_started: None,
        }
    }

    /// Pulls available bytes into the read buffer (bounded by
    /// `READ_BURST` per call).
    ///
    /// # Errors
    /// A hard socket error; the caller closes the connection.
    pub fn on_readable(&mut self, now: Instant) -> io::Result<ReadStatus> {
        let mut total = 0;
        let mut eof = false;
        let mut chunk = [0u8; 8192];
        while total < READ_BURST {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    if self.rbuf.is_empty() && self.request_started.is_none() {
                        self.request_started = Some(now);
                    }
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if eof {
            self.peer_closed = true;
        }
        Ok(ReadStatus { bytes: total, eof })
    }

    /// Carves the next complete request off the front of the read
    /// buffer, if one has fully arrived.
    ///
    /// # Errors
    /// The request is malformed or over a limit; see
    /// [`crate::http::parse_request`].
    pub fn take_request(&mut self, max_body: usize) -> Result<Option<Request>, ReadError> {
        match parse_request(&self.rbuf, max_body)? {
            Some((req, consumed)) => {
                self.rbuf.drain(..consumed);
                // The partial-request clock restarts only when the next
                // request's first byte arrives (or is already pipelined).
                self.request_started = if self.rbuf.is_empty() {
                    None
                } else {
                    Some(Instant::now())
                };
                Ok(Some(req))
            }
            None => Ok(None),
        }
    }

    /// Marks the in-flight request complete and re-bases the
    /// partial-request clock for any buffered follow-up bytes: reads
    /// are masked off while a request runs, so a pipelined tail could
    /// not make parse progress no matter how fast the peer sent it.
    /// Counting that span against the peer would 408 a connection
    /// whose only sin was waiting on a slow inference; the slow-loris
    /// guarantee still holds because the re-based clock never refreshes
    /// on later trickled bytes.
    pub fn complete_in_flight(&mut self, now: Instant) {
        self.in_flight = false;
        if !self.rbuf.is_empty() {
            self.request_started = Some(now);
        }
    }

    /// Appends a serialized response to the write buffer (in request
    /// order) and records the close-after flag.
    pub fn queue_response(&mut self, resp: &Response) {
        if self.wbuf.is_empty() {
            self.write_started = Some(Instant::now());
        }
        self.wbuf.extend_from_slice(&encode_response(resp));
        if resp.close {
            self.close_after_write = true;
        }
    }

    /// Writes as much buffered response as the socket accepts.
    ///
    /// Returns `true` when the write buffer fully drained.
    ///
    /// # Errors
    /// A hard socket error (e.g. `EPIPE`); the caller closes.
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        self.write_started = None;
        if self.rbuf.is_empty() && !self.in_flight {
            self.idle_since = Instant::now();
        }
        Ok(true)
    }

    /// Whether response bytes are waiting to be written.
    pub fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Whether unparsed request bytes are buffered.
    pub fn has_buffered_bytes(&self) -> bool {
        !self.rbuf.is_empty()
    }

    /// Idle: nothing buffered either way and nothing in flight — the
    /// connection is purely waiting for the peer's next request.
    pub fn is_idle(&self) -> bool {
        self.rbuf.is_empty() && !self.has_pending_write() && !self.in_flight
    }

    /// The readiness interest this state wants.
    ///
    /// Read interest is off while a request is in flight (backpressure);
    /// write interest is on only while response bytes are pending.
    /// Hang-up/error notifications are delivered regardless.
    pub fn wants(&self) -> Interest {
        Interest {
            read: !self.in_flight && !self.peer_closed,
            write: self.has_pending_write(),
        }
    }

    /// The earliest timeout applicable to the current state, if any.
    /// In-flight requests have none: a slow inference is bounded by the
    /// worker pool, not by its connection.
    pub fn deadline(
        &self,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> Option<(Instant, DeadlineKind)> {
        if self.in_flight {
            return None;
        }
        if let Some(started) = self.write_started {
            return Some((started + write_timeout, DeadlineKind::WriteStall));
        }
        if let Some(started) = self.request_started {
            if !self.rbuf.is_empty() {
                return Some((started + read_timeout, DeadlineKind::Partial));
            }
        }
        Some((self.idle_since + read_timeout, DeadlineKind::Idle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn reads_parse_and_pipelined_requests_stay_buffered() {
        let (mut client, server) = pair();
        let now = Instant::now();
        let mut conn = Conn::new(server, now);
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let status = conn.on_readable(Instant::now()).unwrap();
        assert!(status.bytes > 0);
        let a = conn.take_request(1024).unwrap().expect("first request");
        assert_eq!(a.path, "/a");
        assert!(conn.has_buffered_bytes(), "pipelined /b stays buffered");
        let b = conn.take_request(1024).unwrap().expect("second request");
        assert_eq!(b.path, "/b");
        assert!(!conn.has_buffered_bytes());
    }

    #[test]
    fn deadline_classification_follows_state() {
        let (mut client, server) = pair();
        let t0 = Instant::now();
        let mut conn = Conn::new(server, t0);
        let rt = Duration::from_secs(5);
        let wt = Duration::from_secs(7);

        // Fresh connection: idle clock from creation.
        let (_, kind) = conn.deadline(rt, wt).unwrap();
        assert_eq!(kind, DeadlineKind::Idle);

        // Partial bytes: the clock pins to the first byte's arrival.
        client.write_all(b"GET /x HT").unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let arrival = Instant::now();
        conn.on_readable(arrival).unwrap();
        assert!(conn.take_request(1024).unwrap().is_none());
        let (dl, kind) = conn.deadline(rt, wt).unwrap();
        assert_eq!(kind, DeadlineKind::Partial);
        assert!(dl <= arrival + rt + Duration::from_millis(1));

        // More trickled bytes do NOT push the deadline out.
        client.write_all(b"TP/1.").unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        conn.on_readable(Instant::now()).unwrap();
        let (dl2, kind2) = conn.deadline(rt, wt).unwrap();
        assert_eq!(kind2, DeadlineKind::Partial);
        assert_eq!(dl, dl2, "slow-loris cannot refresh its own deadline");

        // In flight: no deadline at all.
        conn.in_flight = true;
        assert!(conn.deadline(rt, wt).is_none());
        conn.in_flight = false;

        // Pending write: write-stall clock.
        conn.queue_response(&Response::text(200, "ok"));
        let (_, kind) = conn.deadline(rt, wt).unwrap();
        assert_eq!(kind, DeadlineKind::WriteStall);
    }

    #[test]
    fn completing_in_flight_rebases_the_pipelined_tail_clock() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, Instant::now());
        let rt = Duration::from_secs(5);
        let wt = Duration::from_secs(7);

        // A full request plus a pipelined partial tail arrive together.
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HT")
            .unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        conn.on_readable(Instant::now()).unwrap();
        let dispatch = Instant::now();
        let req = conn.take_request(1024).unwrap().expect("first request");
        assert_eq!(req.path, "/a");
        conn.in_flight = true;

        // The request runs a while (a slow inference is explicitly
        // supported), then completes: the tail's partial clock must
        // start at completion, not at dispatch, or the follow-up would
        // be 408'd instantly at the next deadline scan.
        std::thread::sleep(Duration::from_millis(30));
        let completion = Instant::now();
        conn.complete_in_flight(completion);
        let (dl, kind) = conn.deadline(rt, wt).unwrap();
        assert_eq!(kind, DeadlineKind::Partial);
        assert!(
            dl >= completion + rt,
            "partial deadline must be measured from completion"
        );
        assert!(dl >= dispatch + rt);

        // With nothing buffered, completion leaves no partial clock.
        client.write_all(b"TP/1.1\r\n\r\n").unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        conn.on_readable(Instant::now()).unwrap();
        let req = conn.take_request(1024).unwrap().expect("second request");
        assert_eq!(req.path, "/b");
        conn.in_flight = true;
        conn.complete_in_flight(Instant::now());
        let (_, kind) = conn.deadline(rt, wt).unwrap();
        assert_eq!(kind, DeadlineKind::Idle, "empty buffer means idle");
    }

    #[test]
    fn interest_tracks_backpressure_and_pending_writes() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server, Instant::now());
        assert_eq!(conn.wants(), Interest::READ);
        conn.in_flight = true;
        assert_eq!(conn.wants(), Interest::NONE);
        conn.queue_response(&Response::text(200, "ok"));
        assert_eq!(conn.wants(), Interest::WRITE);
        conn.in_flight = false;
        assert_eq!(conn.wants(), Interest::BOTH);
        assert!(conn.flush().unwrap(), "a fresh socket drains immediately");
        assert_eq!(conn.wants(), Interest::READ);
        assert!(conn.is_idle());
    }
}
